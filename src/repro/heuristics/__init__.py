"""Heuristic decomposition subsystem: orderings, bounds, and the portfolio.

The exact ``k-decomp`` search of :mod:`repro.core.detkdecomp` is
exponential in the width; this package supplies its practical complement —
polynomial-time ordering-based construction of generalized hypertree
decompositions, greedy upper and trivial lower width bounds, local-search
improvement, an independent validity checker, and the
:func:`decompose` portfolio facade that combines heuristics with the
exact algorithm under a time budget.

Typical use::

    from repro.heuristics import decompose

    result = decompose(query, mode="auto", budget=5.0)
    print(result.width, result.optimal)
    print(result.decomposition.render())
"""

from .bounds import (
    UpperBound,
    acyclicity_lower_bound,
    degree_lower_bound,
    greedy_upper_bound,
    lower_bound,
)
from .improve import improve_ordering
from .ordering_decomp import (
    bags_from_ordering,
    ghtd_from_ordering,
    greedy_cover,
    ordering_width,
)
from .orderings import (
    ORDERING_METHODS,
    all_orderings,
    elimination_ordering,
    query_orderings,
)
from .portfolio import MODES, PortfolioResult, decompose
from .validate import assert_valid, check_decomposition, is_valid_ghtd

__all__ = [
    "MODES",
    "ORDERING_METHODS",
    "PortfolioResult",
    "UpperBound",
    "acyclicity_lower_bound",
    "all_orderings",
    "assert_valid",
    "bags_from_ordering",
    "check_decomposition",
    "decompose",
    "degree_lower_bound",
    "elimination_ordering",
    "ghtd_from_ordering",
    "greedy_cover",
    "greedy_upper_bound",
    "improve_ordering",
    "is_valid_ghtd",
    "lower_bound",
    "ordering_width",
    "query_orderings",
]
