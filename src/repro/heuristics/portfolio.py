"""The portfolio facade: one ``decompose()`` call, three strategies.

This is the subsystem's public entry point and the seam that future
scaling work (SAT backends, parallel portfolios, decomposition caches)
plugs into.  The three modes:

* ``"exact"`` — the paper's ``k-decomp`` search
  (:func:`repro.core.detkdecomp.hypertree_width`), optimal hypertree
  width, exponential in the width;
* ``"heuristic"`` — the ordering pipeline plus local search, polynomial
  time, checker-certified GHTD, width within a small additive gap of
  optimal in practice;
* ``"auto"`` (default) — heuristics first: their width becomes the upper
  end of the exact search's ``k`` range and the trivial lower bounds the
  lower end, so the exact search starts as tight as possible; if the
  bracket is already closed the heuristic answer ships immediately, and
  if the exact search exhausts its ``budget`` the best checker-validated
  heuristic decomposition is returned instead of failing.

Every returned decomposition — including exact ones — passes the
independent :mod:`repro.heuristics.validate` checker before it leaves
this module.

>>> from repro.generators.paper_queries import q1
>>> result = decompose(q1(), mode="auto")
>>> result.width, result.optimal
(2, True)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Literal

from .._errors import BudgetExceeded
from ..core.canonical import canonical_query
from ..core.detkdecomp import Strategy, decompose_k, hypertree_width
from ..core.hypergraph import Hypergraph
from ..core.hypertree import HypertreeDecomposition
from ..core.query import ConjunctiveQuery
from ..graphs.primal import primal_graph
from ..obs import current_tracer, get_registry
from .bounds import greedy_upper_bound, lower_bound
from .improve import improve_ordering
from .ordering_decomp import ghtd_from_ordering
from .validate import assert_valid

Mode = Literal["exact", "heuristic", "auto"]

MODES: tuple[str, ...] = ("exact", "heuristic", "auto")


@dataclass(frozen=True)
class PortfolioResult:
    """What :func:`decompose` returns: the decomposition plus provenance.

    ``optimal`` means the portfolio *proved* that no hypertree
    decomposition of smaller width exists (either the exact search found
    this width, or every smaller ``k`` was refuted, or the width meets a
    lower bound).  A budget fallback is never marked optimal.
    """

    decomposition: HypertreeDecomposition
    width: int
    mode: str
    method: str
    optimal: bool
    lower: int
    upper: int
    elapsed: float

    def __str__(self) -> str:
        tag = "optimal" if self.optimal else f"bounds [{self.lower}, {self.width}]"
        return (
            f"width {self.width} via {self.method} ({tag}, "
            f"{self.elapsed:.3f}s)"
        )


def _heuristic(
    query: ConjunctiveQuery,
    seed: int,
    improve_rounds: int,
    deadline: float | None,
) -> tuple[HypertreeDecomposition, str]:
    """Best ordering-pipeline GHTD: portfolio of orderings + local search.

    The primal graph is built once and the winning ordering is reused as
    the local search's starting point.
    """
    graph = primal_graph(query)
    ub = greedy_upper_bound(query, graph=graph)
    hd, method = ub.decomposition, f"heuristic[{ub.method}]"
    if improve_rounds > 0 and ub.width > 1:
        better_order, better_width = improve_ordering(
            query,
            ub.order,
            rounds=improve_rounds,
            seed=seed,
            deadline=deadline,
            graph=graph,
        )
        if better_width < ub.width:
            hd = ghtd_from_ordering(query, order=better_order, graph=graph)
            method = f"heuristic[{ub.method}+improve]"
    return hd, method


def decompose(
    query: ConjunctiveQuery | Hypergraph,
    mode: Mode = "auto",
    budget: float | None = None,
    seed: int = 0,
    improve_rounds: int = 40,
    strategy: Strategy = "relevant",
) -> PortfolioResult:
    """Decompose a query (or hypergraph, via its canonical query).

    Parameters
    ----------
    query:
        A :class:`ConjunctiveQuery`, or a :class:`Hypergraph` which is
        first bridged through the Appendix-A canonical query.
    mode:
        ``"exact"``, ``"heuristic"`` or ``"auto"`` (see module docstring).
    budget:
        Wall-clock seconds for the *search* phases.  In ``"auto"`` mode an
        exhausted budget degrades to the heuristic result; in ``"exact"``
        mode it raises :class:`repro._errors.BudgetExceeded`.
    seed:
        Seed of the (deterministic) ordering local search.
    improve_rounds:
        Local-search rounds; 0 disables the improvement phase.
    strategy:
        Candidate-pool strategy forwarded to the exact search.
    """
    if isinstance(query, Hypergraph):
        query = canonical_query(query)
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; known: {MODES}")
    if not query.atoms:
        raise ValueError("cannot decompose an empty query")

    started = time.monotonic()
    deadline = started + budget if budget is not None else None
    tracer = current_tracer()
    search_span = tracer.span("decompose", mode=mode, query=query.name)

    def result(
        hd: HypertreeDecomposition,
        method: str,
        optimal: bool,
        lower: int,
        upper: int,
    ) -> PortfolioResult:
        assert_valid(hd, context=method)
        elapsed = time.monotonic() - started
        search_span.set(method=method, width=hd.width, optimal=optimal)
        registry = get_registry()
        registry.counter("decompose.calls").inc()
        registry.histogram("decompose.seconds").observe(elapsed)
        return PortfolioResult(
            decomposition=hd,
            width=hd.width,
            mode=mode,
            method=method,
            optimal=optimal,
            lower=lower,
            upper=upper,
            elapsed=elapsed,
        )

    with search_span:
        if mode == "exact":
            with tracer.span("decompose.exact", strategy=strategy):
                width, hd = hypertree_width(
                    query, strategy=strategy, deadline=deadline
                )
            return result(hd, "exact", True, width, width)

        with tracer.span("decompose.heuristic", seed=seed) as hspan:
            hd, method = _heuristic(query, seed, improve_rounds, deadline)
            hspan.set(method=method, width=hd.width)
        lower = lower_bound(query)
        if mode == "heuristic":
            return result(hd, method, hd.width <= lower, lower, hd.width)

        # auto: heuristic width closes the bracket from above, trivial
        # bounds from below; the exact search only has to scan the open
        # interval.
        upper = hd.width
        if upper <= lower:
            return result(hd, method, True, lower, upper)
        try:
            for k in range(lower, upper):
                with tracer.span(
                    "decompose.exact_k", k=k, strategy=strategy
                ) as kspan:
                    exact_hd = decompose_k(
                        query, k, strategy=strategy, deadline=deadline
                    )
                    kspan.set(found=exact_hd is not None)
                if exact_hd is not None:
                    return result(exact_hd, f"exact[k={k}]", True, k, upper)
        except BudgetExceeded:
            return result(
                hd, f"{method}, budget fallback", False, lower, upper
            )
        # Every k < upper was refuted: hw(Q) ≥ upper, so the heuristic
        # decomposition's width is unbeatable by any hypertree
        # decomposition.
        return result(hd, f"{method}, refuted k<{upper}", True, upper, upper)
