"""Fast width bounds bracketing the exact ``k``-decomp search.

Upper bounds come from the ordering pipeline of
:mod:`repro.heuristics.ordering_decomp`: each portfolio ordering yields a
checker-valid GHTD whose width upper-bounds the *generalized*
hypertree-width ``ghw(Q)`` (and is typically a good starting guess for
``hw(Q)`` too, since ``ghw ≤ hw ≤ 3·ghw + 1``).

Lower bounds on ``hw(Q)`` (all trivial-but-sound, per the paper's
structure theory):

* ``hw ≥ 1`` always, and ``hw ≥ 2`` iff the query is cyclic
  (Theorem 4.5: acyclicity ⟺ hw = 1);
* any decomposition of width ``w`` over atoms of arity ≤ ``r`` induces a
  tree decomposition of the primal graph with bags ``χ(p) ⊆ var(λ(p))``
  of size ≤ ``w·r``, hence ``tw(G(Q)) + 1 ≤ w·r`` and
  ``hw ≥ ⌈(tw_lb + 1) / r⌉`` for any treewidth lower bound ``tw_lb`` —
  we use the degeneracy (max-min-degree) bound of
  :func:`repro.graphs.treewidth.degeneracy_lower_bound`.

Both bounds also hold for ``ghw``, so the pair ``(lower, upper)``
brackets the achievable width of *any* decomposition this library can
produce, which is exactly what the portfolio needs to prune the exact
search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.acyclicity import is_acyclic
from ..core.hypertree import HypertreeDecomposition
from ..core.query import ConjunctiveQuery
from ..graphs.primal import Graph, primal_graph
from ..graphs.treewidth import degeneracy_lower_bound
from .ordering_decomp import ghtd_from_ordering
from .orderings import ORDERING_METHODS, elimination_ordering


@dataclass(frozen=True)
class UpperBound:
    """A witnessed width upper bound: the decomposition *is* the proof.

    ``order`` is the elimination ordering that produced it, so downstream
    consumers (the local search) can start from it without recomputing.
    """

    width: int
    method: str
    decomposition: HypertreeDecomposition
    order: tuple


def greedy_upper_bound(
    query: ConjunctiveQuery,
    methods: tuple[str, ...] = ORDERING_METHODS,
    graph: Graph | None = None,
) -> UpperBound:
    """The best ordering-heuristic GHTD over the portfolio *methods*."""
    if not query.atoms:
        raise ValueError("cannot bound the width of an empty query")
    if graph is None:
        graph = primal_graph(query)
    best: UpperBound | None = None
    for method in methods:
        order = elimination_ordering(graph, method)
        hd = ghtd_from_ordering(query, order=order, graph=graph)
        if best is None or hd.width < best.width:
            best = UpperBound(hd.width, method, hd, tuple(order))
    assert best is not None
    return best


def acyclicity_lower_bound(query: ConjunctiveQuery) -> int:
    """1 for acyclic queries, 2 otherwise (Theorem 4.5)."""
    return 1 if is_acyclic(query) else 2


def degree_lower_bound(query: ConjunctiveQuery) -> int:
    """``⌈(degeneracy(G(Q)) + 1) / max-arity⌉`` — the treewidth-transfer
    bound described in the module docstring."""
    if not query.atoms:
        return 0
    max_vars = max(len(a.variables) for a in query.atoms)
    if max_vars == 0:
        return 1
    degeneracy = degeneracy_lower_bound(primal_graph(query))
    return max(1, math.ceil((degeneracy + 1) / max_vars))


def lower_bound(query: ConjunctiveQuery) -> int:
    """The best trivial lower bound on ``hw(Q)`` (and on ``ghw(Q)``)."""
    if not query.atoms:
        return 0
    return max(acyclicity_lower_bound(query), degree_lower_bound(query))
