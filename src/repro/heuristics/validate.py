"""Standalone decomposition checker used by tests and the portfolio.

The heuristic pipeline produces *generalized* hypertree decompositions
(GHTDs): conditions 1–3 of Definition 4.1 hold, but the descent condition
4 — which makes ``hw`` recognisable in polynomial time — is deliberately
not required (dropping it can only shrink width, and Yannakakis-style
evaluation over the bags needs only conditions 1–3).

This module re-checks those guarantees from scratch — independently of the
construction code — so every heuristic result can be certified before it
is returned:

1. **edge coverage** — every atom ``A`` has a node with
   ``var(A) ⊆ χ(p)``;
2. **connectedness** — for every variable, the nodes whose χ contains it
   induce a connected subtree;
3. **λ covers χ** — ``χ(p) ⊆ var(λ(p))``, λ nonempty and drawn from the
   query's atoms;

plus basic sanity (χ drawn from ``var(Q)``, claimed width consistent).

:func:`check_decomposition` returns the violation list (empty = valid);
:func:`assert_valid` raises :class:`DecompositionError` instead, which is
what :func:`repro.heuristics.portfolio.decompose` uses as its final gate.
"""

from __future__ import annotations

from .._errors import DecompositionError
from ..core.hypertree import HypertreeDecomposition
from ..graphs import trees


def check_decomposition(hd: HypertreeDecomposition) -> list[str]:
    """Violations of the GHTD conditions (empty list = valid GHTD)."""
    violations: list[str] = []
    all_nodes = hd.nodes
    query = hd.query
    query_atoms = set(query.atoms)

    for n in all_nodes:
        if not n.chi <= query.variables:
            extra = ", ".join(
                sorted(v.name for v in n.chi - query.variables)
            )
            violations.append(
                f"χ of {n!r} contains non-query variables {{{extra}}}"
            )
        if not n.lam:
            violations.append(f"node {n!r} has an empty λ label")
        elif not n.lam <= query_atoms:
            violations.append(f"λ of {n!r} contains non-query atoms")
        uncovered = n.chi - n.lambda_variables
        if uncovered:
            names = ", ".join(sorted(v.name for v in uncovered))
            violations.append(
                f"λ-cover: χ variables {{{names}}} of {n!r} not covered by λ"
            )

    for a in query.atoms:
        if not any(a.variables <= n.chi for n in all_nodes):
            violations.append(f"coverage: atom {a} not covered by any χ")

    for v in sorted(query.variables, key=lambda x: x.name):
        marked = [n for n in all_nodes if v in n.chi]
        if not trees.induces_connected_subtree(
            hd.root, hd._children, marked
        ):
            violations.append(
                f"connectedness: variable {v} has disconnected χ-occurrences"
            )
    return violations


def is_valid_ghtd(hd: HypertreeDecomposition) -> bool:
    """True iff *hd* is a valid generalized hypertree decomposition."""
    return not check_decomposition(hd)


def assert_valid(hd: HypertreeDecomposition, context: str = "") -> HypertreeDecomposition:
    """Raise :class:`DecompositionError` listing all violations, or return
    *hd* unchanged when it checks out (enables fluent use)."""
    violations = check_decomposition(hd)
    if violations:
        where = f" ({context})" if context else ""
        raise DecompositionError(
            f"invalid decomposition{where}: " + "; ".join(violations)
        )
    return hd
