"""Local search over elimination orderings (width improvement).

Ordering heuristics are greedy and myopic; a cheap local search around a
starting ordering often shaves a unit or two of width.  Following the
scramble strategy of practical solvers (frasmt's ``improve_scramble``),
each round perturbs a random interval of the ordering, re-runs the
bag/greedy-cover pipeline of :mod:`repro.heuristics.ordering_decomp`, and
keeps the perturbation iff the width did not get worse (accepting equal
widths lets the walk drift across plateaus).

The search is deterministic for a fixed ``seed`` — reproducibility is a
design rule of this library (experiments cite exact widths) — and
budget-aware through an optional ``time.monotonic()`` deadline.
"""

from __future__ import annotations

import random
import time
from typing import Hashable, Sequence

from ..core.query import ConjunctiveQuery
from ..graphs.primal import Graph, primal_graph
from .ordering_decomp import ordering_width


def improve_ordering(
    query: ConjunctiveQuery,
    order: Sequence[Hashable],
    rounds: int = 60,
    interval: int = 8,
    seed: int = 0,
    deadline: float | None = None,
    graph: Graph | None = None,
) -> tuple[list[Hashable], int]:
    """Scramble-interval local search; returns ``(best order, its width)``.

    *order* must enumerate the query's primal-graph vertices.  The input
    order is never mutated.  With ``rounds=0`` this is just
    :func:`repro.heuristics.ordering_decomp.ordering_width` on *order*.
    The primal graph is rebuilt every round otherwise, so callers in a
    loop should pass *graph*.
    """
    if graph is None:
        graph = primal_graph(query)
    current = list(order)
    best_width = ordering_width(query, current, graph=graph)
    if len(current) < 2 or best_width <= 1:
        return current, best_width

    rng = random.Random(seed)
    window = min(interval, len(current))
    limit = len(current) - window
    for _ in range(rounds):
        if deadline is not None and time.monotonic() > deadline:
            break
        start = rng.randint(0, limit) if limit > 0 else 0
        saved = current[start : start + window]
        segment = saved[:]
        rng.shuffle(segment)
        current[start : start + window] = segment
        width = ordering_width(query, current, graph=graph)
        if width <= best_width:
            best_width = width
        else:
            current[start : start + window] = saved
    return current, best_width
