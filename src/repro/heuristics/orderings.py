"""Vertex elimination orderings of the primal graph.

Every ordering-based decomposition heuristic starts from a linear order of
the query's variables; eliminating the variables in that order yields a
tree decomposition of the primal graph (see
:mod:`repro.heuristics.ordering_decomp`), whose bags are then λ-covered by
atoms.  Three classic ordering heuristics are provided:

* ``min_degree`` — eliminate a vertex of minimum current degree;
* ``min_fill``   — eliminate a vertex adding the fewest fill edges;
* ``mcs``        — the reverse of a maximum-cardinality-search order
  (for chordal primal graphs — e.g. acyclic queries — this is a perfect
  elimination order, so the heuristic is *exact* there).

The first two reuse :func:`repro.graphs.treewidth.greedy_order`; MCS
reuses :func:`repro.core.mcs.mcs_order`.  All orderings are deterministic
(ties broken by ``repr``), so heuristic widths are reproducible.
"""

from __future__ import annotations

from typing import Hashable

from ..core.mcs import mcs_order
from ..core.query import ConjunctiveQuery
from ..graphs.primal import Graph, primal_graph
from ..graphs.treewidth import greedy_order

#: The ordering heuristics offered by the subsystem, in portfolio order.
ORDERING_METHODS: tuple[str, ...] = ("min_degree", "min_fill", "mcs")


def elimination_ordering(graph: Graph, method: str) -> list[Hashable]:
    """A full elimination ordering of *graph* by the named heuristic."""
    if method in ("min_degree", "min_fill"):
        return greedy_order(graph, method)  # type: ignore[arg-type]
    if method == "mcs":
        # MCS numbers vertices 1..n; the *reverse* of that numbering is the
        # elimination order (a PEO whenever the graph is chordal).
        return list(reversed(mcs_order(graph)))
    raise ValueError(
        f"unknown ordering method {method!r}; known: {ORDERING_METHODS}"
    )


def all_orderings(graph: Graph) -> dict[str, list[Hashable]]:
    """All portfolio orderings of *graph*, keyed by method name."""
    return {m: elimination_ordering(graph, m) for m in ORDERING_METHODS}


def query_orderings(query: ConjunctiveQuery) -> dict[str, list[Hashable]]:
    """All portfolio orderings of the query's primal graph.

    Vertices are variable *names* (the primal-graph convention of
    :mod:`repro.graphs.primal`).
    """
    return all_orderings(primal_graph(query))
