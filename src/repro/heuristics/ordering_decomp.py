"""From a vertex elimination ordering to a generalized hypertree decomposition.

The classic two-step pipeline of practical decomposers (detkdecomp's
successors, the PACE-2019 solvers):

1. eliminating the primal-graph vertices along an ordering yields a *tree
   decomposition*: the bag of ``v`` is ``{v} ∪ N(v)`` at elimination time,
   and ``v``'s bag hangs below the bag of its earliest-eliminated remaining
   neighbour;
2. each bag χ is λ-labelled by a **greedy set cover** with query atoms,
   giving a *generalized* hypertree decomposition (GHTD) — conditions 1–3
   of Definition 4.1 hold, the descent condition 4 is deliberately not
   enforced (``ghw ≤ hw``, so these widths are still upper bounds on
   nothing less than ghw and serve as starting points for the exact
   ``k``-decomp search).

Bags that are subsets of their parent's bag are spliced away, which never
changes the width but keeps trees small.  The result is the ordinary
:class:`repro.core.hypertree.HypertreeDecomposition` type so that every
existing renderer, completion, and evaluation path applies; validity in
the GHTD sense is checked by :mod:`repro.heuristics.validate`.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from .._errors import DecompositionError
from ..core.atoms import Atom, Variable
from ..core.hypertree import HTNode, HypertreeDecomposition
from ..core.query import ConjunctiveQuery
from ..graphs.primal import Graph, primal_graph
from ..graphs.treewidth import eliminate_vertex
from .orderings import elimination_ordering


def bags_from_ordering(
    graph: Graph, order: Sequence[Hashable]
) -> tuple[dict[Hashable, frozenset[Hashable]], dict[Hashable, list[Hashable]], list[Hashable]]:
    """Eliminate *graph* along *order*; return ``(bags, children, roots)``.

    ``bags[v]`` is ``{v} ∪ N(v)`` at the moment ``v`` is eliminated;
    ``children`` maps each vertex to the vertices whose bags hang below it;
    ``roots`` holds one vertex per connected component (the component's
    last-eliminated vertex).  Bags contained in their parent's bag are
    spliced out, so the returned maps may cover fewer vertices than
    *order*.
    """
    if set(order) != set(graph):
        raise DecompositionError(
            "elimination ordering does not enumerate the graph's vertices"
        )
    position = {v: i for i, v in enumerate(order)}
    work: dict[Hashable, set[Hashable]] = {
        v: set(nbrs) for v, nbrs in graph.items()
    }
    bags: dict[Hashable, frozenset[Hashable]] = {}
    parent: dict[Hashable, Hashable] = {}
    roots: list[Hashable] = []
    for v in order:
        nbrs = eliminate_vertex(work, v)
        bags[v] = frozenset(nbrs) | {v}
        if nbrs:
            parent[v] = min(nbrs, key=lambda u: (position[u], repr(u)))
        else:
            roots.append(v)

    children: dict[Hashable, list[Hashable]] = {v: [] for v in bags}
    for v, p in parent.items():
        children[p].append(v)

    # Contract tree edges whose endpoint bags are comparable (width is
    # untouched; node count and rendering improve).  Elimination trees
    # produce both directions: a leaf's bag may repeat its parent's, and
    # the last vertices of a component produce shrinking root chains.
    changed = True
    while changed:
        changed = False
        for v in list(bags):
            p = parent.get(v)
            if p is None:
                continue
            if bags[v] <= bags[p]:  # v is redundant: splice it out
                children[p].remove(v)
                for c in children[v]:
                    parent[c] = p
                    children[p].append(c)
                del bags[v], children[v], parent[v]
                changed = True
            elif bags[p] <= bags[v]:  # v absorbs its parent
                grand = parent.get(p)
                children[p].remove(v)
                for c in children[p]:
                    parent[c] = v
                    children[v].append(c)
                if grand is None:
                    roots[roots.index(p)] = v
                    del parent[v]
                else:
                    children[grand].remove(p)
                    children[grand].append(v)
                    parent[v] = grand
                del bags[p], children[p]
                parent.pop(p, None)
                changed = True
    return bags, children, roots


def greedy_cover(
    target: frozenset[Variable], atoms: Sequence[Atom]
) -> frozenset[Atom]:
    """A greedy set cover of *target* by atom variable sets.

    Repeatedly picks the atom covering the most still-uncovered variables
    (ties broken by rendering, for determinism).  Raises
    :class:`DecompositionError` if some target variable occurs in no atom.
    """
    uncovered = set(target)
    chosen: list[Atom] = []
    while uncovered:
        best = min(
            atoms, key=lambda a: (-len(a.variables & uncovered), str(a))
        )
        gain = best.variables & uncovered
        if not gain:
            names = ", ".join(sorted(v.name for v in uncovered))
            raise DecompositionError(
                f"variables {{{names}}} are not covered by any atom"
            )
        chosen.append(best)
        uncovered -= gain
    return frozenset(chosen)


def _query_bags(
    query: ConjunctiveQuery,
    order: Sequence[Hashable] | None,
    method: str,
    graph: Graph | None,
) -> tuple[dict, dict, list]:
    if graph is None:
        graph = primal_graph(query)
    if order is None:
        order = elimination_ordering(graph, method)
    return bags_from_ordering(graph, order)


def ghtd_from_ordering(
    query: ConjunctiveQuery,
    order: Sequence[Hashable] | None = None,
    method: str = "min_fill",
    graph: Graph | None = None,
) -> HypertreeDecomposition:
    """Build a GHTD of *query* from an elimination ordering.

    *order* enumerates the primal-graph vertices (variable **names**); when
    omitted it is computed by the named ordering heuristic.  *graph* lets
    callers that already hold the primal graph (the bounds/improve/portfolio
    pipeline) avoid rebuilding it.  The result always satisfies GHTD
    conditions 1–3 (asserted by the property tests through
    :mod:`repro.heuristics.validate`).
    """
    if not query.atoms:
        raise ValueError("cannot decompose an empty query")
    variable_of = {v.name: v for v in query.variables}
    bags, children, roots = _query_bags(query, order, method, graph)

    if not bags:  # variable-free query: one trivial node
        return HypertreeDecomposition(
            query, HTNode(frozenset(), {query.atoms[0]})
        )

    # Build HTNodes bottom-up (children before parents) without recursion:
    # the elimination structure can be a long chain.
    built: dict[Hashable, HTNode] = {}
    for root in roots:
        stack: list[tuple[Hashable, bool]] = [(root, False)]
        while stack:
            v, expanded = stack.pop()
            if expanded:
                chi = frozenset(variable_of[name] for name in bags[v])
                built[v] = HTNode(
                    chi,
                    greedy_cover(chi, query.atoms),
                    (built[c] for c in children[v]),
                )
                continue
            stack.append((v, True))
            stack.extend((c, False) for c in children[v])

    root_node = built[roots[0]]
    if len(roots) > 1:
        root_node.children = root_node.children + tuple(
            built[r] for r in roots[1:]
        )
    return HypertreeDecomposition(query, root_node)


def ordering_width(
    query: ConjunctiveQuery,
    order: Sequence[Hashable],
    graph: Graph | None = None,
) -> int:
    """The GHTD width induced by *order* (max greedy-cover size over bags).

    Cheaper than :func:`ghtd_from_ordering` — no tree objects are built —
    and used as the objective of the :mod:`repro.heuristics.improve` local
    search (which passes *graph* to skip rebuilding the primal graph every
    round).
    """
    if not query.atoms:
        raise ValueError("cannot decompose an empty query")
    variable_of = {v.name: v for v in query.variables}
    bags, _, _ = _query_bags(query, order, "min_fill", graph)
    if not bags:
        return 1
    return max(
        len(
            greedy_cover(
                frozenset(variable_of[name] for name in bag), query.atoms
            )
        )
        for bag in bags.values()
    )
