"""EXACT COVER BY 3-SETS (XC3S) — instances and an Algorithm-X solver.

XC3S (Garey & Johnson [16], problem SP2) is the NP-complete source problem
of the paper's Theorem 3.4 reduction: given a set ``R`` of ``3s`` elements
and a collection ``D`` of 3-element subsets, decide whether ``s`` subsets
of ``D`` partition ``R``.

The solver is Knuth's Algorithm X (exact cover by depth-first column
branching); dancing links are unnecessary at reduction scale, so plain
sets are used.  :func:`all_exact_covers` enumerates every cover — tests
use it to verify reduction soundness exhaustively on small instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property
from typing import Hashable, Iterator, Sequence

Element = Hashable


@dataclass(frozen=True)
class XC3SInstance:
    """An instance ``I = (R, D)``.

    ``triples`` keeps declaration order so covers can be reported as index
    sets; duplicate triples are permitted by the problem definition.
    """

    elements: tuple[Element, ...]
    triples: tuple[frozenset[Element], ...]

    def __post_init__(self) -> None:
        if len(self.elements) % 3 != 0:
            raise ValueError(
                f"|R| = {len(self.elements)} is not a multiple of 3"
            )
        if len(set(self.elements)) != len(self.elements):
            raise ValueError("elements of R must be distinct")
        universe = set(self.elements)
        for t in self.triples:
            if len(t) != 3:
                raise ValueError(f"{sorted(map(repr, t))} is not a 3-set")
            if not t <= universe:
                raise ValueError(f"triple {sorted(map(repr, t))} leaves R")

    @staticmethod
    def of(
        elements: Sequence[Element],
        triples: Sequence[Sequence[Element]],
    ) -> "XC3SInstance":
        return XC3SInstance(
            tuple(elements), tuple(frozenset(t) for t in triples)
        )

    @property
    def s(self) -> int:
        """The number of triples an exact cover must select (``|R|/3``)."""
        return len(self.elements) // 3

    @cached_property
    def _triples_of_element(self) -> dict[Element, list[int]]:
        table: dict[Element, list[int]] = {e: [] for e in self.elements}
        for i, t in enumerate(self.triples):
            for e in t:
                table[e].append(i)
        return table

    # -- Algorithm X -----------------------------------------------------
    def _search(self, uncovered: set[Element], banned: set[int]) -> Iterator[list[int]]:
        if not uncovered:
            yield []
            return
        # Branch on the element with fewest available triples (MRV).
        element = min(
            uncovered,
            key=lambda e: (
                sum(
                    1
                    for i in self._triples_of_element[e]
                    if i not in banned and self.triples[i] <= uncovered
                ),
                repr(e),
            ),
        )
        for i in self._triples_of_element[element]:
            if i in banned or not self.triples[i] <= uncovered:
                continue
            remaining = uncovered - self.triples[i]
            for rest in self._search(remaining, banned):
                yield [i] + rest

    def exact_cover(self) -> list[int] | None:
        """Indices of a partitioning sub-collection, or ``None``."""
        for cover in self._search(set(self.elements), set()):
            return sorted(cover)
        return None

    def all_exact_covers(self) -> list[list[int]]:
        """Every exact cover (as sorted index lists, deduplicated)."""
        seen: set[tuple[int, ...]] = set()
        for cover in self._search(set(self.elements), set()):
            seen.add(tuple(sorted(cover)))
        return [list(c) for c in sorted(seen)]

    @property
    def is_solvable(self) -> bool:
        return self.exact_cover() is not None

    def verify_cover(self, indices: Sequence[int]) -> bool:
        """Check that the indexed triples partition R."""
        chosen = [self.triples[i] for i in indices]
        union: set[Element] = set()
        total = 0
        for t in chosen:
            union |= t
            total += len(t)
        return total == len(self.elements) and union == set(self.elements)

    def __str__(self) -> str:
        triples = ", ".join(
            "{" + ",".join(sorted(map(str, t))) + "}" for t in self.triples
        )
        return f"XC3S(|R|={len(self.elements)}, D=[{triples}])"


def paper_running_example() -> XC3SInstance:
    """The instance ``Ie`` of the Theorem 3.4 proof:
    ``Re = {X1..X6}``, ``De = {D1..D4}``; solvable by ``{D2, D4}``."""
    return XC3SInstance.of(
        ["X1", "X2", "X3", "X4", "X5", "X6"],
        [
            ["X1", "X3", "X4"],
            ["X1", "X2", "X4"],
            ["X3", "X4", "X6"],
            ["X3", "X5", "X6"],
        ],
    )


def random_instance(
    s: int, extra_triples: int, seed: int = 0, solvable: bool = True
) -> XC3SInstance:
    """A random instance with ``3s`` elements.

    With *solvable* a partition is planted before adding distractors;
    otherwise triples are sampled until :meth:`XC3SInstance.is_solvable`
    is false (only attempted for small ``s``).
    """
    rng = random.Random(seed)
    elements = [f"e{i}" for i in range(3 * s)]
    for _ in range(200):
        triples: list[frozenset[str]] = []
        if solvable:
            shuffled = elements[:]
            rng.shuffle(shuffled)
            triples.extend(
                frozenset(shuffled[3 * i : 3 * i + 3]) for i in range(s)
            )
        for _ in range(extra_triples):
            triples.append(frozenset(rng.sample(elements, 3)))
        rng.shuffle(triples)
        unique = list(dict.fromkeys(triples))
        instance = XC3SInstance(tuple(elements), tuple(unique))
        if instance.is_solvable == solvable:
            return instance
    raise RuntimeError(
        f"could not sample a {'solvable' if solvable else 'unsolvable'} "
        f"instance with s={s}"
    )
