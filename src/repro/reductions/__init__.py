"""Section 7 NP-hardness machinery: XC3S, strict 3PS, and the reduction."""

from .qw_hardness import (
    QWHardnessReduction,
    build_reduction,
    decomposition_from_cover,
    reduction_round_trip,
)
from .three_ps import ThreePartition, ThreePartitioningSystem, strict_3ps
from .xc3s import XC3SInstance, paper_running_example, random_instance

__all__ = [
    "QWHardnessReduction",
    "ThreePartition",
    "ThreePartitioningSystem",
    "XC3SInstance",
    "build_reduction",
    "decomposition_from_cover",
    "paper_running_example",
    "random_instance",
    "reduction_round_trip",
    "strict_3ps",
]
