"""Strict 3-Partitioning-Systems (Definition 7.2, Lemma 7.3).

A 3PS on a base set ``S`` is a family of 3-partitions of ``S`` with
pairwise-disjoint class sets; it is *strict* when the only way to write
``S`` as a union of three classes is to take the three classes of one of
its partitions.  Lemma 7.3 constructs a strict (m, k)-3PS (at least m
partitions, every class of size ≥ k) in ``O(m² + km)`` time; the
Theorem 3.4 reduction consumes a strict (m+1, 2)-3PS.

This module reproduces the Lemma 7.3 construction verbatim and provides
exhaustive strictness checking (used by experiment E14 and the property
tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from itertools import combinations

@dataclass(frozen=True)
class ThreePartition:
    """One 3-partition ``{S_a, S_b, S_c}`` of the base set."""

    class_a: frozenset[str]
    class_b: frozenset[str]
    class_c: frozenset[str]

    @property
    def classes(self) -> tuple[frozenset[str], ...]:
        return (self.class_a, self.class_b, self.class_c)

    def base(self) -> frozenset[str]:
        return self.class_a | self.class_b | self.class_c

    def is_partition_of(self, base: frozenset[str]) -> bool:
        return (
            self.base() == base
            and bool(self.class_a)
            and bool(self.class_b)
            and bool(self.class_c)
            and not self.class_a & self.class_b
            and not self.class_a & self.class_c
            and not self.class_b & self.class_c
        )


@dataclass(frozen=True)
class ThreePartitioningSystem:
    """A 3PS; see Definition 7.2."""

    partitions: tuple[ThreePartition, ...]

    @cached_property
    def base(self) -> frozenset[str]:
        result: set[str] = set()
        for p in self.partitions:
            result |= p.base()
        return frozenset(result)

    @cached_property
    def classes(self) -> tuple[frozenset[str], ...]:
        out: list[frozenset[str]] = []
        for p in self.partitions:
            out.extend(p.classes)
        return tuple(out)

    def validate(self) -> list[str]:
        """Violations of Definition 7.2 (each partition partitions S; no
        class shared between partitions)."""
        problems: list[str] = []
        for i, p in enumerate(self.partitions):
            if not p.is_partition_of(self.base):
                problems.append(f"element {i} is not a 3-partition of S")
        class_set = set()
        for c in self.classes:
            if c in class_set:
                problems.append(f"class {sorted(c)} occurs twice")
            class_set.add(c)
        for i, p in enumerate(self.partitions):
            for j, q in enumerate(self.partitions):
                if i < j and set(p.classes) & set(q.classes):
                    problems.append(f"partitions {i} and {j} share a class")
        return problems

    def is_mk(self, m: int, k: int) -> bool:
        """Is this an (m, k)-3PS: ≥ m partitions, all classes of size ≥ k?"""
        return len(self.partitions) >= m and all(
            len(c) >= k for c in self.classes
        )

    def strictness_violations(self) -> list[tuple[frozenset[str], ...]]:
        """All triples of classes whose union is S but which are not one of
        the designated partitions (empty = strict).  Exhaustive: O(c³) over
        the class list — fine at reduction scale."""
        designated = {frozenset(p.classes) for p in self.partitions}
        bad: list[tuple[frozenset[str], ...]] = []
        for trio in combinations(self.classes, 3):
            if trio[0] | trio[1] | trio[2] == self.base:
                if frozenset(trio) not in designated:
                    bad.append(trio)
        return bad

    @property
    def is_strict(self) -> bool:
        return not self.strictness_violations()


def strict_3ps(m: int, k: int, prefix: str = "G") -> ThreePartitioningSystem:
    """The Lemma 7.3 construction of a strict (m, k)-3PS.

    Base set ``S = T ∪ T' ∪ T''`` with ``T = {t_1..t_{3k+m}}``,
    ``T' = {u_1..u_m}``, ``T'' = {w_a, w_b, w_c}``; for ``1 ≤ i ≤ m``::

        S_a^i = {t_1..t_{k+i-1}}   ∪ {u_1..u_{m-i}}   ∪ {w_a}
        S_b^i = {t_{k+i}..t_{2k+i-1}}                 ∪ {w_b}
        S_c^i = {t_{2k+i}..t_{3k+m}} ∪ {u_{m-i+1}..u_m} ∪ {w_c}

    Element names are prefixed so several systems can share a namespace.
    """
    if m < 1 or k < 1:
        raise ValueError("m and k must be positive")
    t = [f"{prefix}t{i}" for i in range(1, 3 * k + m + 1)]
    u = [f"{prefix}u{i}" for i in range(1, m + 1)]
    w_a, w_b, w_c = f"{prefix}wa", f"{prefix}wb", f"{prefix}wc"

    partitions: list[ThreePartition] = []
    for i in range(1, m + 1):
        class_a = frozenset(t[0 : k + i - 1]) | frozenset(u[0 : m - i]) | {w_a}
        class_b = frozenset(t[k + i - 1 : 2 * k + i - 1]) | {w_b}
        class_c = (
            frozenset(t[2 * k + i - 1 : 3 * k + m])
            | frozenset(u[m - i : m])
            | {w_c}
        )
        partitions.append(ThreePartition(class_a, class_b, class_c))
    return ThreePartitioningSystem(tuple(partitions))
