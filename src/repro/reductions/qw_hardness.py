"""The Theorem 3.4 reduction: XC3S → "query-width ≤ 4" (paper §7).

Given an XC3S instance ``I = (R, D)`` with ``|R| = 3s`` and ``|D| = m``,
the reduction builds a conjunctive query ``Q`` such that ``qw(Q) ≤ 4`` iff
``I`` has an exact cover:

* a strict (m+1, 2)-3PS ``𝒮 = {σ₀, …, σ_m}`` on a base set ``S``
  (Lemma 7.3) supplies the variable blocks; σ₀'s classes ``A₀/B₀/C₀``
  (with ``A₀`` split into ``A₀′ ∪ A₀″``) parameterise the BLOCK gadgets,
  and σᵢ tags the atoms of the i-th triple ``Dᵢ``;
* for each ``0 ≤ a ≤ s`` the Lemma 7.1 gadget variables
  ``Cᵃ = {V[a]ij : 1 ≤ i < j ≤ 8}`` force two adjacent 4-element vertices
  containing exactly ``BLOCKAₐ ∪ BLOCKBₐ`` in any width-4 decomposition;
* ``LINKₐ = {link(Y_{a-1}, Zₐ)}`` chains consecutive blocks, and
  ``W[Dᵢ] = {sa(Xᵢₐ, Sᵢₐ), sb(Xᵢᵦ, Sᵢᵦ), sc(Xᵢᶜ, Sᵢᶜ)}`` encodes Dᵢ.

(The paper overloads the predicate name ``s`` for the three W-atoms of a
triple; their class argument lists have different lengths, so we name them
``sa/sb/sc`` — predicate names are irrelevant to decompositions, which see
only variable sets.)

:func:`decomposition_from_cover` transcribes the proof's "if" direction
(and Fig. 11): from an exact cover it builds a width-4 query decomposition
which is then *validated* against Definition 3.1.  Experiment E11 verifies
reduction soundness: on small instances, the construction validates for
exactly the index sets that are exact covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

from ..core.atoms import Atom, Variable
from ..core.query import ConjunctiveQuery
from ..core.querydecomp import QDNode, QueryDecomposition
from .three_ps import ThreePartitioningSystem, strict_3ps
from .xc3s import XC3SInstance


def _vars(names: Sequence[str]) -> tuple[Variable, ...]:
    return tuple(Variable(n) for n in names)


def _sorted_class(cls: frozenset[str]) -> tuple[Variable, ...]:
    """A class rendered as an argument list under the fixed precedence
    order ≺ of the proof (we use lexicographic order on names)."""
    return _vars(sorted(cls))


@dataclass(frozen=True)
class QWHardnessReduction:
    """The query ``Q`` built from an XC3S instance, with named parts."""

    instance: XC3SInstance
    system: ThreePartitioningSystem
    query: ConjunctiveQuery
    block_a: tuple[frozenset[Atom], ...]   # BLOCKA_0 .. BLOCKA_s
    block_b: tuple[frozenset[Atom], ...]   # BLOCKB_0 .. BLOCKB_s
    links: tuple[Atom, ...]                # link(Y_{a-1}, Z_a), a = 1..s
    w_atoms: tuple[tuple[Atom, Atom, Atom], ...]  # W[D_i] per triple

    @property
    def s(self) -> int:
        return self.instance.s

    @cached_property
    def w_by_element(self) -> dict[str, list[Atom]]:
        """Element of R → the W-atoms in which it occurs (for W(Dᵢ))."""
        table: dict[str, list[Atom]] = {str(e): [] for e in self.instance.elements}
        for triple_atoms in self.w_atoms:
            for atom in triple_atoms:
                element = atom.terms[0]
                assert isinstance(element, Variable)
                table[element.name].append(atom)
        return table

    def w_of_triple_elements(self, index: int) -> list[Atom]:
        """``W(Dᵢ)``: all W-atoms containing a variable of ``Dᵢ``."""
        result: list[Atom] = []
        for element in sorted(map(str, self.instance.triples[index])):
            result.extend(self.w_by_element[element])
        return list(dict.fromkeys(result))


def build_reduction(instance: XC3SInstance) -> QWHardnessReduction:
    """Construct ``Q`` from ``I = (R, D)`` exactly as in the §7 proof."""
    s = instance.s
    m = len(instance.triples)
    system = strict_3ps(m + 1, 2)
    sigma0 = system.partitions[0]
    a0_sorted = sorted(sigma0.class_a)
    a0_prime = frozenset(a0_sorted[: len(a0_sorted) // 2])
    a0_second = frozenset(a0_sorted[len(a0_sorted) // 2 :])
    b0, c0 = sigma0.class_b, sigma0.class_c

    def gadget_vars(a: int, i: int) -> tuple[Variable, ...]:
        """``Pᵃᵢ``: the 7 Lemma 7.1 connector variables paired with i."""
        out = []
        for other in range(1, 9):
            if other == i:
                continue
            lo, hi = min(i, other), max(i, other)
            out.append(Variable(f"V{a}_{lo}_{hi}"))
        return tuple(out)

    block_a: list[frozenset[Atom]] = []
    block_b: list[frozenset[Atom]] = []
    body: list[Atom] = []
    for a in range(s + 1):
        z_a, y_a = Variable(f"Z{a}"), Variable(f"Y{a}")
        atoms_a = frozenset(
            {
                Atom("q", gadget_vars(a, 1) + _sorted_class(a0_prime) + (z_a,)),
                Atom("pa", gadget_vars(a, 2) + _sorted_class(a0_second)),
                Atom("pb", gadget_vars(a, 3) + _sorted_class(b0)),
                Atom("pc", gadget_vars(a, 4) + _sorted_class(c0)),
            }
        )
        atoms_b = frozenset(
            {
                Atom("q", gadget_vars(a, 5) + _sorted_class(a0_prime) + (y_a,)),
                Atom("pa", gadget_vars(a, 6) + _sorted_class(a0_second)),
                Atom("pb", gadget_vars(a, 7) + _sorted_class(b0)),
                Atom("pc", gadget_vars(a, 8) + _sorted_class(c0)),
            }
        )
        block_a.append(atoms_a)
        block_b.append(atoms_b)
        body.extend(sorted(atoms_a, key=str))
        body.extend(sorted(atoms_b, key=str))

    links: list[Atom] = []
    for a in range(1, s + 1):
        link = Atom("link", (Variable(f"Y{a-1}"), Variable(f"Z{a}")))
        links.append(link)
        body.append(link)

    w_atoms: list[tuple[Atom, Atom, Atom]] = []
    for i, triple in enumerate(instance.triples):
        sigma = system.partitions[i + 1]
        xa, xb, xc = sorted(map(str, triple))
        triple_atoms = (
            Atom("sa", (Variable(xa),) + _sorted_class(sigma.class_a)),
            Atom("sb", (Variable(xb),) + _sorted_class(sigma.class_b)),
            Atom("sc", (Variable(xc),) + _sorted_class(sigma.class_c)),
        )
        w_atoms.append(triple_atoms)
        body.extend(triple_atoms)

    query = ConjunctiveQuery(tuple(body), (), name=f"Q[{instance}]")
    return QWHardnessReduction(
        instance,
        system,
        query,
        tuple(block_a),
        tuple(block_b),
        tuple(links),
        tuple(w_atoms),
    )


def decomposition_from_cover(
    reduction: QWHardnessReduction, cover: Sequence[int]
) -> QueryDecomposition:
    """The proof's "if" direction (and Fig. 11): a width-4 decomposition
    built from an exact cover ``D¹ … Dˢ`` (given as triple indices).

    The returned tree is *not* validated here — experiment E11 exploits
    that: validation succeeds iff *cover* is an exact cover of ``R``.
    """
    s = reduction.s
    if len(cover) != s:
        raise ValueError(f"a cover must select exactly s={s} triples")

    # Build bottom-up: vb_s is the deepest vertex.
    def block_chain(a: int, below: list[QDNode]) -> QDNode:
        vb = QDNode(reduction.block_b[a], below)
        return QDNode(reduction.block_a[a], [vb])

    subtree: list[QDNode] = []
    for position in range(s, 0, -1):
        triple_index = cover[position - 1]
        own = list(reduction.w_atoms[triple_index])
        others = [
            atom
            for atom in reduction.w_of_triple_elements(triple_index)
            if atom not in own
        ]
        leaves = [QDNode({atom}) for atom in others]
        va = block_chain(position, subtree)
        vc = QDNode(
            set(own) | {reduction.links[position - 1]}, leaves + [va]
        )
        subtree = [vc]
    root = block_chain(0, subtree)
    return QueryDecomposition(reduction.query, root)


def reduction_round_trip(instance: XC3SInstance) -> tuple[bool, bool]:
    """(solvable, constructed-decomposition-validates): the two should
    coincide; used by tests and experiment E11."""
    reduction = build_reduction(instance)
    cover = instance.exact_cover()
    if cover is None:
        return False, False
    qd = decomposition_from_cover(reduction, cover)
    return True, (not qd.validate()) and qd.width <= 4
