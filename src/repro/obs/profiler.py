"""Continuous wall-clock sampling profiler (``repro.obs`` wave 2).

Spans (PR 6) say how long a phase took; they cannot say *where inside
the phase* the interpreter spent its time — and the last three PRs
showed that constant factors (probe loops, codec costs, scatter volume)
decide whether the tractability result actually wins on hardware.  This
module adds statistical profiles on top of the tracer:

* :class:`SamplingProfiler` — a daemon thread sampling
  ``sys._current_frames()`` at a configurable rate (default
  :data:`DEFAULT_HZ`).  Each sample walks one thread's frame stack into
  a collapsed *folded stack* string (``outer;inner;innermost``) and,
  when a live tracer is installed, prefixes it with the innermost
  active span (``span:sweep.semijoin;...``) — so flamegraphs attribute
  interpreter time to the pipeline phase that spent it.
* :class:`Profile` — the fold target: a thread-safe multiset of folded
  stacks.  Folding is *lossless by construction*: every sample adds
  exactly 1 to exactly one stack's count, merging sums counts, and both
  export formats carry the counts verbatim (property-tested).
* Exports — collapsed text (``stack count`` lines, the
  flamegraph.pl/inferno input format) and `speedscope
  <https://www.speedscope.app>`_ JSON via :meth:`Profile.speedscope`.

**Zero cost when off.**  Like the tracer, the off state is structural:
no sampler thread exists unless one is started, and the process-global
slot defaults to :data:`NULL_PROFILER` whose ``enabled`` is ``False``
(the benchmark gate in ``benchmarks/bench_obs.py`` additionally bounds
the *on* overhead at the default rate to <= 5%).

**One profile across processes.**  :class:`~repro.db.backend.
ProcessBackend` workers run their own sampler (started lazily on the
first profiled task) and ship drained folded samples back with task
replies — the same path worker spans travel — where the parent ingests
them under a ``worker-<pid>`` root frame.  One speedscope file therefore
covers the driver and every worker.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Iterable, Sequence

from .tracer import current_tracer

#: Environment variable switching profiling on for CLI entry points
#: (value = output path; "1" means "profile, default path").
PROFILE_ENV_VAR = "REPRO_PROFILE"

#: Default sampling rate.  99 Hz (not 100) so the sampler drifts
#: relative to any 10ms-periodic work instead of aliasing with it.
DEFAULT_HZ = 99.0

#: Frames deeper than this are truncated (pathological recursion guard).
MAX_STACK_DEPTH = 128


#: Rendered-name cache keyed by the code object itself (not ``id()``,
#: which CPython reuses after GC).  A process has a bounded set of code
#: objects, and caching keeps the per-sample cost to dict hits instead
#: of basename/format calls per frame — the sampler runs at 99 Hz on
#: the same GIL as the work it measures.
_frame_names: dict = {}


def _frame_name(code) -> str:
    name = _frame_names.get(code)
    if name is None:
        qual = getattr(code, "co_qualname", code.co_name)
        name = f"{os.path.basename(code.co_filename)}:{qual}"
        _frame_names[code] = name
    return name


def fold_frame(frame, limit: int = MAX_STACK_DEPTH) -> str:
    """Collapse a frame's call chain into ``outer;...;innermost``.

    Each frame renders as ``filename:qualname`` (basename only — full
    paths would make every environment's flamegraph unique).  The walk
    follows ``f_back`` innermost-to-outermost and is reversed, matching
    the collapsed-flamegraph convention of root-first stacks.
    """
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < limit:
        parts.append(_frame_name(frame.f_code))
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


class Profile:
    """A thread-safe multiset of folded stacks: ``stack -> samples``.

    The invariant every transformation preserves (and the hypothesis
    suite asserts): ``total()`` equals the number of ``add`` calls
    weighted by their counts, across ``merge``, ``collapsed`` round
    trips, and ``speedscope`` export.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def add(self, stack: str, count: int = 1) -> None:
        with self._lock:
            self._counts[stack] = self._counts.get(stack, 0) + count

    def merge(self, other: "Profile | Iterable[tuple[str, int]]") -> None:
        items = other.items() if isinstance(other, Profile) else other
        with self._lock:
            for stack, count in items:
                self._counts[stack] = self._counts.get(stack, 0) + count

    def items(self) -> list[tuple[str, int]]:
        """Snapshot of ``(folded stack, sample count)`` pairs."""
        with self._lock:
            return list(self._counts.items())

    def drain(self) -> tuple[tuple[str, int], ...]:
        """Atomically take and reset the counts (the worker-reply path:
        each task reply ships only the samples accumulated since the
        previous reply, so nothing is double-counted)."""
        with self._lock:
            items = tuple(self._counts.items())
            self._counts = {}
        return items

    def total(self) -> int:
        """Total number of samples across all stacks."""
        with self._lock:
            return sum(self._counts.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._counts)

    def __bool__(self) -> bool:
        with self._lock:
            return bool(self._counts)

    # -- exports ----------------------------------------------------------
    def collapsed(self) -> str:
        """The flamegraph.pl/inferno input format: ``stack count`` lines,
        deterministic order (count descending, then stack)."""
        return "\n".join(
            f"{stack} {count}"
            for stack, count in sorted(
                self.items(), key=lambda item: (-item[1], item[0])
            )
        )

    @classmethod
    def from_collapsed(cls, text: str) -> "Profile":
        """Parse :meth:`collapsed` output back (merge-friendly)."""
        profile = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            stack, _, count = line.rpartition(" ")
            profile.add(stack, int(count))
        return profile

    def speedscope(self, name: str = "repro profile") -> dict:
        """The speedscope sampled-profile file format (one profile whose
        sample weights are the folded counts; sum(weights) == total())."""
        frame_index: dict[str, int] = {}
        frames: list[dict] = []
        samples: list[list[int]] = []
        weights: list[int] = []
        for stack, count in sorted(self.items()):
            indices = []
            for frame_name in stack.split(";"):
                idx = frame_index.get(frame_name)
                if idx is None:
                    idx = frame_index[frame_name] = len(frames)
                    frames.append({"name": frame_name})
                indices.append(idx)
            samples.append(indices)
            weights.append(count)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "exporter": "repro.obs.profiler",
            "name": name,
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "none",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }


class SamplingProfiler:
    """A background wall-clock sampler over ``sys._current_frames()``.

    Samples every live thread except its own at ``hz``; with a live
    tracer installed each sample is prefixed with that thread's
    innermost active span (``span:<name>``).  The sampler thread is a
    daemon named :data:`THREAD_NAME` — tests and the overhead gate
    assert no such thread exists while profiling is off.
    """

    THREAD_NAME = "repro-profiler"

    enabled = True

    def __init__(self, hz: float = DEFAULT_HZ, tag_spans: bool = True):
        self.hz = float(hz)
        if self.hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz!r}")
        self.tag_spans = tag_spans
        self.profile = Profile()
        self.samples_taken = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        with self._lock:
            if self._thread is None or not self._thread.is_alive():
                self._stop.clear()
                self._thread = threading.Thread(
                    target=self._run, name=self.THREAD_NAME, daemon=True
                )
                self._thread.start()
        return self

    def stop(self) -> None:
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None and thread.is_alive():
            self._stop.set()
            thread.join(timeout=2.0)

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            self.sample_once()

    def sample_once(self) -> int:
        """Take one sample of every other thread; returns stacks added.

        Public so tests can sample deterministically without the timing
        thread.
        """
        me = threading.get_ident()
        tracer = current_tracer() if self.tag_spans else None
        added = 0
        for ident, frame in sys._current_frames().items():
            if ident == me:
                continue
            stack = fold_frame(frame)
            if not stack:
                continue
            if tracer is not None and tracer.enabled:
                span = tracer.active_span(ident)
                if span is not None:
                    stack = f"span:{span};{stack}"
            self.profile.add(stack)
            added += 1
        self.samples_taken += 1
        return added

    def ingest(self, samples: Sequence[tuple[str, int]], label: str | None = None) -> None:
        """Merge folded samples drained from another process, rooted
        under *label* (the backend labels worker samples
        ``worker-<pid>``) so driver and worker stacks stay separable in
        one flamegraph."""
        if label:
            self.profile.merge(
                (f"{label};{stack}", count) for stack, count in samples
            )
        else:
            self.profile.merge(samples)

    def drain(self) -> tuple[tuple[str, int], ...]:
        """Take-and-reset the folded samples (worker reply payload)."""
        return self.profile.drain()


class NullProfiler:
    """The disabled profiler: no thread, no samples, no allocation."""

    enabled = False
    running = False
    hz = 0.0

    def ingest(self, samples, label: str | None = None) -> None:
        """Drop imported samples."""

    def drain(self) -> tuple:
        return ()


NULL_PROFILER = NullProfiler()


# -- the process-global current profiler ------------------------------------

_current: "NullProfiler | SamplingProfiler" = NULL_PROFILER


def current_profiler() -> "NullProfiler | SamplingProfiler":
    """The profiler instrumentation ships samples to (default: no-op)."""
    return _current


def set_profiler(profiler: "SamplingProfiler | NullProfiler | None") -> None:
    """Install *profiler* as the process-global current profiler
    (``None`` restores the no-op)."""
    global _current
    _current = profiler if profiler is not None else NULL_PROFILER


class profiling:
    """Context manager installing (and running) a profiler::

        with profiling(SamplingProfiler(hz=199)) as prof:
            engine.execute(query, db)
        write_speedscope(prof.profile, "profile.speedscope.json")

    Starts the sampler thread on entry (if not already running), stops
    it and restores the previous profiler on exit.  Re-entrant like
    :func:`~repro.obs.tracer.tracing`: installing the already-current
    profiler neither restarts nor stops it.
    """

    def __init__(self, profiler: "SamplingProfiler | NullProfiler"):
        self.profiler = profiler
        self._previous: "SamplingProfiler | NullProfiler | None" = None

    def __enter__(self) -> "SamplingProfiler | NullProfiler":
        self._previous = current_profiler()
        if self._previous is not self.profiler:
            set_profiler(self.profiler)
            if isinstance(self.profiler, SamplingProfiler):
                self.profiler.start()
        return self.profiler

    def __exit__(self, *exc_info) -> None:
        if self._previous is not self.profiler:
            if isinstance(self.profiler, SamplingProfiler):
                self.profiler.stop()
            set_profiler(self._previous)


def profile_path_from_env() -> str | None:
    """The profile output path requested by ``$REPRO_PROFILE`` (same
    conventions as ``$REPRO_TRACE``: unset/empty/"0" = off, a bare
    truthy switch = default path, anything else = the path)."""
    raw = os.environ.get(PROFILE_ENV_VAR, "").strip()
    if not raw or raw == "0":
        return None
    if raw.lower() in ("1", "true", "yes", "on"):
        return "profile.speedscope.json"
    return raw


def write_speedscope(profile: Profile, path: str, name: str = "repro profile") -> int:
    """Write *profile* as a speedscope JSON file; returns total samples."""
    import json

    doc = profile.speedscope(name)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return sum(doc["profiles"][0]["weights"])


def write_collapsed(profile: Profile, path: str) -> int:
    """Write *profile* in collapsed flamegraph format; returns total
    samples."""
    text = profile.collapsed()
    with open(path, "w") as fh:
        fh.write(text + ("\n" if text else ""))
    return profile.total()
