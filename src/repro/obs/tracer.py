"""Nested-span tracing for the whole evaluation pipeline.

A :class:`Tracer` records *spans* — named intervals of wall-clock time
with structured attributes — from every layer of the stack: portfolio
decomposition attempts, plan-cache lookups, per-bag materialisation,
Yannakakis sweep operators, backend shard tasks (including tasks that
ran inside :class:`~repro.db.backend.ProcessBackend` worker processes,
whose spans are shipped back to the parent at reply time), and
incremental view maintenance batches.

Design constraints, in order:

1. **Zero overhead when off.**  The default tracer is the module-level
   :data:`NULL_TRACER`, whose ``enabled`` flag is ``False`` and whose
   ``span()`` returns one shared no-op context manager — no allocation,
   no clock read, no lock.  Hot loops additionally guard on
   ``tracer.enabled`` before building attribute dicts.
2. **One process-global current tracer.**  Spans are recorded from deep
   layers (shard operators, the decomposition portfolio) that would need
   a ``tracer=`` parameter threaded through a dozen signatures.  Instead
   :func:`current_tracer` reads a process-global slot that
   :func:`set_tracer` / the :func:`tracing` context manager install a
   live :class:`Tracer` into.  The engine installs its tracer around
   each request; concurrent requests under one engine share the tracer
   (it is thread-safe, and spans carry their thread id).
3. **Cross-process mergeable.**  Span timestamps are
   ``time.perf_counter()`` values, which on the platforms we target
   (CLOCK_MONOTONIC on Linux/macOS) are system-wide: spans recorded in a
   forked worker process line up with the parent's on one timeline.
   Workers record plain tuples (:func:`span_tuple`) and the parent
   ingests them with :meth:`Tracer.ingest`, labelled with the worker's
   pid.

The span stream is exported by :mod:`repro.obs.export` as a Chrome
trace-event file (``chrome://tracing`` / Perfetto loadable) or consumed
in-process by ``Engine.explain(analyze=True)``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from .metrics import get_registry

#: Environment variable switching tracing on for CLI entry points (its
#: value, when not empty/"0", is the default trace output path — "1"
#: means "trace, default path").
TRACE_ENV_VAR = "REPRO_TRACE"


@dataclass
class Span:
    """One finished span: a named interval with structured attributes.

    ``start`` / ``end`` are ``time.perf_counter()`` seconds (a shared
    monotonic timeline across forked processes); ``pid``/``tid`` locate
    the recording process and thread so exporters can lay spans out in
    per-worker tracks.
    """

    name: str
    start: float
    end: float
    pid: int
    tid: str
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __str__(self) -> str:
        extra = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
            if self.attrs
            else ""
        )
        return f"[{self.duration * 1e3:8.3f}ms] {self.name}{extra}"


class _NullSpan:
    """The shared do-nothing span: context manager and attribute sink."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        """Discard attributes (live spans record them)."""

    def add(self, key: str, value: float) -> None:
        """Discard accumulation (live spans sum into ``attrs``)."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``span()`` hands back one preallocated context manager, so the
    instrumented hot paths cost a method call and an empty ``with``
    block — measured well under the 5% budget the benchmark gate
    enforces (see ``benchmarks/bench_obs.py``).
    """

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def ingest(self, records, pid: int | None = None, tid: str | None = None) -> None:
        """Drop imported worker spans."""

    def spans(self) -> list[Span]:
        return []

    def active_span(self, ident: int) -> None:
        """No span is ever active on a disabled tracer."""
        return None


NULL_TRACER = NullTracer()


class _LiveSpan:
    """An open span: context manager recording into its tracer on exit."""

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (row counts, hits)."""
        self.attrs.update(attrs)

    def add(self, key: str, value: float) -> None:
        """Accumulate a numeric attribute (per-iteration volumes)."""
        self.attrs[key] = self.attrs.get(key, 0) + value

    def __enter__(self) -> "_LiveSpan":
        # Push onto this thread's active-span stack *before* taking the
        # start timestamp, so the bookkeeping cost stays outside the
        # measured interval.  Each thread only ever mutates its own
        # stack; the sampling profiler reads other threads' stacks under
        # the GIL (list append/pop are atomic).
        active = self._tracer._active
        ident = threading.get_ident()
        stack = active.get(ident)
        if stack is None:
            stack = active[ident] = []
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._record(
            Span(
                self.name,
                self._start,
                end,
                self._tracer.pid,
                threading.current_thread().name,
                self.attrs,
            )
        )
        stack = self._tracer._active.get(threading.get_ident())
        if stack:
            stack.pop()
        return False


class Tracer:
    """A thread-safe span recorder.

    Spans finish in arbitrary order across threads; each is appended to
    one flat list under a lock (span close is rare next to the work a
    span encloses).  ``max_spans`` bounds memory on pathological runs —
    beyond it new spans are counted in :attr:`dropped` instead of
    stored (and surfaced through the ``tracer.spans_dropped`` metrics
    counter, so a truncated trace cannot silently lie), so a forgotten
    long-lived tracer degrades gracefully.

    ``ring=True`` flips the bound's policy from *drop newest* to *evict
    oldest*: the tracer becomes a bounded ring that always holds the
    most recent ``max_spans`` spans, counting evictions in
    :attr:`evicted`.  That is the flight-recorder configuration — a
    black box wants the spans leading up to a failure, not the start of
    the run.

    The tracer also maintains a per-thread stack of *currently open*
    span names (:meth:`active_span`), which the sampling profiler reads
    to tag wall-clock samples with the innermost active span.
    """

    enabled = True

    def __init__(self, max_spans: int = 200_000, ring: bool = False):
        self.pid = os.getpid()
        self.created = time.perf_counter()
        self.max_spans = max_spans
        self.ring = ring
        self.dropped = 0
        self.evicted = 0
        self._lock = threading.Lock()
        self._spans: "list[Span] | deque[Span]" = (
            deque(maxlen=max_spans) if ring else []
        )
        # thread ident -> stack of open span names (each thread mutates
        # only its own stack; cross-thread reads are GIL-consistent).
        self._active: dict[int, list[str]] = {}

    def span(self, name: str, **attrs) -> _LiveSpan:
        """Open a span; use as ``with tracer.span("semijoin", node=...):``."""
        return _LiveSpan(self, name, attrs)

    def active_span(self, ident: int) -> str | None:
        """The innermost span currently open on thread *ident* (or None)."""
        stack = self._active.get(ident)
        return stack[-1] if stack else None

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                if self.ring:
                    self.evicted += 1
                    self._spans.append(span)  # deque evicts the oldest
                    return
                self.dropped += 1
                get_registry().counter("tracer.spans_dropped").inc()
                return
            self._spans.append(span)

    def ingest(
        self,
        records,
        pid: int | None = None,
        tid: str | None = None,
    ) -> None:
        """Import spans recorded elsewhere (worker processes).

        *records* is an iterable of :func:`span_tuple` tuples
        ``(name, start, end, pid, attrs)``; *pid*/*tid* override the
        track labels (the backend labels each worker's track).
        """
        imported = [
            Span(
                name,
                start,
                end,
                pid if pid is not None else rec_pid,
                tid if tid is not None else f"pid-{rec_pid}",
                dict(attrs),
            )
            for name, start, end, rec_pid, attrs in records
        ]
        with self._lock:
            if self.ring:
                self.evicted += max(
                    0, len(self._spans) + len(imported) - self.max_spans
                )
                self._spans.extend(imported)  # deque evicts the oldest
                return
            room = self.max_spans - len(self._spans)
            if room < len(imported):
                overflow = len(imported) - max(0, room)
                self.dropped += overflow
                get_registry().counter("tracer.spans_dropped").inc(overflow)
                imported = imported[: max(0, room)]
            self._spans.extend(imported)

    def spans(self) -> list[Span]:
        """A snapshot of the finished spans (safe to iterate/mutate)."""
        with self._lock:
            return list(self._spans)

    def spans_since(self, start: float) -> list[Span]:
        """Spans whose interval started at/after *start* (perf_counter
        seconds) — how the flight recorder isolates one request's spans
        out of the shared ring."""
        with self._lock:
            return [s for s in self._spans if s.start >= start]

    def view_since(self, start: float) -> "Tracer":
        """A detached tracer holding only the spans since *start* — how
        the engine renders one request's EXPLAIN ANALYZE / span tree out
        of the shared flight ring without re-executing anything."""
        view = Tracer(max_spans=self.max_spans)
        view.pid = self.pid
        view._spans = self.spans_since(start)
        return view

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0
            self.evicted = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- convenience views -------------------------------------------------
    def find(self, name: str) -> list[Span]:
        """Finished spans with exactly this name."""
        return [s for s in self.spans() if s.name == name]

    def total(self, name: str) -> float:
        """Summed duration of all spans with this name."""
        return sum(s.duration for s in self.find(name))


def span_tuple(name: str, start: float, end: float, attrs: dict) -> tuple:
    """The wire format for spans recorded inside worker processes:
    ``(name, start, end, pid, attrs)`` — plain picklable builtins."""
    return (name, start, end, os.getpid(), attrs)


# -- the process-global current tracer --------------------------------------

_current: NullTracer | Tracer = NULL_TRACER


def current_tracer() -> "NullTracer | Tracer":
    """The tracer instrumentation records into (default: the no-op)."""
    return _current


def set_tracer(tracer: "Tracer | NullTracer | None") -> None:
    """Install *tracer* as the process-global current tracer
    (``None`` restores the no-op)."""
    global _current
    _current = tracer if tracer is not None else NULL_TRACER


class tracing:
    """Context manager installing a tracer for a dynamic extent::

        with tracing(Tracer()) as tracer:
            engine.execute(query, db)
        write_chrome_trace(tracer, "trace.json")

    Re-entrant: installing the already-current tracer is a no-op, so an
    engine wrapping each request does not disturb an outer CLI-installed
    tracer.  Restores the previous tracer on exit.
    """

    def __init__(self, tracer: "Tracer | NullTracer"):
        self.tracer = tracer
        self._previous: "Tracer | NullTracer | None" = None

    def __enter__(self) -> "Tracer | NullTracer":
        self._previous = current_tracer()
        if self._previous is not self.tracer:
            set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc_info) -> None:
        if self._previous is not self.tracer:
            set_tracer(self._previous)


def trace_path_from_env() -> str | None:
    """The trace output path requested by ``$REPRO_TRACE``.

    Unset, empty, or ``"0"`` means tracing is off (``None``); ``"1"`` or
    a bare truthy switch means "on, default path ``trace.json``"; any
    other value is the output path itself.
    """
    raw = os.environ.get(TRACE_ENV_VAR, "").strip()
    if not raw or raw == "0":
        return None
    if raw.lower() in ("1", "true", "yes", "on"):
        return "trace.json"
    return raw


def iter_leaf_totals(spans: list[Span]) -> Iterator[tuple[str, float, int]]:
    """``(name, total_seconds, count)`` per span name, largest first —
    the quick textual profile ``repro stats`` prints for a trace."""
    totals: dict[str, tuple[float, int]] = {}
    for span in spans:
        seconds, count = totals.get(span.name, (0.0, 0))
        totals[span.name] = (seconds + span.duration, count + 1)
    for name, (seconds, count) in sorted(
        totals.items(), key=lambda item: -item[1][0]
    ):
        yield name, seconds, count
