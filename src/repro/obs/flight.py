"""Always-on flight recorder: a bounded black box for the engine.

Traces and profiles are things you *turn on* after something went
wrong; a flight recorder is already running when it does.  This module
keeps a small, bounded, always-on ring of recent activity —

* **events**: one entry per engine request (query, latency, rows, plan
  digest, per-request stat deltas), plus slow-query captures, errors,
  and worker deaths, in a ``deque(maxlen=capacity)``;
* **spans**: a ring-mode :class:`~repro.obs.tracer.Tracer`
  (evict-oldest) the engine installs around requests when nothing else
  is tracing, so the spans *leading up to* a failure are always
  available;

— and knows how to ``dump()`` itself to JSON when an
``EvaluationError``/``BudgetExceeded``/worker death strikes.  Dump
*files* are only written when a destination is configured
(``Engine(flight_dump=...)`` or ``$REPRO_FLIGHT_DUMP``); the in-memory
ring always records, so ``repro stats --flight`` can inspect a live
process and tests exercising failure paths do not litter the
filesystem.

The overhead budget is the tracer's: recording an event is a dict and a
deque append under a lock, per *request* (not per operator), and the
span ring reuses the existing instrumentation.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from .export import _jsonable
from .tracer import Span, Tracer

#: Environment variable naming the auto-dump destination (a file path,
#: or a directory to drop ``flight-<pid>-<n>.json`` files into).
FLIGHT_ENV_VAR = "REPRO_FLIGHT_DUMP"

#: Default event-ring capacity (requests + captures).
DEFAULT_CAPACITY = 256

#: Default span-ring capacity (most recent spans kept).
DEFAULT_SPAN_CAPACITY = 4096


@dataclass(frozen=True)
class FlightEvent:
    """One ring entry.  ``seq`` is a global monotone sequence number
    (total order across concurrent writers); ``wall`` is epoch seconds,
    ``perf`` the shared ``perf_counter`` timeline the spans live on."""

    seq: int
    kind: str
    wall: float
    perf: float
    payload: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "wall": self.wall,
            "perf": self.perf,
            **_jsonable_payload(self.payload),
        }


def _jsonable_payload(payload: dict) -> dict:
    """Payload coerced for JSON: scalars pass, dicts/lists recurse,
    everything else goes through repr."""
    out = {}
    for key, value in payload.items():
        out[str(key)] = _jsonable_value(value)
    return out


def _jsonable_value(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return _jsonable_payload(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable_value(v) for v in value]
    return repr(value)


def span_forest(spans: Sequence[Span]) -> list[dict]:
    """Nest flat spans into trees by interval containment per
    (pid, tid) track — the request's *span tree* the dump carries.

    Spans are sorted by (start, -end); a stack per track assigns each
    span to the innermost still-open enclosing span.
    """
    roots: list[dict] = []
    stacks: dict[tuple[int, str], list[tuple[Span, dict]]] = {}
    for span in sorted(spans, key=lambda s: (s.start, -s.end)):
        node = {
            "name": span.name,
            "start": span.start,
            "duration_ms": round(span.duration * 1e3, 6),
            "pid": span.pid,
            "tid": span.tid,
            "attrs": _jsonable(span.attrs),
            "children": [],
        }
        stack = stacks.setdefault((span.pid, span.tid), [])
        while stack and stack[-1][0].end < span.end:
            stack.pop()
        if stack and stack[-1][0].start <= span.start:
            stack[-1][1]["children"].append(node)
        else:
            roots.append(node)
        stack.append((span, node))
    return roots


def _render_forest(nodes: list[dict], indent: int = 0) -> list[str]:
    lines = []
    for node in nodes:
        lines.append(
            "  " * indent
            + f"[{node['duration_ms']:9.3f}ms] {node['name']}"
            + (f" ({node['tid']})" if indent == 0 else "")
        )
        lines.extend(_render_forest(node["children"], indent + 1))
    return lines


class FlightRecorder:
    """The bounded always-on ring of recent engine activity.

    Thread-safe; concurrent writers get a total order via ``seq``.  One
    process-global instance (:func:`get_flight_recorder`) backs every
    engine by default — a black box is most useful when there is
    exactly one of it.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
    ):
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._events: deque[FlightEvent] = deque(maxlen=self.capacity)
        self._seq = itertools.count()
        self.recorded = 0  # total record() calls, beyond the ring bound
        self.dumps = 0
        #: The always-on span ring engines fall back to when no other
        #: tracer is active (evict-oldest keeps the spans *before* a
        #: failure).
        self.tracer = Tracer(max_spans=span_capacity, ring=True)

    def record(self, kind: str, **payload) -> FlightEvent:
        """Append one event; cheap enough for the per-request hot path."""
        event = FlightEvent(
            seq=next(self._seq),
            kind=kind,
            wall=time.time(),
            perf=time.perf_counter(),
            payload=payload,
        )
        with self._lock:
            self._events.append(event)
            self.recorded += 1
        return event

    def events(self, kind: str | None = None) -> list[FlightEvent]:
        """Snapshot of the ring, oldest first (optionally one kind)."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        return events

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.recorded = 0
            self.dumps = 0
        self.tracer.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- snapshots and dumps ----------------------------------------------
    def snapshot(self, reason: str | None = None) -> dict:
        """The dump document: ring events plus the recent-span forest."""
        return {
            "flight": 1,
            "reason": reason,
            "pid": os.getpid(),
            "captured_at": time.time(),
            "capacity": self.capacity,
            "recorded": self.recorded,
            "events": [e.as_dict() for e in self.events()],
            "recent_spans": span_forest(self.tracer.spans()),
            "spans_evicted": self.tracer.evicted,
        }

    def dump(self, reason: str, path: str | None = None) -> str | None:
        """Write the snapshot to JSON if a destination is configured.

        *path* (or ``$REPRO_FLIGHT_DUMP``) may be a file path — used
        as-is, last dump wins — or a directory, in which case each dump
        gets a fresh ``flight-<pid>-<n>.json``.  Returns the written
        path, or ``None`` when no destination is configured (the ring
        still holds everything for ``repro stats --flight``).
        """
        destination = path or os.environ.get(FLIGHT_ENV_VAR, "").strip() or None
        if not destination:
            return None
        if os.path.isdir(destination):
            destination = os.path.join(
                destination, f"flight-{os.getpid()}-{self.dumps}.json"
            )
        doc = self.snapshot(reason)
        with open(destination, "w") as fh:
            json.dump(doc, fh, indent=1)
        self.dumps += 1
        return destination


def render_flight(snapshot: dict) -> str:
    """Human rendering of a flight snapshot (``repro stats --flight``)."""
    lines = [
        f"flight recorder: pid {snapshot.get('pid')}, "
        f"{len(snapshot.get('events', []))} event(s) in ring "
        f"({snapshot.get('recorded', 0)} recorded)"
        + (f", reason: {snapshot['reason']}" if snapshot.get("reason") else "")
    ]
    for event in snapshot.get("events", []):
        detail = {
            k: v
            for k, v in event.items()
            if k not in ("seq", "kind", "wall", "perf", "spans")
        }
        rendered = " ".join(f"{k}={v}" for k, v in detail.items())
        lines.append(f"  #{event.get('seq')} {event.get('kind')}: {rendered}")
    recent = snapshot.get("recent_spans", [])
    if recent:
        lines.append(f"recent spans ({len(recent)} root(s)):")
        lines.extend("  " + line for line in _render_forest(recent))
    return "\n".join(lines)


# -- the process-global recorder --------------------------------------------

_flight = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    """The process-global flight recorder engines record into."""
    return _flight


def set_flight_recorder(recorder: FlightRecorder | None) -> FlightRecorder:
    """Replace the global recorder (tests); ``None`` installs a fresh
    one.  Returns the new recorder."""
    global _flight
    _flight = recorder if recorder is not None else FlightRecorder()
    return _flight
