"""The perf-regression observatory: one schema, one diff, one gate.

Every ``benchmarks/bench_*.py`` suite used to emit a bespoke JSON blob;
comparing two runs meant eyeballing CI artifacts, so the recorded bench
trajectory stayed empty and regressions were invisible.  This module
unifies them:

* :func:`record` — one measurement: ``(suite, metric, value, unit,
  better, tolerance)``.  ``better`` says which direction is good
  (``"lower"`` for times, ``"higher"`` for speedups/hit rates);
  ``tolerance`` is the per-metric relative noise bound a comparison
  must exceed before it counts as a change.
* :func:`make_run` — a run document: schema version, an
  :func:`env_fingerprint`, and the records (suite-tagged).
* :func:`diff_runs` — direction-aware comparison of two runs.
  **Wall-clock units are only compared between identical environment
  fingerprints** — a CI runner is not a laptop — while ratios and
  counts (which are exact under seeded workloads, the strongest
  regression signal) always compare.  Returns a :class:`DiffReport`
  whose ``regressions`` gate CI: ``repro bench diff`` exits non-zero
  when any survive.

The committed baseline lives at ``benchmarks/baseline.json``; CI runs
the smoke-scale suites, ``repro bench record`` merges their emissions,
and ``repro bench diff`` compares against the baseline.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from typing import Iterable, Sequence

#: Schema version stamped into every run document.
SCHEMA_VERSION = 1

#: Default relative tolerance when a record does not carry its own.
DEFAULT_TOLERANCE = 0.25

#: Units that measure this machine rather than the algorithm: compared
#: only between identical environment fingerprints.  ``x`` (speedup
#: multipliers) is here because parallel speedups depend on core count.
ENV_BOUND_UNITS = frozenset({"seconds", "ms", "us", "ns", "qps", "bytes", "x"})


def env_fingerprint() -> dict:
    """What makes two runs' wall-clock numbers comparable."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def record(
    metric: str,
    value: float,
    unit: str,
    better: str = "lower",
    tolerance: float | None = None,
    suite: str | None = None,
) -> dict:
    """One benchmark measurement in the unified schema."""
    if better not in ("lower", "higher"):
        raise ValueError(f"better must be 'lower' or 'higher', got {better!r}")
    rec = {
        "metric": str(metric),
        "value": float(value),
        "unit": str(unit),
        "better": better,
    }
    if tolerance is not None:
        rec["tolerance"] = float(tolerance)
    if suite is not None:
        rec["suite"] = str(suite)
    return rec


def make_run(records: Iterable[dict], meta: dict | None = None) -> dict:
    """Wrap records into a run document with schema + env fingerprint."""
    return {
        "schema": SCHEMA_VERSION,
        "env": env_fingerprint(),
        **(meta or {}),
        "records": list(records),
    }


def load_run(path: str) -> dict:
    """Read and structurally validate a run document."""
    with open(path) as fh:
        doc = json.load(fh)
    problems = validate_run(doc)
    if problems:
        raise ValueError(
            f"{path} is not a bench run document: {'; '.join(problems[:5])}"
        )
    return doc


def validate_run(doc) -> list[str]:
    """Structural problems with a run document (empty = valid)."""
    problems = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema {doc.get('schema')!r} != {SCHEMA_VERSION}"
        )
    if not isinstance(doc.get("env"), dict):
        problems.append("missing env fingerprint")
    records = doc.get("records")
    if not isinstance(records, list):
        return problems + ["missing records list"]
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            problems.append(f"records[{i}] is not an object")
            continue
        for key in ("metric", "value", "unit", "better"):
            if key not in rec:
                problems.append(f"records[{i}] missing {key!r}")
        if rec.get("better") not in ("lower", "higher", None):
            problems.append(
                f"records[{i}].better {rec.get('better')!r} invalid"
            )
    return problems


def merge_runs(
    suite_docs: Sequence[tuple[str, dict]], meta: dict | None = None
) -> dict:
    """``repro bench record``: merge per-suite benchmark emissions
    (``(suite name, bench JSON)`` pairs, each carrying a ``records``
    list) into one run document, tagging each record with its suite."""
    merged: list[dict] = []
    for suite, doc in suite_docs:
        for rec in doc.get("records", []):
            tagged = dict(rec)
            tagged.setdefault("suite", suite)
            merged.append(tagged)
    return make_run(merged, meta=meta)


@dataclass
class Comparison:
    """One metric's baseline-vs-current verdict."""

    suite: str
    metric: str
    unit: str
    better: str
    baseline: float | None
    current: float | None
    tolerance: float
    #: ok | regression | improvement | skipped_env | new | missing
    status: str
    change: float | None = None  # signed relative change vs baseline

    @property
    def key(self) -> str:
        return f"{self.suite}/{self.metric}" if self.suite else self.metric

    def render(self) -> str:
        def fmt(v):
            return "-" if v is None else f"{v:.6g}"

        change = (
            f" ({self.change:+.1%} vs ±{self.tolerance:.0%})"
            if self.change is not None
            else ""
        )
        return (
            f"{self.status:>11}  {self.key} [{self.unit}, {self.better} is "
            f"better]: {fmt(self.baseline)} -> {fmt(self.current)}{change}"
        )


@dataclass
class DiffReport:
    """The outcome of :func:`diff_runs`; ``ok`` gates CI."""

    comparisons: list[Comparison] = field(default_factory=list)
    same_env: bool = False

    @property
    def regressions(self) -> list[Comparison]:
        return [c for c in self.comparisons if c.status == "regression"]

    @property
    def improvements(self) -> list[Comparison]:
        return [c for c in self.comparisons if c.status == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        counts: dict[str, int] = {}
        for c in self.comparisons:
            counts[c.status] = counts.get(c.status, 0) + 1
        summary = ", ".join(
            f"{n} {status}" for status, n in sorted(counts.items())
        )
        lines = [
            f"bench diff: {len(self.comparisons)} metric(s) ({summary or 'none'})"
            + ("" if self.same_env else " [env differs: wall-clock skipped]")
        ]
        interesting = [
            c for c in self.comparisons if c.status != "ok"
        ] or self.comparisons
        lines.extend(c.render() for c in interesting)
        verdict = (
            "OK: no regressions"
            if self.ok
            else f"REGRESSION: {len(self.regressions)} metric(s) regressed"
        )
        lines.append(verdict)
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "same_env": self.same_env,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "comparisons": [
                {
                    "suite": c.suite,
                    "metric": c.metric,
                    "unit": c.unit,
                    "better": c.better,
                    "baseline": c.baseline,
                    "current": c.current,
                    "tolerance": c.tolerance,
                    "status": c.status,
                    "change": c.change,
                }
                for c in self.comparisons
            ],
        }


def _index(doc: dict) -> dict[str, dict]:
    out = {}
    for rec in doc.get("records", []):
        suite = rec.get("suite", "")
        out[f"{suite}/{rec['metric']}" if suite else rec["metric"]] = rec
    return out


def diff_runs(
    baseline: dict,
    current: dict,
    default_tolerance: float = DEFAULT_TOLERANCE,
    compare_all: bool = False,
) -> DiffReport:
    """Compare *current* against *baseline*, direction-aware.

    Per metric: the relative change beyond the metric's tolerance (its
    own ``tolerance`` field, else *default_tolerance*) in the *worse*
    direction is a regression; beyond it in the better direction an
    improvement; within it, ok.  Env-bound units (seconds, qps, ...)
    are ``skipped_env`` unless the fingerprints match or *compare_all*
    forces them.  Metrics present on one side only are ``new`` /
    ``missing`` (a vanished metric is worth noticing, not failing on).
    """
    same_env = baseline.get("env") == current.get("env")
    base_index = _index(baseline)
    cur_index = _index(current)
    report = DiffReport(same_env=same_env)
    for key in sorted(base_index.keys() | cur_index.keys()):
        base_rec = base_index.get(key)
        cur_rec = cur_index.get(key)
        rec = cur_rec or base_rec
        suite = rec.get("suite", "")
        tolerance = float(
            (cur_rec or {}).get(
                "tolerance", (base_rec or {}).get("tolerance", default_tolerance)
            )
        )
        comparison = Comparison(
            suite=suite,
            metric=rec["metric"],
            unit=rec.get("unit", ""),
            better=rec.get("better", "lower"),
            baseline=None if base_rec is None else float(base_rec["value"]),
            current=None if cur_rec is None else float(cur_rec["value"]),
            tolerance=tolerance,
            status="ok",
        )
        if base_rec is None:
            comparison.status = "new"
        elif cur_rec is None:
            comparison.status = "missing"
        elif (
            rec.get("unit") in ENV_BOUND_UNITS
            and not same_env
            and not compare_all
        ):
            comparison.status = "skipped_env"
        else:
            comparison.status, comparison.change = _judge(
                comparison.baseline,
                comparison.current,
                comparison.better,
                tolerance,
            )
        report.comparisons.append(comparison)
    return report


def _judge(
    baseline: float, current: float, better: str, tolerance: float
) -> tuple[str, float]:
    """(status, signed relative change).  A zero baseline compares
    exactly: any nonzero current is an infinite relative change in
    whichever direction it moved."""
    if baseline == 0:
        if current == 0:
            return "ok", 0.0
        change = float("inf") if current > 0 else float("-inf")
    else:
        change = (current - baseline) / abs(baseline)
    worse = change > tolerance if better == "lower" else change < -tolerance
    improved = change < -tolerance if better == "lower" else change > tolerance
    if worse:
        return "regression", change
    if improved:
        return "improvement", change
    return "ok", change
