"""Exporters: Chrome trace-event files and JSON metrics snapshots.

``chrome://tracing`` and Perfetto (https://ui.perfetto.dev) both load
the trace-event JSON array format: complete events (``"ph": "X"``) with
microsecond ``ts``/``dur``, integer ``pid``/``tid``, and ``args`` for
the structured attributes; metadata events (``"ph": "M"``) name the
process/thread tracks.  :func:`chrome_trace_events` lays the tracer's
spans out with one track per (pid, thread) pair — worker-process shard
spans therefore appear as their own named rows, which is the point: the
time a shard task spent inside a worker used to be invisible.

:func:`validate_chrome_trace` is the schema check the CI trace-smoke job
runs on the artifact before uploading it — cheap structural validation,
not a rendering test.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from .metrics import MetricsRegistry, get_registry
from .tracer import Span, Tracer


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The tracer's spans as a Chrome trace-event list.

    Timestamps are rebased to the tracer's creation (µs), so traces
    start near zero.  Each distinct ``(pid, tid-name)`` pair becomes an
    integer ``tid`` with a ``thread_name`` metadata event; each pid gets
    a ``process_name`` event (the parent process vs shard workers).
    """
    spans = tracer.spans()
    events: list[dict] = []
    tids: dict[tuple[int, str], int] = {}
    pids_seen: set[int] = set()
    for span in spans:
        key = (span.pid, span.tid)
        if key not in tids:
            tids[key] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": tids[key],
                    "args": {"name": span.tid},
                }
            )
        if span.pid not in pids_seen:
            pids_seen.add(span.pid)
            label = (
                "repro" if span.pid == tracer.pid else f"repro worker {span.pid}"
            )
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "cat": span.name.split(":", 1)[0].split(".", 1)[0],
                "ts": (span.start - tracer.created) * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": tids[(span.pid, span.tid)],
                "args": _jsonable(span.attrs),
            }
        )
    return events


def _jsonable(attrs: Mapping) -> dict:
    """Attribute values coerced to JSON-safe scalars (repr fallback)."""
    out = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[str(key)] = value
        else:
            out[str(key)] = repr(value)
    return out


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the trace-event JSON array to *path*; returns the event
    count (CLI feedback)."""
    events = chrome_trace_events(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(events, handle)
    return len(events)


def validate_chrome_trace(events: object) -> list[str]:
    """Structural schema check of a trace-event array.

    Returns a list of problems (empty = valid).  Checks the fields the
    Perfetto/catapult loaders actually require: a JSON array; every
    event an object with string ``name``/``ph`` and integer-like
    ``pid``/``tid``; complete events (``X``) additionally with numeric
    non-negative ``ts`` and ``dur``.
    """
    problems: list[str] = []
    if not isinstance(events, list):
        return [f"trace must be a JSON array, got {type(events).__name__}"]
    if not events:
        problems.append("trace contains no events")
    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            problems.append(f"{where}: missing 'ph'")
            continue
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing integer {field!r}")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"{where}: complete event needs numeric >=0 "
                        f"{field!r}, got {value!r}"
                    )
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: 'args' must be an object")
    return problems


def metrics_snapshot(registry: MetricsRegistry | None = None) -> dict:
    """JSON-ready snapshot of *registry* (default: the global one)."""
    return (registry if registry is not None else get_registry()).snapshot()


def write_metrics_snapshot(
    path: str, registry: MetricsRegistry | None = None
) -> dict:
    """Write the metrics snapshot to *path* and return it."""
    snapshot = metrics_snapshot(registry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
    return snapshot


def render_metrics(snapshot: Mapping) -> str:
    """Human-readable rendering of a metrics snapshot (``repro stats``)."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name} = {counters[name]:g}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name} = {gauges[name]:g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            if not h.get("count"):
                lines.append(f"  {name}: empty")
                continue
            lines.append(
                f"  {name}: count={h['count']} mean={h['mean']:.6g} "
                f"p50={h.get('p50', 0):.6g} p95={h.get('p95', 0):.6g} "
                f"p99={h.get('p99', 0):.6g} max={h['max']:.6g}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def render_trace_summary(events: Sequence[Mapping]) -> str:
    """Per-name totals of a trace-event array, largest first (the quick
    profile ``repro stats trace.json`` prints after validating)."""
    totals: dict[str, tuple[float, int]] = {}
    threads: set[tuple] = set()
    for event in events:
        if event.get("ph") != "X":
            continue
        name = event.get("name", "?")
        seconds, count = totals.get(name, (0.0, 0))
        totals[name] = (seconds + event.get("dur", 0) / 1e6, count + 1)
        threads.add((event.get("pid"), event.get("tid")))
    lines = [
        f"{len(events)} events, "
        f"{sum(c for _, c in totals.values())} spans across "
        f"{len(threads)} thread track(s)"
    ]
    for name, (seconds, count) in sorted(
        totals.items(), key=lambda item: -item[1][0]
    )[:20]:
        lines.append(f"  {seconds * 1e3:10.3f}ms  {count:6d}x  {name}")
    return "\n".join(lines)


def spans_by_attr(
    spans: Sequence[Span], name: str, attr: str
) -> dict[object, list[Span]]:
    """Group *name*-spans by one attribute value (EXPLAIN ANALYZE's
    per-plan-node aggregation helper)."""
    grouped: dict[object, list[Span]] = {}
    for span in spans:
        if span.name == name and attr in span.attrs:
            grouped.setdefault(span.attrs[attr], []).append(span)
    return grouped
