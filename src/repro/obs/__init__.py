"""``repro.obs`` — end-to-end tracing and metrics for the whole stack.

Two complementary instruments, both with strictly-zero-cost off states:

* **Tracing** (:mod:`~repro.obs.tracer`): nested wall-clock spans with
  structured attributes, recorded from every layer — portfolio
  decomposition attempts, plan-cache lookups, bag materialisation,
  Yannakakis sweep operators, backend shard tasks (including spans
  captured *inside* :class:`~repro.db.backend.ProcessBackend` worker
  processes and shipped back at reply time), and incremental view
  maintenance.  Exported as Chrome trace-event JSON
  (:func:`~repro.obs.export.write_chrome_trace`), loadable in
  ``chrome://tracing`` or Perfetto, or consumed in-process by
  ``Engine.explain(query, db, analyze=True)``.
* **Metrics** (:mod:`~repro.obs.metrics`): a process-global registry of
  counters, gauges and fixed-bucket histograms (p50/p95/p99) absorbing
  ``EvalStats``, plan-cache hit rates, backend scatter/gather volumes,
  skew-guard activations, and live-view maintenance stats.  Exported as
  a JSON snapshot (``repro stats``, ``repro run --metrics out.json``).

Switches: the ``--trace out.json`` CLI flag, the ``$REPRO_TRACE``
environment variable, or programmatic ``with tracing(Tracer()) as t:``.

>>> from repro import Engine, parse_query
>>> from repro.db import Database
>>> from repro.obs import Tracer, tracing
>>> db = Database.from_relations({"e": [(1, 2), (2, 3)]})
>>> with tracing(Tracer()) as t:
...     _ = Engine().execute(parse_query("e(X,Y), e(Y,Z)"), db)
>>> bool(t.find("engine.execute"))
True
"""

from .export import (
    chrome_trace_events,
    metrics_snapshot,
    render_metrics,
    render_trace_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_snapshot,
)
from .flight import (
    FlightEvent,
    FlightRecorder,
    get_flight_recorder,
    render_flight,
    set_flight_recorder,
    span_forest,
)
from .history import (
    DiffReport,
    diff_runs,
    env_fingerprint,
    load_run,
    make_run,
    merge_runs,
    record,
    validate_run,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .profiler import (
    NULL_PROFILER,
    NullProfiler,
    Profile,
    SamplingProfiler,
    current_profiler,
    fold_frame,
    profile_path_from_env,
    profiling,
    set_profiler,
    write_collapsed,
    write_speedscope,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    trace_path_from_env,
    tracing,
)

__all__ = [
    "NULL_PROFILER",
    "NULL_TRACER",
    "Counter",
    "DiffReport",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullProfiler",
    "NullTracer",
    "Profile",
    "SamplingProfiler",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "current_profiler",
    "current_tracer",
    "diff_runs",
    "env_fingerprint",
    "fold_frame",
    "get_flight_recorder",
    "get_registry",
    "load_run",
    "make_run",
    "merge_runs",
    "metrics_snapshot",
    "profile_path_from_env",
    "profiling",
    "record",
    "render_flight",
    "render_metrics",
    "render_trace_summary",
    "set_flight_recorder",
    "set_profiler",
    "set_tracer",
    "span_forest",
    "trace_path_from_env",
    "tracing",
    "validate_chrome_trace",
    "validate_run",
    "write_chrome_trace",
    "write_collapsed",
    "write_metrics_snapshot",
    "write_speedscope",
]
