"""A process-global metrics registry: counters, gauges, histograms.

The registry absorbs the counter bags scattered across the stack —
:class:`~repro.db.stats.EvalStats` operator counts, the plan cache's
hit/miss/eviction numbers, backend scatter/gather volumes, the sharder's
skew-guard activations, and :class:`~repro.incremental.live.LiveEngine`
per-batch maintenance stats — into one named, thread-safe, exportable
surface (``repro stats``, ``--metrics out.json``).

Three instrument kinds:

* :class:`Counter` — monotonically increasing float (``inc``);
* :class:`Gauge` — last-write-wins float (``set``);
* :class:`Histogram` — fixed-bucket latency/size distribution with
  count/sum/min/max and quantile estimation (p50/p95/p99 in exports).
  Buckets are fixed at construction, so ``observe`` is O(log buckets)
  with no allocation, safe on hot paths.  Quantiles interpolate linearly
  inside the bracketing bucket and clamp to the observed min/max, so an
  estimate always lies within the bucket that contains the true sample
  quantile (property-tested in ``tests/obs/test_metrics.py``).

Instruments are created on first use (``registry.counter("x").inc()``)
and a name permanently denotes one instrument of one kind — asking for
the same name as a different kind raises, catching wiring typos early.

The process-global registry (:func:`get_registry`) exists because the
instrumented layers (db, engine, incremental) must not thread a registry
parameter through every signature; tests that need isolation construct
private :class:`MetricsRegistry` instances or call
:meth:`MetricsRegistry.reset`.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterable, Mapping

#: Default histogram buckets: exponential, 10µs → ~100s, suited to both
#: operator latencies and request latencies.  The upper edges are the
#: ``le`` (less-or-equal) bounds; one implicit +inf bucket catches the
#: rest.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
    for base in (1.0, 2.5, 5.0)
)

#: Buckets for tuple/row volumes (1 → 10M, exponential).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = tuple(
    base * scale
    for scale in (1, 10, 100, 1_000, 10_000, 100_000, 1_000_000)
    for base in (1.0, 2.5, 5.0)
)


class Counter:
    """A monotonically increasing metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins metric (pool sizes, cache occupancy)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution with quantile estimation.

    ``bounds`` are ascending upper (``le``) edges; samples above the
    last edge land in the implicit +inf bucket.  Quantile estimates
    interpolate linearly within the bracketing bucket, clamped to the
    observed ``[min, max]`` — so for the +inf bucket the estimate is the
    observed maximum, never infinity.
    """

    __slots__ = (
        "name", "bounds", "_counts", "_count", "_sum", "_min", "_max",
        "_lock",
    )

    def __init__(self, name: str, bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        self.name = name
        self.bounds = tuple(sorted(set(float(b) for b in bounds)))
        if not self.bounds:
            raise ValueError(f"histogram {name!r} needs >= 1 bucket bound")
        self._counts = [0] * (len(self.bounds) + 1)  # +1: the +inf bucket
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0 ≤ q ≤ 1) from the buckets.

        The true sample quantile lies in some bucket ``(lo, hi]``; the
        estimate interpolates by rank inside that bucket and clamps to
        the observed min/max, so ``lo ≤ estimate ≤ hi`` always brackets
        correctly.  Returns ``nan`` with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            if self._count == 0:
                return float("nan")
            # Rank of the q-quantile sample, 1-based, nearest-rank.
            rank = max(1, round(q * self._count))
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    lo = self.bounds[index - 1] if index > 0 else self._min
                    hi = (
                        self.bounds[index]
                        if index < len(self.bounds)
                        else self._max
                    )
                    fraction = (rank - cumulative) / bucket_count
                    estimate = lo + (hi - lo) * fraction
                    return min(max(estimate, self._min), self._max)
                cumulative += bucket_count
            return self._max  # pragma: no cover - rank always <= count

    def snapshot(self) -> dict:
        """Exportable summary: count/sum/min/max, p50/p95/p99, and the
        non-empty buckets as ``[le, count]`` pairs."""
        with self._lock:
            count, total = self._count, self._sum
            observed_min = self._min if count else None
            observed_max = self._max if count else None
            buckets = [
                [
                    self.bounds[i] if i < len(self.bounds) else None,
                    bucket_count,
                ]
                for i, bucket_count in enumerate(self._counts)
                if bucket_count
            ]
        row: dict = {
            "count": count,
            "sum": total,
            "min": observed_min,
            "max": observed_max,
            "mean": (total / count) if count else None,
            "buckets": buckets,
        }
        if count:
            row["p50"] = self.quantile(0.50)
            row["p95"] = self.quantile(0.95)
            row["p99"] = self.quantile(0.99)
        return row


class ScopedRegistry:
    """A prefixing view of a :class:`MetricsRegistry`.

    ``registry.scoped("tenant.acme").counter("requests")`` is the
    instrument named ``tenant.acme.requests`` in the parent registry —
    the label lives in the name, so the flat snapshot/export machinery
    needs no schema change and :func:`group_scoped` can fold the names
    back into per-label groups (``repro stats --json``).
    """

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str):
        self._registry = registry
        self.prefix = prefix.rstrip(".")

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self.prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(f"{self.prefix}.{name}")

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._registry.histogram(f"{self.prefix}.{name}", bounds)

    def scoped(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self._registry, f"{self.prefix}.{prefix}")


def group_scoped(snapshot: Mapping, scope: str = "tenant") -> dict:
    """Fold ``<scope>.<label>.<metric>`` instruments of a snapshot into
    ``{label: {metric: value}}`` groups.

    The inverse of :class:`ScopedRegistry` naming, used by ``repro stats
    --json`` to expose per-tenant labels as structure instead of leaving
    clients to parse dotted names.  Histograms contribute their summary
    dict, counters and gauges their value.
    """
    marker = scope + "."
    grouped: dict[str, dict[str, object]] = {}
    for kind in ("counters", "gauges", "histograms"):
        for name, value in snapshot.get(kind, {}).items():
            if not name.startswith(marker):
                continue
            label, _, metric = name[len(marker):].partition(".")
            if not label or not metric:
                continue
            grouped.setdefault(label, {})[metric] = value
    return grouped


class MetricsRegistry:
    """Named instruments, created on first use, exported as one snapshot.

    Thread-safe: instrument creation is guarded by the registry lock and
    each instrument guards its own updates.  One name maps permanently
    to one instrument of one kind.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
                return instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self,
        name: str,
        bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def scoped(self, prefix: str) -> ScopedRegistry:
        """A view whose instrument names carry ``prefix.`` — the
        label-in-name scheme per-tenant metrics use
        (``tenant.<id>.requests``)."""
        return ScopedRegistry(self, prefix)

    def record_eval(self, stats, prefix: str = "eval") -> None:
        """Absorb an :class:`~repro.db.stats.EvalStats` counter bag."""
        self.counter(f"{prefix}.joins").inc(stats.joins)
        self.counter(f"{prefix}.semijoins").inc(stats.semijoins)
        self.counter(f"{prefix}.projections").inc(stats.projections)
        self.counter(f"{prefix}.tuples_produced").inc(
            stats.total_tuples_produced
        )
        self.histogram(f"{prefix}.max_intermediate", DEFAULT_SIZE_BUCKETS).observe(
            stats.max_intermediate
        )
        for note, value in stats.notes.items():
            self.counter(f"{prefix}.note.{note}").inc(max(0.0, value))

    def record_cache(self, snapshot: Mapping[str, float], prefix: str = "plan_cache") -> None:
        """Absorb a :meth:`~repro.engine.cache.PlanCache.snapshot` —
        gauges, since the cache already accumulates its own counters."""
        for key, value in snapshot.items():
            self.gauge(f"{prefix}.{key}").set(float(value))

    def snapshot(self) -> dict:
        """One JSON-ready view of every instrument, grouped by kind."""
        with self._lock:
            instruments = dict(self._instruments)
        counters = {}
        gauges = {}
        histograms = {}
        for name in sorted(instruments):
            instrument = instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry the instrumented layers record into."""
    return _REGISTRY
