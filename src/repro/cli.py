"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``width QUERY [--upper-bound] [--qw]``
    Print acyclicity, hypertree-width and (optionally) query-width.  With
    ``--upper-bound`` the exponential exact search is skipped: the fast
    heuristic bracket ``[lower bound, greedy upper bound]`` is printed
    instead, which is the right tool for large queries.
``decompose QUERY [-k K] [--strategy S] [--budget SECONDS]``
    Compute and render a hypertree decomposition.  ``--strategy`` selects
    the portfolio mode:

    * ``exact`` (default) — the paper's ``k-decomp`` search, optimal
      width, exponential time;
    * ``heuristic`` — polynomial-time ordering-based GHTD construction
      (checker-validated, width may exceed the optimum);
    * ``auto`` — heuristics first, their width seeding the exact search;
      falls back to the heuristic result if ``--budget`` runs out.

    ``--budget SECONDS`` bounds the exact search; when the budget is
    exhausted (or no width ≤ K decomposition exists under ``-k``) the
    command exits with status 1 and a one-line message — never a
    traceback.
``evaluate QUERY FACTS [--method M]``
    Evaluate a query against a facts file (one ground atom per line).
``run FACTS QUERY [QUERY ...] [--repeat N] [--budget S] [--workers N]``
    Evaluate one or more queries through the :class:`repro.engine.Engine`
    pipeline (fingerprint → plan cache → physical plan → Yannakakis).
    Structurally identical queries share one cached decomposition;
    ``--repeat`` re-runs the batch to demonstrate warm-cache
    amortisation, and ``--stats`` prints the merged counters plus the
    cache's hit/miss/eviction numbers.  ``--backend
    sequential|thread|process`` selects where shard tasks run; shard
    counts themselves come from cardinality estimates — relations under
    ~1k rows stay unsharded.  ``--layout row|columnar|auto`` picks the
    bag storage layout (columnar = vectorised kernels + shared-memory
    scatter).  ``--semiring count|mincost|provenance|prob``
    switches the batch to annotated evaluation (derivation counts,
    cheapest witnesses, why-provenance, probabilities).
``explain QUERY [FACTS] [--analyze] [--backend B] [--layout L]``
    Render the physical plan the engine would execute: cached-or-fresh
    decomposition provenance, per-bag join order with cardinality
    estimates (when FACTS is given), and the rooted join tree.  With
    ``--analyze`` the query is executed once under a tracer and the
    rendering gains per-node *actual* row counts and wall times next to
    the estimates (EXPLAIN ANALYZE).
``watch QUERY [FACTS] [--deltas FILE]``
    Register the query as a live materialized view and stream updates
    through it.  Each update line is a ground atom with an optional
    sign — ``+e(1, 2).`` inserts, ``-e(1, 2).`` deletes, an unsigned
    atom inserts — read from ``--deltas FILE`` (default: stdin, one
    batch per line).  After every batch the *answer delta* is printed
    (``+ (..)`` rows appeared, ``- (..)`` rows vanished), which is the
    incremental subsystem's headline: maintenance cost scales with the
    delta, not the database.
``stats [FILE] [--json] [--flight]``
    Validate and summarise a ``--trace`` file (Chrome trace-event
    schema), render a ``--metrics`` snapshot or a flight-recorder dump
    (auto-detected), or — without FILE — the current process's metrics
    registry (``--flight``: its flight-recorder ring).  ``--json``
    switches to machine-readable output.  A truncated trace (spans
    dropped by the ``max_spans`` guard) gets a stderr warning.
``bench record --out run.json BENCH_*.json`` / ``bench diff BASE CUR``
    The perf-regression observatory: merge benchmark emissions into one
    unified run document (schema, env fingerprint, suite-tagged
    records), then compare runs direction-aware with per-metric noise
    tolerances — wall-clock metrics only compare between identical env
    fingerprints; ratios and counts always do.  ``diff`` exits 1 on any
    regression, which is the CI gate.
``serve [FACTS] [--port P] [--rate R] [--tenant-budget S] ...``
    Run the multi-tenant query service: newline-delimited JSON over TCP,
    per-tenant databases/budgets/rate limits over one shared plan cache,
    bounded-queue admission control with typed retryable shed responses,
    and push subscriptions fed by the incremental view machinery.
``loadgen QUERY [...] [--mode closed|open] [--assert-p99-ms MS] ...``
    Open/closed-loop load generator against a running server: reports
    p50/p95/p99 latency, throughput, and typed outcome counts, writes a
    latency-histogram JSON (``--out``), and gates CI via
    ``--assert-p99-ms`` / ``--assert-no-shed``.
``contains Q2 Q1``
    Decide Q1 ⊑ Q2 (Chandra–Merlin through the decomposition pipeline).

``run``, ``watch``, and ``serve`` accept ``--slow-query-ms MS`` (flight
recorder slow-query log) and ``--flight-dump PATH`` (failure-dump
destination, default ``$REPRO_FLIGHT_DUMP``).

``run``, ``watch`` and ``explain`` accept ``--trace PATH`` (or
``$REPRO_TRACE``) to export a Chrome trace-event file of the request's
spans — including spans recorded inside process-backend workers — and
``--metrics PATH`` for a JSON metrics snapshot; ``--profile PATH`` (or
``$REPRO_PROFILE``) runs the wall-clock sampling profiler alongside and
writes a speedscope JSON profile (or collapsed text for
``.txt``/``.folded`` paths) covering driver and workers.
``experiments [ID ...]``
    Run the reproduction experiments (same as ``python -m
    repro.experiments``).

``QUERY`` arguments are either inline rule text or a path to a file
containing it.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import sys
import time

from ._errors import (
    BudgetExceeded,
    ReproError,
    UnknownAttributeError,
    UnknownRelationError,
)
from .core.acyclicity import is_acyclic
from .core.containment import contains
from .core.detkdecomp import decompose_k, hypertree_width
from .core.parser import parse_atom, parse_query
from .core.query import ConjunctiveQuery
from .core.qwsearch import query_width
from .db.database import Database
from .db.evaluate import evaluate, evaluate_boolean
from .db.stats import EvalStats
from .engine import Engine
from .heuristics import decompose as portfolio_decompose
from .heuristics import greedy_upper_bound, lower_bound
from .obs import (
    SamplingProfiler,
    Tracer,
    diff_runs,
    get_flight_recorder,
    load_run,
    merge_runs,
    metrics_snapshot,
    profile_path_from_env,
    profiling,
    render_flight,
    render_metrics,
    render_trace_summary,
    trace_path_from_env,
    tracing,
    validate_chrome_trace,
    write_chrome_trace,
    write_collapsed,
    write_metrics_snapshot,
    write_speedscope,
)


def _load_query(text_or_path: str, name: str = "Q") -> ConjunctiveQuery:
    path = pathlib.Path(text_or_path)
    if path.exists() and path.is_file():
        return parse_query(path.read_text(), name=path.stem)
    return parse_query(text_or_path, name=name)


def _load_facts(path: str) -> Database:
    db = Database()
    for raw in pathlib.Path(path).read_text().splitlines():
        line = raw.strip().rstrip(".")
        if not line or line.startswith(("#", "%")):
            continue
        db.add_atom(parse_atom(line))
    return db


@contextlib.contextmanager
def _observed(args: argparse.Namespace):
    """Tracing/profiling/metrics wrapper for the execution commands.

    Installs a tracer for the command's dynamic extent when ``--trace``
    (or ``$REPRO_TRACE``) asks for one and writes the Chrome trace-event
    file on the way out; likewise a sampling profiler for ``--profile``
    (or ``$REPRO_PROFILE``), written as speedscope JSON (or collapsed
    text when the path ends in ``.txt``/``.folded``/``.collapsed``);
    writes the ``--metrics`` snapshot regardless.  Notices go to stderr,
    so piped answer output stays clean.
    """
    trace_path = getattr(args, "trace", None) or trace_path_from_env()
    profile_path = getattr(args, "profile", None) or profile_path_from_env()
    tracer = Tracer() if trace_path else None
    profiler = SamplingProfiler() if profile_path else None
    with contextlib.ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(tracing(tracer))
        if profiler is not None:
            stack.enter_context(profiling(profiler))
        yield
    if tracer is not None:
        events = write_chrome_trace(tracer, trace_path)
        print(
            f"trace: {events} events -> {trace_path}"
            + (f" ({tracer.dropped} spans dropped)" if tracer.dropped else ""),
            file=sys.stderr,
        )
    if profiler is not None:
        if profile_path.endswith((".txt", ".folded", ".collapsed")):
            total = write_collapsed(profiler.profile, profile_path)
        else:
            total = write_speedscope(profiler.profile, profile_path)
        print(
            f"profile: {total} samples -> {profile_path}", file=sys.stderr
        )
    metrics_path = getattr(args, "metrics", None)
    if metrics_path:
        write_metrics_snapshot(metrics_path)
        print(f"metrics: snapshot -> {metrics_path}", file=sys.stderr)


def _cmd_width(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    print(f"query: {query}")
    print(f"atoms: {len(query.atoms)}  variables: {len(query.variables)}")
    acyclic = is_acyclic(query)
    print(f"acyclic: {acyclic}")
    if args.upper_bound:
        ub = greedy_upper_bound(query)
        print(f"hw lower bound: {lower_bound(query)}")
        print(f"hw upper bound (heuristic, {ub.method}): {ub.width}")
    else:
        width, _ = hypertree_width(query)
        print(f"hypertree-width: {width}")
    if args.qw:
        if len(query.atoms) > args.qw_limit:
            print(
                f"query-width: skipped (> {args.qw_limit} atoms; "
                "NP-hard search — pass --qw-limit to force)"
            )
        else:
            qw, _ = query_width(query)
            print(f"query-width: {qw}")
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    deadline = (
        time.monotonic() + args.budget if args.budget is not None else None
    )
    try:
        if args.strategy == "exact" and args.k is not None:
            hd = decompose_k(query, args.k, deadline=deadline)
            if hd is None:
                print(f"no hypertree decomposition of width <= {args.k}")
                return 1
            width, provenance = hd.width, "exact"
        elif args.strategy == "exact":
            width, hd = hypertree_width(query, deadline=deadline)
            provenance = "exact"
        else:
            result = portfolio_decompose(
                query, mode=args.strategy, budget=args.budget, seed=args.seed
            )
            width, hd = result.width, result.decomposition
            provenance = result.method + (
                " — optimal"
                if result.optimal
                else f" — bounds [{result.lower}, {result.width}]"
            )
            if args.k is not None and width > args.k:
                # Only an optimal portfolio result proves nonexistence;
                # otherwise the bound may simply not have been found yet.
                if result.optimal:
                    print(
                        f"no decomposition of width <= {args.k} exists "
                        f"(optimal width: {width})"
                    )
                else:
                    print(
                        f"no decomposition of width <= {args.k} found "
                        f"(best {args.strategy} width so far: {width}; "
                        "existence not determined)"
                    )
                return 1
    except BudgetExceeded as error:
        print(f"budget exhausted ({args.budget}s): {error}")
        return 1
    print(f"width: {width}  [{provenance}]")
    print(hd.render_atoms() if args.atoms else hd.render())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    db = _load_facts(args.facts)
    stats = EvalStats()
    if query.is_boolean:
        answer = evaluate_boolean(query, db, method=args.method, stats=stats)
        print(f"answer: {answer}")
    else:
        relation = evaluate(query, db, method=args.method, stats=stats)
        print(f"answers ({len(relation)} rows over {relation.attributes}):")
        for row in sorted(relation.rows, key=repr):
            print("  " + ", ".join(map(str, row)))
    if args.stats:
        print(f"stats: {stats.as_row()}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    db = _load_facts(args.facts)
    queries = [
        _load_query(text, name=f"Q{i}") for i, text in enumerate(args.queries)
    ]
    engine = Engine(
        mode=args.strategy,
        budget=args.budget,
        workers=args.workers,
        backend=args.backend,
        layout=args.layout,
        slow_query_ms=args.slow_query_ms,
        flight_dump=args.flight_dump,
    )
    semiring = getattr(args, "semiring", None)
    batch = None
    with engine, _observed(args):
        for _ in range(max(1, args.repeat)):
            batch = engine.execute_many(queries, db=db, semiring=semiring)
    for result in batch:
        if not result.ok:
            print(f"{result.query.name}: ERROR {result.error}")
            continue
        tag = "cached plan" if result.cache_hit else result.method
        if semiring is not None:
            total = result.answer.total()
            if result.query.is_boolean:
                print(
                    f"{result.query.name}: {semiring} total {total}  [{tag}]"
                )
            else:
                print(
                    f"{result.query.name}: {len(result.answer)} answers "
                    f"over {result.answer.attributes}, {semiring} total "
                    f"{total}  [{tag}]"
                )
        elif result.query.is_boolean:
            print(f"{result.query.name}: {result.boolean}  [{tag}]")
        else:
            print(
                f"{result.query.name}: {len(result.answer)} answers over "
                f"{result.answer.attributes}  [{tag}]"
            )
    print(
        f"batch: {len(batch)} queries in {batch.elapsed:.4f}s "
        f"({batch.throughput:.1f} q/s), "
        f"{batch.cache_hits} cache hits / {batch.cache_misses} misses"
    )
    if args.stats:
        print(f"stats: {batch.stats.as_row()}")
        print(f"cache: {engine.cache.info()}")
    return 1 if batch.failures else 0


def _cmd_explain(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    db = _load_facts(args.facts) if args.facts else None
    engine = Engine(
        mode=args.strategy, backend=args.backend, layout=args.layout
    )
    if args.analyze and db is None:
        print(
            "error: --analyze executes the query and needs a FACTS file",
            file=sys.stderr,
        )
        return 2
    with engine, _observed(args):
        print(engine.explain(query, db, analyze=args.analyze))
    return 0


def _parse_delta_line(line: str):
    """``+atom.`` / ``-atom.`` / ``atom.`` -> (predicate, row, sign)."""
    from .core.atoms import Constant

    sign = 1
    if line[0] in "+-":
        sign = 1 if line[0] == "+" else -1
        line = line[1:].lstrip()
    atom = parse_atom(line.rstrip("."))
    row = []
    for term in atom.terms:
        if not isinstance(term, Constant):
            raise ReproError(f"update atom {atom} is not ground")
        row.append(term.value)
    return atom.predicate, tuple(row), sign


def _cmd_watch(args: argparse.Namespace) -> int:
    from .incremental import Delta, LiveEngine

    query = _load_query(args.query)
    db = _load_facts(args.facts) if args.facts else Database()
    engine = Engine(
        mode=args.strategy,
        backend=args.backend,
        slow_query_ms=args.slow_query_ms,
        flight_dump=args.flight_dump,
    )
    live = LiveEngine(db=db, engine=engine, parallelism=args.parallelism)
    with engine, live, _observed(args):
        handle = live.register(query)
        print(
            f"registered {query.name}: width {handle.width} "
            f"[{handle.method}], {len(handle.answers())} initial answers"
        )

        if args.deltas and args.deltas != "-":
            lines = pathlib.Path(args.deltas).read_text().splitlines()
        else:
            lines = sys.stdin
        applied = 0
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith(("#", "%")):
                continue
            predicate, row, sign = _parse_delta_line(line)
            changes = live.apply(Delta({predicate: {row: sign}}))
            applied += 1
            answer_delta = changes.get(handle.view_id)
            if answer_delta:
                for inserted in sorted(answer_delta.inserted, key=repr):
                    print("+ (" + ", ".join(map(str, inserted)) + ")")
                for deleted in sorted(answer_delta.deleted, key=repr):
                    print("- (" + ", ".join(map(str, deleted)) + ")")
    print(
        f"final: {len(handle.answers())} answers after {applied} updates"
    )
    if args.stats:
        print(f"stats: {handle.stats.as_row()}")
        print(f"notes: {handle.stats.notes}")
    return 0


def _truncation_warning(snapshot: dict) -> None:
    """Surface the tracer's drop guard: a trace that silently lost spans
    would lie about what happened, so say so on stderr."""
    dropped = snapshot.get("counters", {}).get("tracer.spans_dropped", 0)
    if dropped:
        print(
            f"warning: {int(dropped)} span(s) dropped by the tracer's "
            "max_spans guard — traces are truncated (raise "
            "Tracer(max_spans=...))",
            file=sys.stderr,
        )


def _trace_summary_json(events: list, problems: list[str]) -> dict:
    """Machine-readable trace summary (``stats --json`` on a trace)."""
    spans = [e for e in events if e.get("ph") == "X"]
    by_name: dict[str, dict] = {}
    for event in spans:
        entry = by_name.setdefault(
            event.get("name", "?"), {"seconds": 0.0, "count": 0}
        )
        entry["seconds"] += event.get("dur", 0) / 1e6
        entry["count"] += 1
    return {
        "kind": "trace",
        "valid": not problems,
        "problems": problems,
        "events": len(events),
        "spans": len(spans),
        "tracks": len(
            {(e.get("pid"), e.get("tid")) for e in spans}
        ),
        "by_name": {
            name: {"seconds": round(v["seconds"], 6), "count": v["count"]}
            for name, v in by_name.items()
        },
    }


def _cmd_stats(args: argparse.Namespace) -> int:
    """Render observability artifacts (or the live process registry).

    With FILE: auto-detects a Chrome trace-event array (validated
    against the schema the Perfetto loader needs, then summarised per
    span name), a flight-recorder dump, or a metrics snapshot dict.
    Without FILE: the in-process global metrics registry — or, with
    ``--flight``, the live flight recorder's ring.  ``--json`` switches
    every mode to machine-readable output (what the CI gates assert
    on).
    """
    as_json = getattr(args, "json", False)

    def emit(doc, rendered: str) -> None:
        print(json.dumps(doc, indent=1, sort_keys=True) if as_json else rendered)

    if args.flight and not args.file:
        snapshot = get_flight_recorder().snapshot()
        emit(snapshot, render_flight(snapshot))
        return 0
    if args.file:
        try:
            data = json.loads(pathlib.Path(args.file).read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read {args.file}: {error}", file=sys.stderr)
            return 2
        if isinstance(data, list):
            problems = validate_chrome_trace(data)
            if as_json:
                print(json.dumps(_trace_summary_json(data, problems), indent=1))
                return 1 if problems else 0
            if problems:
                print(f"invalid chrome trace ({len(problems)} problem(s)):")
                for problem in problems[:20]:
                    print(f"  {problem}")
                return 1
            print(f"valid chrome trace: {args.file}")
            print(render_trace_summary(data))
            return 0
        if isinstance(data, dict):
            if data.get("flight") == 1 or args.flight:
                emit(data, render_flight(data))
                return 0
            emit(_with_tenant_groups(data), render_metrics(data))
            _truncation_warning(data)
            return 0
        print(
            f"error: {args.file} is neither a trace-event array, a "
            "flight dump, nor a metrics snapshot",
            file=sys.stderr,
        )
        return 2
    snapshot = metrics_snapshot()
    emit(_with_tenant_groups(snapshot), render_metrics(snapshot))
    _truncation_warning(snapshot)
    return 0


def _with_tenant_groups(snapshot: dict) -> dict:
    """Fold label-in-name instruments into structured groups for the
    ``--json`` view: ``tenant.<id>.<metric>`` into ``tenants`` and
    ``semiring.<tag>.<metric>`` into ``semirings``, so dashboards read
    ``doc["tenants"]["acme"]["requests"]`` or
    ``doc["semirings"]["count"]["engine.requests"]`` instead of parsing
    dotted metric names."""
    from .obs.metrics import group_scoped

    out = snapshot
    tenants = group_scoped(snapshot, scope="tenant")
    if tenants:
        out = {**out, "tenants": tenants}
    semirings = group_scoped(snapshot, scope="semiring")
    if semirings:
        out = {**out, "semirings": semirings}
    return out


def _suite_name(path: str, doc: dict) -> str:
    """The suite tag for a benchmark emission: its own ``suite`` field,
    else the filename with the BENCH_ prefix/extension stripped."""
    if doc.get("suite"):
        return str(doc["suite"])
    stem = pathlib.Path(path).stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def _cmd_bench_record(args: argparse.Namespace) -> int:
    """Merge benchmark emissions into one unified run document."""
    suite_docs = []
    total = 0
    for path in args.inputs:
        try:
            doc = json.loads(pathlib.Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2
        records = doc.get("records")
        if not isinstance(records, list):
            print(
                f"error: {path} carries no 'records' list (pre-observatory "
                "benchmark emission? re-run the suite)",
                file=sys.stderr,
            )
            return 2
        suite_docs.append((_suite_name(path, doc), doc))
        total += len(records)
    run = merge_runs(suite_docs, meta={"sources": list(args.inputs)})
    pathlib.Path(args.out).write_text(json.dumps(run, indent=1, sort_keys=True))
    print(
        f"recorded {total} metric(s) from {len(suite_docs)} suite(s) "
        f"-> {args.out}"
    )
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    """Compare a run against a baseline; exit 1 on regression."""
    try:
        baseline = load_run(args.baseline)
        current = load_run(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    kwargs = {"compare_all": args.all_metrics}
    if args.tolerance is not None:
        kwargs["default_tolerance"] = args.tolerance
    report = diff_runs(baseline, current, **kwargs)
    if args.json:
        print(json.dumps(report.to_json(), indent=1))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant query server until interrupted."""
    import asyncio

    from .serve import QueryServer

    seed_db = _load_facts(args.facts) if args.facts else None
    server = QueryServer(
        host=args.host,
        port=args.port,
        seed_db=seed_db,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        max_estimated_rows=args.max_estimated_rows,
        request_budget=args.budget,
        tenant_budget=args.tenant_budget,
        rate=args.rate,
        burst=args.burst,
        mode=args.strategy,
        backend=args.backend,
        slow_query_ms=args.slow_query_ms,
        flight_dump=args.flight_dump,
    )

    async def _serve() -> None:
        await server.start()
        print(
            f"serving on {server.host}:{server.port} "
            f"(inflight {args.max_inflight}, queue {args.max_queue})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted; server stopped", file=sys.stderr)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Generate load against a running server; print (and gate on) the
    latency/shed report."""
    from .serve import ServeClient, run_closed_loop, run_open_loop

    queries = [_load_query(q, name=f"Q{i}") for i, q in enumerate(args.queries)]
    texts = [str(q) for q in queries]
    if args.facts:
        seed = _load_facts(args.facts)
        with ServeClient(args.host, args.port, tenant=args.tenant) as client:
            for predicate in seed.predicates():
                client.load(predicate, [list(r) for r in seed.rows(predicate)])
    if args.mode == "closed":
        report = run_closed_loop(
            args.host, args.port, args.tenant, texts,
            workers=args.workers,
            requests_per_worker=args.requests,
            budget_ms=args.budget_ms,
            queue_timeout_ms=args.queue_timeout_ms,
        )
    else:
        report = run_open_loop(
            args.host, args.port, args.tenant, texts,
            rate=args.rate,
            duration=args.duration,
            concurrency=args.workers,
            budget_ms=args.budget_ms,
            queue_timeout_ms=args.queue_timeout_ms,
        )
    summary = report.summary()
    if args.json:
        print(json.dumps(summary, indent=1, sort_keys=True))
    else:
        print(
            f"{summary['mode']} loop: {summary['ok']}/{summary['offered']} "
            f"ok in {summary['duration_seconds']}s "
            f"({summary['throughput_qps']} q/s)"
        )
        print(
            f"latency: p50 {summary['p50_ms']}ms  p95 {summary['p95_ms']}ms "
            f"p99 {summary['p99_ms']}ms"
        )
        print(
            f"outcomes: shed {summary['shed']}, rate-limited "
            f"{summary['rate_limited']}, budget {summary['budget_exceeded']}, "
            f"errors {summary['errors']}, cache hits {summary['cache_hits']}"
        )
    if args.out:
        pathlib.Path(args.out).write_text(
            json.dumps(report.histogram(), indent=1, sort_keys=True)
        )
        print(f"histogram -> {args.out}", file=sys.stderr)
    failed = False
    if args.assert_p99_ms is not None:
        p99 = summary["p99_ms"]
        if not p99 <= args.assert_p99_ms:
            print(
                f"FAIL: p99 {p99}ms > {args.assert_p99_ms}ms",
                file=sys.stderr,
            )
            failed = True
    if args.assert_no_shed and report.shed:
        print(f"FAIL: {report.shed} request(s) shed", file=sys.stderr)
        failed = True
    if args.assert_no_errors and report.errors:
        print(f"FAIL: {report.errors} request error(s)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def _cmd_contains(args: argparse.Namespace) -> int:
    q2 = _load_query(args.q2, name="Q2")
    q1 = _load_query(args.q1, name="Q1")
    result = contains(q2, q1, method=args.method)
    print(f"Q1 ⊑ Q2: {result}")
    return 0 if result else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.__main__ import main as experiments_main

    return experiments_main(args.ids or ["list"])


def _add_flight_options(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        dest="slow_query_ms",
        metavar="MS",
        help="flight-recorder slow-query threshold: requests at/above "
        "this latency get a slow_query ring event with the plan digest "
        "and an EXPLAIN ANALYZE built from already-recorded spans",
    )
    p.add_argument(
        "--flight-dump",
        default=None,
        dest="flight_dump",
        metavar="PATH",
        help="where flight-recorder failure dumps land: a JSON file "
        "(last dump wins) or a directory (one file per dump); default "
        "$REPRO_FLIGHT_DUMP",
    )


def _add_observability_options(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record spans across decompose/plan/backend/workers and "
        "write a Chrome trace-event file (chrome://tracing / Perfetto) "
        "to PATH; $REPRO_TRACE=PATH is the env equivalent",
    )
    p.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write the process metrics registry (counters, gauges, "
        "latency histograms) as a JSON snapshot to PATH",
    )
    p.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="run a wall-clock sampling profiler (spans-tagged folded "
        "stacks, covering process-backend workers too) and write a "
        "speedscope JSON profile to PATH (.txt/.folded/.collapsed for "
        "collapsed flamegraph text); $REPRO_PROFILE=PATH is the env "
        "equivalent",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hypertree decompositions and tractable queries "
        "(Gottlob, Leone, Scarcello — PODS'99/JCSS 2002).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("width", help="acyclicity / hw / qw of a query")
    p.add_argument("query", help="rule text or a file containing it")
    p.add_argument("--qw", action="store_true", help="also compute query-width")
    p.add_argument("--qw-limit", type=int, default=10, dest="qw_limit")
    p.add_argument(
        "--upper-bound",
        action="store_true",
        dest="upper_bound",
        help="print the fast heuristic width bracket instead of running "
        "the exponential exact search",
    )
    p.set_defaults(fn=_cmd_width)

    p = sub.add_parser("decompose", help="compute a hypertree decomposition")
    p.add_argument("query")
    p.add_argument("-k", type=int, default=None, help="width bound (else optimal)")
    p.add_argument(
        "--atoms", action="store_true", help="Fig.-7 atom representation"
    )
    p.add_argument(
        "--strategy",
        default="exact",
        choices=["exact", "heuristic", "auto"],
        help="decomposition strategy (default: exact)",
    )
    p.add_argument(
        "--budget",
        type=float,
        default=None,
        help="wall-clock seconds for the exact search; on exhaustion "
        "'auto' falls back to the heuristic result, 'exact' exits 1",
    )
    p.add_argument(
        "--seed", type=int, default=0, help="ordering local-search seed"
    )
    p.set_defaults(fn=_cmd_decompose)

    p = sub.add_parser("evaluate", help="evaluate a query over a facts file")
    p.add_argument("query")
    p.add_argument("facts", help="file of ground atoms, one per line")
    p.add_argument(
        "--method",
        default="decomposition",
        choices=["decomposition", "yannakakis", "naive", "backtracking"],
    )
    p.add_argument("--stats", action="store_true")
    p.set_defaults(fn=_cmd_evaluate)

    p = sub.add_parser(
        "run", help="evaluate queries through the plan-caching engine"
    )
    p.add_argument("facts", help="file of ground atoms, one per line")
    p.add_argument(
        "queries", nargs="+", help="rule texts or files containing them"
    )
    p.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run the batch N times (N>1 shows warm-cache amortisation)",
    )
    p.add_argument(
        "--budget", type=float, default=None, help="per-query seconds"
    )
    p.add_argument("--workers", type=int, default=4)
    p.add_argument(
        "--backend",
        default=None,
        choices=["sequential", "thread", "process"],
        help="execution backend for intra-query shard tasks: 'thread' "
        "(low-latency, GIL-bound) or 'process' (worker processes, real "
        "multicore scaling for large relations); default: $REPRO_BACKEND "
        "or sequential.  Shard counts are chosen per relation from "
        "cardinality estimates (sub-1k-row relations stay unsharded)",
    )
    p.add_argument(
        "--layout",
        default=None,
        choices=["row", "columnar", "auto"],
        help="bag storage layout: 'columnar' (contiguous buffers + "
        "vectorised kernels + shared-memory scatter), 'row' "
        "(frozenset-of-tuples), or 'auto' (columnar for nodes estimated "
        "at 1k+ rows); default: $REPRO_LAYOUT or auto",
    )
    p.add_argument(
        "--semiring",
        default=None,
        choices=["count", "mincost", "provenance", "prob"],
        help="annotated evaluation: 'count' (derivation counts), "
        "'mincost' (cheapest witness per answer, fact weights as costs), "
        "'provenance' (why-provenance witness sets), 'prob' (answer "
        "probabilities over a tuple-independent database)",
    )
    p.add_argument(
        "--strategy", default="auto", choices=["exact", "heuristic", "auto"]
    )
    p.add_argument("--stats", action="store_true")
    _add_observability_options(p)
    _add_flight_options(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("explain", help="render the engine's physical plan")
    p.add_argument("query")
    p.add_argument(
        "facts",
        nargs="?",
        default=None,
        help="optional facts file for cardinality estimates",
    )
    p.add_argument(
        "--strategy", default="auto", choices=["exact", "heuristic", "auto"]
    )
    p.add_argument(
        "--analyze",
        action="store_true",
        help="execute the query once under a tracer and annotate the "
        "plan with actual per-node row counts and wall times (needs "
        "FACTS)",
    )
    p.add_argument(
        "--backend",
        default=None,
        choices=["sequential", "thread", "process"],
        help="execution backend for the plan (and the --analyze run); "
        "default: $REPRO_BACKEND or sequential",
    )
    p.add_argument(
        "--layout",
        default=None,
        choices=["row", "columnar", "auto"],
        help="bag storage layout for the plan; default: $REPRO_LAYOUT "
        "or auto",
    )
    _add_observability_options(p)
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser(
        "watch", help="maintain a live view under an update stream"
    )
    p.add_argument("query", help="rule text or a file containing it")
    p.add_argument(
        "facts",
        nargs="?",
        default=None,
        help="optional initial facts file (default: start empty)",
    )
    p.add_argument(
        "--deltas",
        default="-",
        help="file of signed ground atoms, one per line "
        "('+e(1,2).' inserts, '-e(1,2).' deletes); '-' reads stdin",
    )
    p.add_argument(
        "--strategy", default="auto", choices=["exact", "heuristic", "auto"]
    )
    p.add_argument(
        "--backend",
        default=None,
        choices=["sequential", "thread", "process"],
        help="execution backend configured on the planning engine "
        "(view maintenance itself is in-process delta propagation; "
        "default: $REPRO_BACKEND or sequential)",
    )
    p.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="fan updates out to touched views over this many workers",
    )
    p.add_argument("--stats", action="store_true")
    _add_observability_options(p)
    _add_flight_options(p)
    p.set_defaults(fn=_cmd_watch)

    p = sub.add_parser(
        "stats",
        help="validate/summarise a trace, metrics, or flight-dump file, "
        "or render the live metrics registry",
    )
    p.add_argument(
        "file",
        nargs="?",
        default=None,
        help="a --trace output (trace-event array), --metrics output "
        "(snapshot dict), or flight-recorder dump; omitted = the "
        "current process's registry (or ring, with --flight)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON output (CI gates assert on fields "
        "instead of grepping rendered text)",
    )
    p.add_argument(
        "--flight",
        action="store_true",
        help="inspect the flight recorder: render FILE as a flight dump "
        "(auto-detected anyway), or without FILE the live process ring",
    )
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "bench",
        help="the perf-regression observatory: record unified benchmark "
        "runs and diff them against a baseline",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    pb = bench_sub.add_parser(
        "record",
        help="merge bench_*.py JSON emissions into one run document "
        "(schema + env fingerprint + suite-tagged records)",
    )
    pb.add_argument(
        "inputs", nargs="+", help="benchmark emissions (BENCH_*.json)"
    )
    pb.add_argument(
        "--out", required=True, metavar="PATH", help="run document output"
    )
    pb.set_defaults(fn=_cmd_bench_record)
    pb = bench_sub.add_parser(
        "diff",
        help="compare a recorded run against a baseline run; exits 1 "
        "when any metric regressed beyond its noise tolerance",
    )
    pb.add_argument("baseline", help="baseline run document")
    pb.add_argument("current", help="current run document")
    pb.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="default relative tolerance for records without their own "
        "(default 0.25)",
    )
    pb.add_argument(
        "--all-metrics",
        action="store_true",
        dest="all_metrics",
        help="compare wall-clock metrics even across differing "
        "environment fingerprints",
    )
    pb.add_argument(
        "--json", action="store_true", help="machine-readable diff output"
    )
    pb.set_defaults(fn=_cmd_bench_diff)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant query server (newline-delimited JSON "
        "over TCP: per-tenant databases/budgets/rate limits over one "
        "shared plan cache, admission control, push subscriptions)",
    )
    p.add_argument(
        "facts",
        nargs="?",
        default=None,
        help="optional facts file preloaded into every new tenant",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=7407,
        help="TCP port (0 picks an ephemeral one; default 7407)",
    )
    p.add_argument(
        "--max-inflight", type=int, default=8, dest="max_inflight",
        help="concurrent executing requests (the worker-pool width)",
    )
    p.add_argument(
        "--max-queue", type=int, default=64, dest="max_queue",
        help="requests allowed to wait for a slot; past this, shed",
    )
    p.add_argument(
        "--max-estimated-rows", type=float, default=None,
        dest="max_estimated_rows",
        help="admission cost gate: reject queries whose estimated input "
        "volume exceeds this many rows",
    )
    p.add_argument(
        "--budget", type=float, default=None,
        help="default per-request execution budget in seconds",
    )
    p.add_argument(
        "--tenant-budget", type=float, default=None, dest="tenant_budget",
        help="cumulative execution-seconds quota per tenant",
    )
    p.add_argument(
        "--rate", type=float, default=None,
        help="per-tenant token-bucket rate (requests/second)",
    )
    p.add_argument(
        "--burst", type=float, default=None,
        help="token-bucket burst depth (default: max(1, rate))",
    )
    p.add_argument(
        "--strategy", default="auto", choices=["exact", "heuristic", "auto"]
    )
    p.add_argument(
        "--backend",
        default=None,
        choices=["sequential", "thread", "process"],
        help="execution backend for intra-query shard tasks",
    )
    _add_flight_options(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="generate open/closed-loop load against a running server "
        "and report p50/p95/p99 latency, throughput, and typed outcome "
        "counts (shed / rate-limited / budget)",
    )
    p.add_argument(
        "queries", nargs="+", help="rule texts or files containing them"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7407)
    p.add_argument("--tenant", default="loadgen")
    p.add_argument(
        "--facts", default=None,
        help="facts file loaded into the tenant before the run",
    )
    p.add_argument(
        "--mode", default="closed", choices=["closed", "open"],
        help="closed: each worker fires on completion; open: fixed-rate "
        "arrivals, latency measured from scheduled arrival time",
    )
    p.add_argument(
        "--workers", type=int, default=4,
        help="closed-loop workers / open-loop connection pool size",
    )
    p.add_argument(
        "--requests", type=int, default=25,
        help="closed loop: requests per worker",
    )
    p.add_argument(
        "--rate", type=float, default=50.0,
        help="open loop: arrivals per second",
    )
    p.add_argument(
        "--duration", type=float, default=2.0,
        help="open loop: seconds of arrivals",
    )
    p.add_argument(
        "--budget-ms", type=float, default=None, dest="budget_ms",
        help="per-request execution budget forwarded to the server",
    )
    p.add_argument(
        "--queue-timeout-ms", type=float, default=None,
        dest="queue_timeout_ms",
        help="shed requests that wait longer than this for a slot",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the latency histogram as JSON to PATH",
    )
    p.add_argument("--json", action="store_true", help="JSON summary")
    p.add_argument(
        "--assert-p99-ms", type=float, default=None, dest="assert_p99_ms",
        help="exit 1 unless p99 latency is at or under this (CI gate)",
    )
    p.add_argument(
        "--assert-no-shed", action="store_true", dest="assert_no_shed",
        help="exit 1 if any request was shed (CI gate for low load)",
    )
    p.add_argument(
        "--assert-no-errors", action="store_true", dest="assert_no_errors",
        help="exit 1 on any non-typed request error",
    )
    p.set_defaults(fn=_cmd_loadgen)

    p = sub.add_parser("contains", help="decide Q1 ⊑ Q2")
    p.add_argument("q2", help="the containing query Q2")
    p.add_argument("q1", help="the contained query Q1")
    p.add_argument(
        "--method",
        default="decomposition",
        choices=["decomposition", "naive", "backtracking"],
    )
    p.set_defaults(fn=_cmd_contains)

    p = sub.add_parser("experiments", help="run reproduction experiments")
    p.add_argument("ids", nargs="*", help="experiment ids, or 'all'")
    p.set_defaults(fn=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream closed the pipe (| head, a pager quit): exit
        # quietly like cat does.  Redirect stdout to devnull first so
        # the interpreter's shutdown flush doesn't raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (UnknownRelationError, UnknownAttributeError) as error:
        # A typo'd relation/attribute name is a user-input problem, not a
        # malformed invocation: readable one-liner, exit 1, no traceback.
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
