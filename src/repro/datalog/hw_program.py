"""The Appendix-B Datalog program deciding ``hw(Q) ≤ k``.

Appendix B reduces bounded-hypertree-width recognition to the evaluation
of a two-rule weakly stratified Datalog program over precomputed base
relations:

* ``k_vertex(S)`` — one constant per non-empty set of at most k atoms;
* ``component(C, S)`` — C is a [var(S)]-component, plus ``(varQ, root)``;
* ``meets_condition(S, R, CR)`` — the Step-2 checks of k-decomp: S and R
  are k-vertices, CR an [R]-component, ``var(S) ∩ CR ≠ ∅`` and every
  ``P ∈ atoms(CR)`` has ``var(P) ∩ var(R) ⊆ var(S)``; plus
  ``(S, root, varQ)`` for every k-vertex S;
* ``subset(CS, CR)`` — proper inclusion between component variable sets
  (every component is a subset of ``varQ``).

The program::

    k_decomposable(R, CR) :- k_vertex(S), meets_condition(S, R, CR),
                             not undecomposable(S, CR).
    undecomposable(S, CR) :- component(CS, S), subset(CS, CR),
                             not k_decomposable(S, CS).

is weakly stratified (the negation descends along the strict-subset order
on components), so its well-founded model is total; ``hw(Q) ≤ k`` iff
``k_decomposable(root, varQ)`` is true in it (Appendix B).  Experiment E10
cross-validates this recogniser against :mod:`repro.core.detkdecomp` on a
query corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..core.atoms import Atom, Variable, atom as make_atom, variables_of
from ..core.components import vertex_components
from ..core.query import ConjunctiveQuery
from .engine import Facts, holds, well_founded_model
from .program import Program, neg, rule

ROOT = "root"
VARQ = "varQ"


@dataclass
class HWProgramInstance:
    """Base relations plus identifier tables for one (query, k) pair."""

    query: ConjunctiveQuery
    k: int
    program: Program
    edb: Facts
    vertex_ids: dict[str, frozenset[Atom]]
    component_ids: dict[str, frozenset[Variable]]

    def decide(self) -> bool:
        """Evaluate the program; True iff ``k_decomposable(root, varQ)``."""
        true_facts, undefined = well_founded_model(self.program, self.edb)
        if undefined:
            raise AssertionError(
                "Appendix-B program produced undefined facts; it should be "
                "weakly stratified with a total well-founded model"
            )
        return holds(true_facts, "k_decomposable", ROOT, VARQ)


def build_hw_program(query: ConjunctiveQuery, k: int) -> HWProgramInstance:
    """Materialise the Appendix-B base relations and program for (Q, k)."""
    if k < 1:
        raise ValueError("width bound k must be at least 1")
    atoms = list(query.atoms)
    edge_sets = [a.variables for a in atoms]

    vertex_ids: dict[str, frozenset[Atom]] = {}
    vertex_vars: dict[str, frozenset[Variable]] = {}
    for size in range(1, min(k, len(atoms)) + 1):
        for subset in combinations(range(len(atoms)), size):
            vid = "v" + "_".join(map(str, subset))
            chosen = frozenset(atoms[i] for i in subset)
            vertex_ids[vid] = chosen
            vertex_vars[vid] = variables_of(chosen)

    component_ids: dict[str, frozenset[Variable]] = {}

    def component_id(component: frozenset[Variable]) -> str:
        key = "c" + "_".join(sorted(v.name for v in component))
        component_ids.setdefault(key, component)
        return key

    k_vertex_rows: set[tuple] = {(vid,) for vid in vertex_ids}
    component_rows: set[tuple] = {(VARQ, ROOT)}
    comps_of_vertex: dict[str, list[frozenset[Variable]]] = {}
    for vid, vvars in vertex_vars.items():
        comps = vertex_components(edge_sets, vvars)
        comps_of_vertex[vid] = comps
        for c in comps:
            component_rows.add((component_id(c), vid))

    def atoms_of(component: frozenset[Variable]) -> list[Atom]:
        return [a for a in atoms if a.variables & component]

    meets_rows: set[tuple] = set()
    for svid, svars in vertex_vars.items():
        # Root context: any k-vertex may start the decomposition.
        meets_rows.add((svid, ROOT, VARQ))
        for rvid, rvars in vertex_vars.items():
            for c in comps_of_vertex[rvid]:
                if not svars & c:
                    continue
                if all(
                    (p.variables & rvars) <= svars for p in atoms_of(c)
                ):
                    meets_rows.add((svid, rvid, component_id(c)))

    subset_rows: set[tuple] = set()
    all_components = dict(component_ids)
    for cid, cvars in all_components.items():
        subset_rows.add((cid, VARQ))  # varQ "includes any subset of var(Q)"
        for did, dvars in all_components.items():
            if cid != did and cvars < dvars:
                subset_rows.add((cid, did))

    edb: Facts = {
        "k_vertex": k_vertex_rows,
        "component": component_rows,
        "meets_condition": meets_rows,
        "subset": subset_rows,
    }

    program = Program.of(
        [
            rule(
                make_atom("k_decomposable", "R", "CR"),
                make_atom("k_vertex", "S"),
                make_atom("meets_condition", "S", "R", "CR"),
                neg(make_atom("undecomposable", "S", "CR")),
            ),
            rule(
                make_atom("undecomposable", "S", "CR"),
                make_atom("component", "CS", "S"),
                make_atom("subset", "CS", "CR"),
                neg(make_atom("k_decomposable", "S", "CS")),
            ),
        ]
    )
    component_ids[VARQ] = query.variables
    return HWProgramInstance(
        query, k, program, edb, vertex_ids, component_ids
    )


def datalog_has_hw_at_most(query: ConjunctiveQuery, k: int) -> bool:
    """Appendix-B recogniser: ``hw(Q) ≤ k`` via the well-founded model."""
    if not query.atoms:
        return False
    if not query.variables:
        return True  # a single variable-free node decomposes trivially
    return build_hw_program(query, k).decide()
