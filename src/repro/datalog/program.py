"""Datalog programs with negation (substrate for Appendix B).

Appendix B reduces "hw(Q) ≤ k" to the evaluation of a *weakly stratified*
Datalog program — a program whose negation is not stratified by predicates
but whose atom-level dependencies are well-founded.  This module provides
the program representation plus predicate-level dependency analysis; the
evaluation semantics (semi-naive least model, stratified negation, and the
well-founded semantics via the alternating fixpoint of Van Gelder, Ross &
Schlipf [42]) live in :mod:`repro.datalog.engine`.

Terms reuse :class:`repro.core.atoms.Variable` / ``Constant`` / ``Atom``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable

from .._errors import DatalogError
from ..core.atoms import Atom, Variable


@dataclass(frozen=True)
class Literal:
    """A body literal: an atom, possibly negated."""

    atom: Atom
    positive: bool = True

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"


@dataclass(frozen=True)
class Rule:
    """A rule ``head :- body``.  Facts are rules with empty bodies.

    Safety: every head variable and every variable of a negative literal
    must occur in a positive body literal.
    """

    head: Atom
    body: tuple[Literal, ...] = ()

    def __post_init__(self) -> None:
        positive_vars: set[Variable] = set()
        for lit in self.body:
            if lit.positive:
                positive_vars.update(lit.atom.variables)
        unsafe = set(self.head.variables) - positive_vars
        for lit in self.body:
            if not lit.positive:
                unsafe |= lit.atom.variables - positive_vars
        if unsafe:
            names = ", ".join(sorted(v.name for v in unsafe))
            raise DatalogError(
                f"unsafe rule {self}: variables {{{names}}} do not occur "
                "positively"
            )

    @property
    def positive_body(self) -> tuple[Literal, ...]:
        return tuple(l for l in self.body if l.positive)

    @property
    def negative_body(self) -> tuple[Literal, ...]:
        return tuple(l for l in self.body if not l.positive)

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- " + ", ".join(str(l) for l in self.body) + "."


@dataclass(frozen=True)
class Program:
    """A finite set of rules."""

    rules: tuple[Rule, ...]

    @staticmethod
    def of(rules: Iterable[Rule]) -> "Program":
        return Program(tuple(rules))

    @cached_property
    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by some rule head."""
        return frozenset(r.head.predicate for r in self.rules)

    @cached_property
    def body_predicates(self) -> frozenset[str]:
        result: set[str] = set()
        for r in self.rules:
            for lit in r.body:
                result.add(lit.atom.predicate)
        return frozenset(result)

    @cached_property
    def dependency_edges(self) -> frozenset[tuple[str, str, bool]]:
        """(head_pred, body_pred, positive?) edges between IDB predicates."""
        edges: set[tuple[str, str, bool]] = set()
        for r in self.rules:
            for lit in r.body:
                if lit.atom.predicate in self.idb_predicates:
                    edges.add((r.head.predicate, lit.atom.predicate, lit.positive))
        return frozenset(edges)

    def stratification(self) -> list[frozenset[str]] | None:
        """Predicate strata (bottom first), or ``None`` if not stratified.

        A program is stratified iff no negative edge lies on a dependency
        cycle.  Computed by iterated longest-path-style level assignment:
        ``level(p) ≥ level(q)`` for positive edges p→q and
        ``level(p) ≥ level(q) + 1`` for negative ones; divergence beyond
        ``|preds|`` levels signals a negative cycle.
        """
        predicates = sorted(self.idb_predicates)
        level = {p: 0 for p in predicates}
        bound = len(predicates) + 1
        for _ in range(bound * bound + 1):
            changed = False
            for head, body, positive in self.dependency_edges:
                required = level[body] + (0 if positive else 1)
                if level[head] < required:
                    level[head] = required
                    if level[head] > bound:
                        return None
                    changed = True
            if not changed:
                break
        else:
            return None
        strata: dict[int, set[str]] = {}
        for p, l in level.items():
            strata.setdefault(l, set()).add(p)
        return [frozenset(strata[l]) for l in sorted(strata)]

    @property
    def is_stratified(self) -> bool:
        return self.stratification() is not None

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)


def rule(head: Atom, *body: Literal | Atom) -> Rule:
    """Convenience constructor: bare atoms in *body* are positive literals."""
    literals = tuple(
        l if isinstance(l, Literal) else Literal(l, True) for l in body
    )
    return Rule(head, literals)


def neg(atom: Atom) -> Literal:
    """A negated body literal."""
    return Literal(atom, False)
