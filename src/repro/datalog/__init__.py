"""Datalog engine (semi-naive, stratified, well-founded) + Appendix B."""

from .engine import (
    Facts,
    holds,
    least_model,
    stratified_model,
    well_founded_model,
)
from .hw_program import HWProgramInstance, build_hw_program, datalog_has_hw_at_most
from .program import Literal, Program, Rule, neg, rule

__all__ = [
    "Facts",
    "HWProgramInstance",
    "Literal",
    "Program",
    "Rule",
    "build_hw_program",
    "datalog_has_hw_at_most",
    "holds",
    "least_model",
    "neg",
    "rule",
    "stratified_model",
    "well_founded_model",
]
