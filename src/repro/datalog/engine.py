"""Datalog evaluation: semi-naive least models, stratified negation, and
the well-founded semantics (Appendix B substrate).

Three layers:

* :func:`least_model` — bottom-up semi-naive evaluation of the positive
  part; negative literals are tested against a *frozen* interpretation
  supplied by the caller (empty by default).  This is the operator
  ``Γ_P(J)`` of the alternating-fixpoint characterisation of the
  well-founded semantics.
* :func:`stratified_model` — evaluates stratum by stratum when the
  program is stratified.
* :func:`well_founded_model` — Van Gelder–Ross–Schlipf alternating
  fixpoint: ``U₀ = ∅``, ``V₀ = Γ(U₀)``, ``U_{i+1} = Γ(V_i)``,
  ``V_{i+1} = Γ(U_{i+1})``; ``U`` converges to the true facts from below
  and ``V`` from above; facts in ``V − U`` are undefined.  For weakly
  stratified programs — e.g. the Appendix-B hw(Q) ≤ k program, whose
  negation descends along the strict-subset order on components — the
  model is total (``U = V``), matching the paper's remark that the program
  has a total well-founded model computable in polynomial time.

Facts are stored as ``dict[str, set[tuple]]`` (predicate → ground tuples).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..core.atoms import Atom, Constant, Variable
from .program import Program, Rule

Facts = dict[str, set[tuple]]


def _copy_facts(facts: Mapping[str, Iterable[tuple]]) -> Facts:
    return {p: set(rows) for p, rows in facts.items()}


def _match_atom(
    atom: Atom, row: tuple, binding: dict[Variable, object]
) -> dict[Variable, object] | None:
    """Unify a ground *row* with *atom* under *binding*; return the
    extended binding or ``None``."""
    if len(row) != atom.arity:
        return None
    extended = dict(binding)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = extended.get(term, _UNBOUND)
            if bound is _UNBOUND:
                extended[term] = value
            elif bound != value:
                return None
    return extended


_UNBOUND = object()


def _ground(atom: Atom, binding: dict[Variable, object]) -> tuple:
    return tuple(
        t.value if isinstance(t, Constant) else binding[t] for t in atom.terms
    )


def _rule_derivations(
    rule: Rule,
    facts: Facts,
    frozen: Facts,
    delta: Facts | None,
    delta_index: int | None,
) -> set[tuple]:
    """All head tuples derivable by *rule* from *facts*.

    With semi-naive arguments, the positive literal at *delta_index* must
    match a tuple of *delta* (other literals use the full *facts*).
    Negative literals succeed iff the ground tuple is absent from *frozen*.
    """
    results: set[tuple] = set()
    positives = rule.positive_body

    def source(i: int) -> set[tuple]:
        predicate = positives[i].atom.predicate
        if delta is not None and i == delta_index:
            return delta.get(predicate, set())
        return facts.get(predicate, set())

    def extend(i: int, binding: dict[Variable, object]) -> None:
        if i == len(positives):
            for lit in rule.negative_body:
                if _ground(lit.atom, binding) in frozen.get(
                    lit.atom.predicate, set()
                ):
                    return
            results.add(_ground(rule.head, binding))
            return
        atom = positives[i].atom
        for row in source(i):
            extended = _match_atom(atom, row, binding)
            if extended is not None:
                extend(i + 1, extended)

    extend(0, {})
    return results


def least_model(
    program: Program,
    edb: Mapping[str, Iterable[tuple]],
    frozen: Mapping[str, Iterable[tuple]] | None = None,
) -> Facts:
    """Semi-naive least fixpoint of the positive part of *program* over
    *edb*, with negation evaluated against the fixed interpretation
    *frozen* (i.e. the operator ``Γ_P(frozen)``).

    Returns all facts (EDB ∪ derived IDB).
    """
    facts = _copy_facts(edb)
    frozen_facts = _copy_facts(frozen) if frozen is not None else {}

    # Initial round: full evaluation of every rule.
    delta: Facts = {}
    for rule in program.rules:
        new = _rule_derivations(rule, facts, frozen_facts, None, None)
        known = facts.setdefault(rule.head.predicate, set())
        fresh = new - known
        if fresh:
            known.update(fresh)
            delta.setdefault(rule.head.predicate, set()).update(fresh)

    # Semi-naive iterations: at least one positive literal matches delta.
    while delta:
        next_delta: Facts = {}
        for rule in program.rules:
            positives = rule.positive_body
            for i, lit in enumerate(positives):
                if lit.atom.predicate not in delta:
                    continue
                new = _rule_derivations(rule, facts, frozen_facts, delta, i)
                known = facts.setdefault(rule.head.predicate, set())
                fresh = new - known
                if fresh:
                    known.update(fresh)
                    next_delta.setdefault(
                        rule.head.predicate, set()
                    ).update(fresh)
        delta = next_delta
    return facts


def stratified_model(
    program: Program, edb: Mapping[str, Iterable[tuple]]
) -> Facts:
    """Evaluate a stratified program stratum by stratum (perfect model)."""
    strata = program.stratification()
    if strata is None:
        raise ValueError("program is not stratified; use well_founded_model")
    facts = _copy_facts(edb)
    for stratum in strata:
        layer = Program.of(
            r for r in program.rules if r.head.predicate in stratum
        )
        facts = least_model(layer, facts, frozen=facts)
    return facts


def well_founded_model(
    program: Program,
    edb: Mapping[str, Iterable[tuple]],
    max_rounds: int = 10_000,
) -> tuple[Facts, Facts]:
    """The well-founded model via the alternating fixpoint [42].

    Returns ``(true, undefined)`` where *true* holds the well-founded true
    facts and *undefined* the facts that are neither true nor false.  For
    (weakly) stratified programs *undefined* is empty.
    """

    def gamma(j: Facts) -> Facts:
        return least_model(program, edb, frozen=j)

    under: Facts = _copy_facts(edb)
    over: Facts = gamma(under)
    for _ in range(max_rounds):
        new_under = gamma(over)
        new_over = gamma(new_under)
        if new_under == under and new_over == over:
            break
        under, over = new_under, new_over
    else:  # pragma: no cover - defensive
        raise RuntimeError("alternating fixpoint did not converge")

    undefined: Facts = {}
    for predicate, rows in over.items():
        extra = rows - under.get(predicate, set())
        if extra:
            undefined[predicate] = extra
    return under, undefined


def holds(facts: Facts, predicate: str, *values) -> bool:
    """Membership test helper: ``predicate(values...) ∈ facts``."""
    return tuple(values) in facts.get(predicate, set())
