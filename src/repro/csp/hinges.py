"""Hinge decompositions and the degree of cyclicity (§6; [25, 26]).

Gyssens–Jeavons–Cohen decompose a hypergraph into a tree of *hinges*.  For
a connected hypergraph ``H`` with edges ``E``, a set ``F ⊆ E`` with
``|F| ≥ 2`` (or ``F = E``) is a **hinge** if, for every connected
component ``Γ`` of the edges outside ``F`` (connectivity through vertices
not covered by ``F``), the frontier ``var(Γ) ∩ var(F)`` is contained in a
single edge of ``F``.  A minimal hinge-tree's largest node is the *degree
of cyclicity*; acyclic hypergraphs have degree ≤ 2, an n-cycle has degree
n (no proper subset of a cycle is a hinge).

The construction here follows the splitting lemma: find a smallest proper
hinge ``F`` (exhaustive search by increasing size — the recognition
problem is polynomial, the minimisation exponential, which is fine at
paper scale and guarded by ``max_edges``); each outside component ``Γ``
hangs off ``F`` through its single frontier edge and is decomposed
recursively together with that edge.

Experiment E17 uses :func:`degree_of_cyclicity` as one of the §6 baseline
width measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Sequence

from ..core.components import _UnionFind
from ..core.query import ConjunctiveQuery

Edge = frozenset


def _variables(edges: Sequence[Edge]) -> frozenset:
    result: set[Hashable] = set()
    for e in edges:
        result |= e
    return frozenset(result)


def _outside_components(
    edges: Sequence[Edge], hinge: Sequence[Edge]
) -> list[list[Edge]]:
    """Components of ``E − F``: edges grouped by connectivity through
    vertices outside ``var(F)``."""
    hinge_vars = _variables(hinge)
    hinge_set = set(map(id, hinge))
    outside = [e for e in edges if id(e) not in hinge_set]
    uf = _UnionFind()
    owner: dict[Hashable, int] = {}
    for i, e in enumerate(outside):
        uf.find(i)
        for v in e - hinge_vars:
            if v in owner:
                uf.union(owner[v], i)
            else:
                owner[v] = i
    groups: dict[Hashable, list[Edge]] = {}
    for i, e in enumerate(outside):
        groups.setdefault(uf.find(i), []).append(e)
    return list(groups.values())


def is_hinge(edges: Sequence[Edge], candidate: Sequence[Edge]) -> bool:
    """Definition check: every outside component's frontier lies in a
    single edge of the candidate."""
    hinge_vars_edges = list(candidate)
    for component in _outside_components(edges, candidate):
        frontier = _variables(component) & _variables(candidate)
        if not any(frontier <= e for e in hinge_vars_edges):
            return False
    return True


@dataclass
class HingeTree:
    """A node of a hinge decomposition: a hinge plus child trees, each
    sharing exactly one edge with this node."""

    hinge: tuple[Edge, ...]
    children: list["HingeTree"]

    def max_node_size(self) -> int:
        size = len(self.hinge)
        for child in self.children:
            size = max(size, child.max_node_size())
        return size

    def node_count(self) -> int:
        return 1 + sum(c.node_count() for c in self.children)

    def all_edges(self) -> set[int]:
        result = {id(e) for e in self.hinge}
        for c in self.children:
            result |= c.all_edges()
        return result


def _smallest_proper_hinge(
    edges: list[Edge], anchor: Edge | None
) -> tuple[Edge, ...] | None:
    """The smallest hinge ``F`` with ``2 ≤ |F| < |E|`` (containing the
    *anchor* edge if given), found by exhaustive search in size order."""
    others = [e for e in edges if e is not anchor]
    for size in range(2, len(edges)):
        pick = size - (1 if anchor is not None else 0)
        if pick < 0 or pick > len(others):
            continue
        for chosen in combinations(others, pick):
            candidate = ((anchor,) if anchor is not None else ()) + chosen
            if is_hinge(edges, candidate):
                return tuple(candidate)
    return None


def hinge_tree(
    edges: Sequence[Edge], anchor: Edge | None = None, max_edges: int = 16
) -> HingeTree:
    """A minimal hinge decomposition of a *connected* edge set.

    Exhaustive hinge minimisation is exponential; *max_edges* guards the
    search (the §6/E17 families stay below it).
    """
    edges = list(edges)
    if len(edges) > max_edges:
        raise ValueError(
            f"hinge decomposition limited to {max_edges} edges "
            f"(got {len(edges)})"
        )
    if len(edges) <= 1:
        return HingeTree(tuple(edges), [])
    hinge = _smallest_proper_hinge(edges, anchor)
    if hinge is None:
        return HingeTree(tuple(edges), [])
    children: list[HingeTree] = []
    for component in _outside_components(edges, hinge):
        frontier = _variables(component) & _variables(hinge)
        connecting = next(e for e in hinge if frontier <= e)
        children.append(
            hinge_tree(list(component) + [connecting], connecting, max_edges)
        )
    return HingeTree(tuple(hinge), children)


def degree_of_cyclicity(query: ConjunctiveQuery, max_edges: int = 16) -> int:
    """The degree of cyclicity of a query's hypergraph [26, 25]:
    the largest hinge in a minimal hinge decomposition, maximised over
    connected components."""
    from ..core.components import vertex_components

    edge_sets = [a.variables for a in query.atoms]
    if not edge_sets:
        return 0
    best = 1
    for component in vertex_components(edge_sets, frozenset()):
        edges = [e for e in edge_sets if e & component]
        tree = hinge_tree(edges, max_edges=max_edges)
        best = max(best, tree.max_node_size())
    return best
