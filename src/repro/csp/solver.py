"""CSP solvers: backtracking baseline vs the paper's decomposition route.

* :func:`solve_backtracking` — chronological backtracking with MRV and
  forward checking; the classical exponential-time baseline.
* :func:`solve_via_decomposition` — the paper's pipeline: translate to a
  Boolean CQ (§6 equivalence), compute a hypertree decomposition, apply
  the Lemma 4.6 transformation, run the Yannakakis full reducer, then read
  a solution off the reduced join tree top-down (every reduced tuple
  extends to a solution, so no backtracking is needed).

For bounded-hypertree-width constraint classes the second route is
polynomial (Corollary 5.19 via the CSP equivalence) — experiment E17/E15
material.
"""

from __future__ import annotations

from ..core.detkdecomp import hypertree_width
from ..core.hypertree import HypertreeDecomposition
from ..db.evaluate import lemma46_transform
from ..db.stats import EvalStats
from ..db.yannakakis import full_reduce
from .problem import CSPInstance, Value


def solve_backtracking(
    csp: CSPInstance, stats: EvalStats | None = None
) -> dict[str, Value] | None:
    """One solution by MRV + forward-checking backtracking, or ``None``."""
    stats = stats if stats is not None else EvalStats()
    candidates: dict[str, set[Value]] = {
        v: set(csp.domain_of[v]) for v in csp.variables
    }

    def consistent(v: str, assignment: dict[str, Value]) -> bool:
        for c in csp.constraints_of_variable[v]:
            if all(u in assignment for u in c.scope):
                stats.total_tuples_produced += 1
                if not c.satisfied_by(assignment):
                    return False
        return True

    def prune(v: str, assignment: dict[str, Value]) -> list[tuple[str, Value]] | None:
        """Forward-check neighbours of v; return removals or None on wipeout."""
        removed: list[tuple[str, Value]] = []
        for c in csp.constraints_of_variable[v]:
            unbound = [u for u in c.scope if u not in assignment]
            if len(unbound) != 1:
                continue
            u = unbound[0]
            for value in list(candidates[u]):
                assignment[u] = value
                ok = c.satisfied_by(assignment)
                del assignment[u]
                if not ok:
                    candidates[u].discard(value)
                    removed.append((u, value))
            if not candidates[u]:
                for var, val in removed:
                    candidates[var].add(val)
                return None
        return removed

    def search(assignment: dict[str, Value]) -> dict[str, Value] | None:
        if len(assignment) == len(csp.variables):
            return dict(assignment)
        v = min(
            (u for u in csp.variables if u not in assignment),
            key=lambda u: (len(candidates[u]), u),
        )
        for value in sorted(candidates[v], key=repr):
            assignment[v] = value
            if consistent(v, assignment):
                removed = prune(v, assignment)
                if removed is not None:
                    result = search(assignment)
                    if result is not None:
                        return result
                    for var, val in removed:
                        candidates[var].add(val)
            del assignment[v]
        return None

    if any(not candidates[v] for v in csp.variables):
        return None
    return search({})


def solve_via_decomposition(
    csp: CSPInstance,
    hd: HypertreeDecomposition | None = None,
    stats: EvalStats | None = None,
) -> dict[str, Value] | None:
    """One solution via hypertree decomposition + Yannakakis full reducer.

    Unconstrained variables (outside every scope) are assigned their first
    domain value.  Returns ``None`` iff the CSP is unsatisfiable.
    """
    stats = stats if stats is not None else EvalStats()
    query = csp.to_query()
    if not query.atoms:
        return {
            v: csp.domain_of[v][0] if csp.domain_of[v] else None
            for v in csp.variables
        }
    db = csp.to_database()
    if hd is None:
        _, hd = hypertree_width(query)
    transformed = lemma46_transform(query, db, hd, stats)
    reduced = full_reduce(transformed.jt, transformed.relations, stats)
    if any(not reduced[node] for node in transformed.jt.nodes):
        return None

    # Top-down extraction: pick any root tuple, then a compatible tuple at
    # each child.  Full reduction guarantees a compatible tuple exists.
    assignment: dict[str, Value] = {}

    def descend(node) -> bool:
        rel = reduced[node]
        for row in sorted(rel.rows, key=repr):
            candidate = dict(zip(rel.attributes, row))
            if all(
                assignment.get(a, candidate[a]) == candidate[a]
                for a in rel.attributes
            ):
                assignment.update(candidate)
                break
        else:  # pragma: no cover - impossible after full reduction
            return False
        return all(descend(child) for child in transformed.jt.children(node))

    if not descend(transformed.jt.root):
        return None
    for v in csp.variables:
        if v not in assignment:
            domain = csp.domain_of[v]
            if not domain:
                return None
            assignment[v] = domain[0]
    if not csp.check(assignment):  # pragma: no cover - consistency guard
        raise AssertionError("decomposition solver produced a non-solution")
    return assignment


def count_solutions_backtracking(csp: CSPInstance, limit: int = 10**6) -> int:
    """Exhaustive solution count (tests/benchmarks on small instances)."""
    count = 0
    variables = list(csp.variables)

    def search(index: int, assignment: dict[str, Value]) -> None:
        nonlocal count
        if count >= limit:
            return
        if index == len(variables):
            count += 1
            return
        v = variables[index]
        for value in csp.domain_of[v]:
            assignment[v] = value
            if all(
                not all(u in assignment for u in c.scope)
                or c.satisfied_by(assignment)
                for c in csp.constraints_of_variable[v]
            ):
                search(index + 1, assignment)
            del assignment[v]

    search(0, {})
    return count
