"""Structural CSP decomposition baselines compared in §6 (and [21]).

Each method assigns a width to a query/CSP; a method is *applicable* to a
class of instances when its width stays bounded across the class.  The
paper's comparison (§6, detailed in [21]) shows bounded hypertree-width
strictly generalises all of them; experiment E17 reproduces the
applicability table on concrete families.

Implemented measures (on the query's primal graph unless noted):

* ``biconnected_width`` — size of the largest biconnected component
  (Freuder [15]);
* ``cycle_cutset_size`` — minimum feedback vertex set (Dechter [11]);
  exact by subset search under a size guard, else greedy upper bound;
* ``tree_clustering_width`` — largest clique of the min-fill
  triangulation (Dechter–Pearl [12]) = heuristic treewidth + 1;
* ``treewidth_width`` — treewidth + 1 (bag size; Robertson–Seymour [34],
  Arnborg [2]);
* ``hinge_width`` — degree of cyclicity (hypergraph-based; [25, 26]);
* ``query_width`` / ``hypertree_width`` — the paper's notions (§3, §4).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..core.detkdecomp import hypertree_width as _hypertree_width
from ..core.query import ConjunctiveQuery
from ..core.qwsearch import query_width as _query_width
from ..graphs.primal import Graph, connected_components, primal_graph, subgraph
from ..graphs.treewidth import treewidth, triangulated_clique_number
from .hinges import degree_of_cyclicity


# ----------------------------------------------------------------------
# Biconnected components (Tarjan–Hopcroft lowpoint algorithm).
# ----------------------------------------------------------------------
def biconnected_components(graph: Graph) -> list[set]:
    """Vertex sets of the biconnected components of *graph*."""
    index: dict = {}
    low: dict = {}
    counter = 0
    stack: list[tuple] = []
    result: list[set] = []

    def dfs(root) -> None:
        nonlocal counter
        work = [(root, None, iter(sorted(graph[root], key=repr)))]
        index[root] = low[root] = counter
        counter += 1
        while work:
            v, parent, it = work[-1]
            advanced = False
            for w in it:
                if w == parent:
                    continue
                if w not in index:
                    index[w] = low[w] = counter
                    counter += 1
                    stack.append((v, w))
                    work.append((w, v, iter(sorted(graph[w], key=repr))))
                    advanced = True
                    break
                if index[w] < index[v]:
                    stack.append((v, w))
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                u = work[-1][0]
                low[u] = min(low[u], low[v])
                if low[v] >= index[u]:
                    component: set = set()
                    while stack:
                        a, b = stack.pop()
                        component |= {a, b}
                        if (a, b) == (u, v):
                            break
                    if component:
                        result.append(component)

    for v in sorted(graph, key=repr):
        if v not in index:
            dfs(v)
            if not graph[v]:
                result.append({v})
    return result


def biconnected_width(query: ConjunctiveQuery) -> int:
    """Freuder [15]: the size of the largest biconnected component of the
    primal graph (1 for edgeless graphs)."""
    graph = primal_graph(query)
    comps = biconnected_components(graph)
    return max((len(c) for c in comps), default=1)


# ----------------------------------------------------------------------
# Cycle cutsets (feedback vertex sets).
# ----------------------------------------------------------------------
def _is_forest(graph: Graph) -> bool:
    edges = sum(len(nbrs) for nbrs in graph.values()) // 2
    return edges <= max(0, len(graph) - len(connected_components(graph)))


def cycle_cutset_size(query: ConjunctiveQuery, exact_limit: int = 18) -> int:
    """Dechter [11]: minimum vertices whose removal makes the primal graph
    a forest.  Exact subset search below *exact_limit* vertices; greedy
    (repeatedly drop the highest-degree vertex on a cycle) above."""
    graph = primal_graph(query)
    if _is_forest(graph):
        return 0
    vertices = sorted(graph, key=repr)
    if len(vertices) <= exact_limit:
        for size in range(1, len(vertices) + 1):
            for cutset in combinations(vertices, size):
                remaining = subgraph(
                    graph, [v for v in vertices if v not in cutset]
                )
                if _is_forest(remaining):
                    return size
    # Greedy fallback.
    work = {v: set(nbrs) for v, nbrs in graph.items()}
    removed = 0
    while not _is_forest(work):
        v = max(work, key=lambda u: (len(work[u]), repr(u)))
        for w in work[v]:
            work[w].discard(v)
        del work[v]
        removed += 1
    return removed


# ----------------------------------------------------------------------
# The remaining widths.
# ----------------------------------------------------------------------
def tree_clustering_width(query: ConjunctiveQuery) -> int:
    """Dechter–Pearl [12]: max clique of the join-tree clustering obtained
    by triangulation (= min-fill width + 1)."""
    return max(1, triangulated_clique_number(primal_graph(query)))


def treewidth_width(query: ConjunctiveQuery, exact_limit: int = 16) -> int:
    """Primal-graph treewidth + 1 (bag size), as used for CSPs [2]."""
    return treewidth(primal_graph(query), exact_limit) + 1


def hinge_width(query: ConjunctiveQuery, max_edges: int = 16) -> int:
    """Degree of cyclicity [25, 26]."""
    return degree_of_cyclicity(query, max_edges)


@dataclass(frozen=True)
class MethodWidths:
    """All §6 width measures of one query, for the E17 table."""

    query_name: str
    biconnected: int
    cycle_cutset: int
    tree_clustering: int
    treewidth: int
    hinge: int
    query_width: int
    hypertree_width: int

    def as_row(self) -> dict[str, int | str]:
        return {
            "query": self.query_name,
            "bicomp": self.biconnected,
            "cutset": self.cycle_cutset,
            "cluster": self.tree_clustering,
            "tw+1": self.treewidth,
            "hinge": self.hinge,
            "qw": self.query_width,
            "hw": self.hypertree_width,
        }


def all_method_widths(
    query: ConjunctiveQuery,
    compute_qw: bool = True,
    hinge_max_edges: int = 16,
) -> MethodWidths:
    """Evaluate every baseline on one query (qw search optional: it is the
    NP-hard one)."""
    qw = _query_width(query)[0] if compute_qw else -1
    hw = _hypertree_width(query)[0]
    return MethodWidths(
        query.name,
        biconnected_width(query),
        cycle_cutset_size(query),
        tree_clustering_width(query),
        treewidth_width(query),
        hinge_width(query, hinge_max_edges),
        qw,
        hw,
    )
