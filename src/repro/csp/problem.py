"""Constraint satisfaction problems and the CQ ⟷ CSP equivalence (§6).

The paper (following Kolaitis–Vardi [29] and [19]) treats BCQ evaluation
and CSP solving as the same problem: deciding the existence of a
homomorphism between two finite structures.  This module provides a
concrete CSP representation and the two translations:

* ``to_query`` / ``to_database`` — a CSP instance becomes a Boolean
  conjunctive query (one atom per constraint scope) over a database
  holding the allowed tuples;
* ``from_query`` — a query plus database becomes a CSP whose constraints
  are the bound atom relations.

Structural decomposition baselines operate on the CSP's hypergraph, which
coincides with the query hypergraph under this translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Hashable, Iterable, Mapping, Sequence

from .._errors import EvaluationError
from ..core.atoms import Atom, Variable
from ..core.hypergraph import Hypergraph
from ..core.query import ConjunctiveQuery
from ..db.binding import BoundQuery
from ..db.database import Database

Value = Hashable


@dataclass(frozen=True)
class Constraint:
    """A constraint: a variable scope plus its allowed tuples."""

    scope: tuple[str, ...]
    allowed: frozenset[tuple[Value, ...]]
    name: str = "c"

    def __post_init__(self) -> None:
        arity = len(self.scope)
        if len(set(self.scope)) != arity:
            raise EvaluationError(
                f"constraint {self.name} has a repeated variable in its "
                f"scope {self.scope}"
            )
        for row in self.allowed:
            if len(row) != arity:
                raise EvaluationError(
                    f"constraint {self.name}: tuple {row} does not match "
                    f"scope {self.scope}"
                )

    def satisfied_by(self, assignment: Mapping[str, Value]) -> bool:
        """True iff the (total over the scope) assignment is allowed."""
        return tuple(assignment[v] for v in self.scope) in self.allowed


@dataclass(frozen=True)
class CSPInstance:
    """A CSP: variables, finite domains and positive constraints."""

    domains: tuple[tuple[str, tuple[Value, ...]], ...]
    constraints: tuple[Constraint, ...]
    name: str = "csp"

    @staticmethod
    def of(
        domains: Mapping[str, Sequence[Value]],
        constraints: Iterable[Constraint],
        name: str = "csp",
    ) -> "CSPInstance":
        return CSPInstance(
            tuple((v, tuple(dom)) for v, dom in domains.items()),
            tuple(constraints),
            name,
        )

    @cached_property
    def domain_of(self) -> dict[str, tuple[Value, ...]]:
        return dict(self.domains)

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(v for v, _ in self.domains)

    @cached_property
    def constraints_of_variable(self) -> dict[str, tuple[Constraint, ...]]:
        table: dict[str, list[Constraint]] = {v: [] for v in self.variables}
        for c in self.constraints:
            for v in c.scope:
                table[v].append(c)
        return {v: tuple(cs) for v, cs in table.items()}

    # -- translations -------------------------------------------------------
    def to_query(self) -> ConjunctiveQuery:
        """The Boolean conjunctive query of this CSP (one atom per
        constraint; satisfiable iff the query is true on
        :meth:`to_database`)."""
        body = tuple(
            Atom(f"{c.name}_{i}", tuple(Variable(v) for v in c.scope))
            for i, c in enumerate(self.constraints)
        )
        return ConjunctiveQuery(body, (), self.name)

    def to_database(self) -> Database:
        """The database of allowed tuples matching :meth:`to_query`.

        Unary domain constraints are *not* added implicitly: a variable
        outside every constraint scope is unconstrained and handled by the
        solver directly.
        """
        db = Database()
        for i, c in enumerate(self.constraints):
            predicate = f"{c.name}_{i}"
            for row in c.allowed:
                db.add_fact(predicate, *row)
            if not c.allowed:
                db._arities.setdefault(predicate, len(c.scope))
                db._relations.setdefault(predicate, set())
        return db

    def hypergraph(self) -> Hypergraph:
        """The constraint hypergraph (= query hypergraph of
        :meth:`to_query`)."""
        return Hypergraph.from_edges(
            {f"{c.name}_{i}": c.scope for i, c in enumerate(self.constraints)},
            extra_vertices=[
                v
                for v in self.variables
                if not any(v in c.scope for c in self.constraints)
            ],
        )

    def check(self, assignment: Mapping[str, Value]) -> bool:
        """Is *assignment* (total) a solution?"""
        for v in self.variables:
            if assignment.get(v) not in self.domain_of[v]:
                return False
        return all(c.satisfied_by(assignment) for c in self.constraints)


def from_query(query: ConjunctiveQuery, db: Database) -> CSPInstance:
    """The CSP whose solutions are the satisfying substitutions of the
    Boolean query over *db* (Kolaitis–Vardi equivalence, §6)."""
    bound = BoundQuery.bind(query.as_boolean(), db)
    universe = tuple(sorted(db.universe, key=repr))
    domains = {v.name: universe for v in sorted(query.variables, key=str)}
    constraints = []
    for i, atom in enumerate(query.atoms):
        rel = bound.relations[atom]
        constraints.append(
            Constraint(rel.attributes, frozenset(rel.rows), f"{atom.predicate}{i}")
        )
    return CSPInstance.of(domains, constraints, query.name)


def graph_coloring(
    edges: Sequence[tuple[str, str]], colors: int, name: str = "coloring"
) -> CSPInstance:
    """k-colouring as a binary CSP (a classic cyclic workload for the
    examples and for experiment E17)."""
    palette = tuple(range(colors))
    vertices = sorted({v for e in edges for v in e})
    allowed = frozenset(
        (a, b) for a in palette for b in palette if a != b
    )
    constraints = [
        Constraint((u, v), allowed, "ne") for u, v in edges
    ]
    return CSPInstance.of({v: palette for v in vertices}, constraints, name)
