"""CSP substrate and the structural decomposition baselines of §6."""

from .hinges import HingeTree, degree_of_cyclicity, hinge_tree, is_hinge
from .methods import (
    MethodWidths,
    all_method_widths,
    biconnected_components,
    biconnected_width,
    cycle_cutset_size,
    hinge_width,
    tree_clustering_width,
    treewidth_width,
)
from .problem import CSPInstance, Constraint, from_query, graph_coloring
from .solver import (
    count_solutions_backtracking,
    solve_backtracking,
    solve_via_decomposition,
)

__all__ = [
    "CSPInstance",
    "Constraint",
    "HingeTree",
    "MethodWidths",
    "all_method_widths",
    "biconnected_components",
    "biconnected_width",
    "count_solutions_backtracking",
    "cycle_cutset_size",
    "degree_of_cyclicity",
    "from_query",
    "graph_coloring",
    "hinge_tree",
    "hinge_width",
    "is_hinge",
    "solve_backtracking",
    "solve_via_decomposition",
    "tree_clustering_width",
    "treewidth_width",
]
