"""Columnar relations: contiguous column buffers + vectorised kernels.

The row engine in :mod:`repro.db.relation` stores a relation as a
``frozenset`` of Python tuples.  That representation is ideal for
set-semantics correctness but pays interpreter overhead per *row* in
every hot loop: a semijoin touches one tuple at a time, a projection
allocates one output tuple per input row, and the process backend's
codec re-serialises the tuples at every scatter.

:class:`ColumnarRelation` keeps the same logical contract — an immutable
named set of tuples, substitutable anywhere a
:class:`~repro.db.relation.Relation` is accepted — but stores each
column as one contiguous buffer:

* pure-``int`` columns as ``array('q')`` (machine int64),
* pure-``float`` columns as ``array('d')``,
* everything else dictionary-encoded: an ``array('q')`` of codes plus a
  tuple *pool* of the distinct values (the pool is shared, never
  re-encoded, across every derived relation).

The relational operators are rewritten as batch kernels over those
buffers: key sets build in one pass over a column, semijoins produce a
*selection vector* of surviving positions and gather each output column
in a single ``array(map(...))`` sweep, joins collect matched position
pairs and materialise output columns without ever allocating per-row
tuples, and dictionary columns get a pool-level fast path (membership
is decided once per *distinct* value, then rows are selected by integer
code).  Because the buffers support the buffer protocol they also ship
zero-copy through ``multiprocessing.shared_memory`` — see
:mod:`repro.db.shm` — so process-backend workers attach partitions by
name instead of decoding row tuples.

Row materialisation stays available (the :attr:`ColumnarRelation.rows`
property decodes lazily, once) so inherited operations, equality and
every existing consumer keep working; annotated semiring relations stay
on the row path entirely (their per-row annotation maps defeat columnar
batching by construction).
"""

from __future__ import annotations

from array import array
from functools import partial
from itertools import compress, repeat
from operator import is_not
from typing import Iterable, Iterator, Sequence

from .._errors import SchemaError
from .annotated import AnnotatedRelation, join_dispatch
from .relation import Relation, Row, Value

try:  # Optional acceleration: zero-copy numpy views over the buffers.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard image
    _np = None

#: C-level "is not None" predicate for mask building.
_NOT_NONE = partial(is_not, None)

#: Valid layout policies for engines / plans.  ``row`` is the historical
#: tuple engine, ``columnar`` forces conversion of every plain relation,
#: ``auto`` converts per plan node when the cost model predicts enough
#: rows for the batch kernels to amortise the conversion.
LAYOUTS = ("row", "columnar", "auto")

#: Environment variable selecting the default layout (CI runs the tier-1
#: suite once with ``REPRO_LAYOUT=columnar`` to exercise the columnar
#: kernels end to end).
LAYOUT_ENV_VAR = "REPRO_LAYOUT"

#: Under ``layout="auto"`` a plan-node relation converts to columnar
#: only at or above this many rows — below it the O(n) conversion can
#: cost more than the per-row savings of one sweep.  Deliberately equal
#: to the shard policy's ``SHARD_MIN_ROWS``: both thresholds answer "is
#: this relation big enough for batch execution to win".
COLUMNAR_MIN_ROWS = 1000


def default_layout() -> str:
    """The layout engines use when none is chosen explicitly:
    ``$REPRO_LAYOUT`` when it names a valid layout, else ``auto``."""
    import os

    layout = os.environ.get(LAYOUT_ENV_VAR, "").strip().lower()
    return layout if layout in LAYOUTS else "auto"


_TYPECODE = {"i": "q", "f": "d", "o": "q"}
_NP_DTYPE = {"i": "int64", "f": "float64", "o": "int64"}


def _np_view(col: "Column"):
    """Zero-copy numpy view of a column buffer (works for both local
    ``array`` storage and shared-memory ``memoryview`` columns)."""
    return _np.frombuffer(
        memoryview(col.data).cast("B"), dtype=_NP_DTYPE[col.kind]
    )


def _np_keys(keys, kind: str):
    """The key set as a numpy array matching the column dtype, or
    ``None`` when the keys are not homogeneously typed to match the
    column (heterogeneous sets keep Python equality semantics, so those
    fall back to the interpreter membership path)."""
    key_types = set(map(type, keys))
    if kind == "i" and key_types == {int}:
        try:
            return _np.fromiter(keys, dtype=_np.int64, count=len(keys))
        except OverflowError:
            return None  # a key beyond int64 cannot use the int64 path
    if kind == "f" and key_types == {float}:
        return _np.fromiter(keys, dtype=_np.float64, count=len(keys))
    return None


def _np_unique(view):
    """Sorted distinct values of an int64/float64 view.  Rolled by hand
    because ``numpy.unique`` pays an order of magnitude over a plain
    sort-and-diff on large integer buffers."""
    if view.size < 2:
        return view
    ordered = _np.sort(view)
    keep = _np.empty(ordered.size, dtype=bool)
    keep[0] = True
    _np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def _np_used_codes(col: "Column"):
    """Distinct codes of a dictionary column — codes are dense in
    ``[0, len(pool))``, so one ``bincount`` beats any sort."""
    view = _np_view(col)
    if not view.size:
        return view
    counts = _np.bincount(view, minlength=len(col.pool))
    return _np.flatnonzero(counts)


def _np_member_mask(view, karr):
    """Boolean membership mask of *view* against key array *karr*.

    Integer keys spanning a modest range get a direct-address table
    (one boolean gather per row, no sorting); everything else uses the
    sort-based ``numpy.isin``."""
    if karr.size and karr.dtype == _np.int64 and view.size:
        lo = int(karr.min())
        hi = int(karr.max())
        span = hi - lo + 1
        if span <= max(4 * (karr.size + view.size), 1 << 16):
            table = _np.zeros(span, dtype=bool)
            table[karr - lo] = True
            in_range = (view >= lo) & (view <= hi)
            offsets = _np.where(in_range, view - lo, 0)
            return in_range & table[offsets]
    return _np.isin(view, karr)


def _np_select(col: "Column", mask) -> "Column":
    """Filter by a numpy boolean mask — one vectorised gather, then a
    memcpy back into ``array`` storage (pools stay shared)."""
    out = array(_TYPECODE[col.kind])
    out.frombytes(_np_view(col)[mask].tobytes())
    return Column(col.kind, out, col.pool)


def _np_take(col: "Column", sel) -> "Column":
    """Gather by a numpy integer selection vector."""
    out = array(_TYPECODE[col.kind])
    out.frombytes(_np_view(col)[sel].tobytes())
    return Column(col.kind, out, col.pool)


class Column:
    """One relation column as a contiguous buffer.

    ``kind`` is ``"i"`` (int64 values in ``data``), ``"f"`` (float64
    values in ``data``), or ``"o"`` (dictionary-encoded: ``data`` holds
    int64 *codes* into ``pool``, a tuple of distinct values).  ``data``
    is an ``array`` locally, or a typed ``memoryview`` into a shared
    memory segment when the column was attached zero-copy by a worker.
    The code→value mapping of a pool is injective, so code-level
    equality coincides with value-level equality — which is what lets
    the kernels deduplicate and select on raw int codes.
    """

    __slots__ = ("kind", "data", "pool")

    def __init__(self, kind: str, data, pool: tuple | None = None):
        self.kind = kind
        self.data = data
        self.pool = pool

    def __len__(self) -> int:
        return len(self.data)

    @property
    def nbytes(self) -> int:
        return len(self.data) * 8  # 'q' and 'd' are both 8-byte items

    def values(self) -> Iterator[Value]:
        """Decoded values in row order."""
        if self.kind == "o":
            return map(self.pool.__getitem__, self.data)
        return iter(self.data)

    def distinct(self) -> set:
        """The set of decoded values appearing in this column."""
        if self.kind == "o":
            return set(map(self.pool.__getitem__, set(self.data)))
        return set(self.data)

    def take(self, sel: Sequence[int]) -> "Column":
        """Gather the positions in *sel* into a fresh column (one batch
        ``map`` sweep, no per-row tuples; dictionary pools are shared)."""
        data = array(_TYPECODE[self.kind], map(self.data.__getitem__, sel))
        return Column(self.kind, data, self.pool)

    def select(self, mask: bytes) -> "Column":
        """Filter by a 0/1 byte *mask* — ``itertools.compress`` runs the
        whole sweep in C, no Python bytecode per row."""
        data = array(_TYPECODE[self.kind], compress(self.data, mask))
        return Column(self.kind, data, self.pool)

    def payload(self) -> tuple:
        """Cheaply-picklable form for the process-backend codec."""
        return (self.kind, self.data.tobytes(), self.pool)


def column_from_payload(payload: tuple) -> Column:
    kind, raw, pool = payload
    data = array(_TYPECODE[kind])
    data.frombytes(raw)
    return Column(kind, data, pool)


def encode_column(values: Sequence[Value]) -> Column:
    """Pack one column of values into the tightest column kind."""
    kinds = set(map(type, values))
    if kinds == {int}:
        try:
            return Column("i", array("q", values))
        except OverflowError:
            pass  # beyond int64: dictionary-encode below
    elif kinds == {float}:
        # NaN would lose the row engine's identity-based set membership
        # when re-boxed from a buffer, so NaN columns dictionary-encode
        # (the pool keeps the original float objects).
        if all(v == v for v in values):
            return Column("f", array("d", values))
    index: dict[Value, int] = {}
    codes = array("q")
    append = codes.append
    for v in values:
        code = index.get(v, -1)
        if code < 0:
            code = index[v] = len(index)
        append(code)
    return Column("o", codes, tuple(index))


def _empty_columns(arity: int) -> tuple[Column, ...]:
    return tuple(Column("i", array("q")) for _ in range(arity))


class ColumnarRelation(Relation):
    """A relation stored column-wise; same contract as ``Relation``.

    Instances are built with :meth:`make` (the columnar counterpart of
    ``Relation.trusted``).  ``columns`` holds one :class:`Column` per
    attribute and ``length`` the row count; the inherited ``rows``
    field becomes a lazy property that decodes the buffers into the
    usual ``frozenset`` of tuples on first touch (inherited operations,
    equality and rendering all keep working, they just pay the decode).
    Construction invariant: the column buffers never contain duplicate
    rows, so ``length == len(rows)`` always holds.
    """

    # Relation is a frozen dataclass; extra attributes are installed the
    # way ``trusted`` installs the base three.
    columns: tuple[Column, ...]
    length: int

    @staticmethod
    def make(
        attributes: tuple[str, ...],
        columns: tuple[Column, ...],
        name: str,
        length: int,
    ) -> "ColumnarRelation":
        rel = object.__new__(ColumnarRelation)
        object.__setattr__(rel, "attributes", attributes)
        object.__setattr__(rel, "name", name)
        object.__setattr__(rel, "columns", columns)
        object.__setattr__(rel, "length", length)
        return rel

    # ``rows`` is a dataclass *field* on the base; here it is a lazy
    # decoding property (a data descriptor, so it wins over the instance
    # dict and the frozen-dataclass machinery never sees an assignment).
    @property
    def rows(self) -> frozenset[Row]:
        cached = self.__dict__.get("_rows")
        if cached is None:
            if not self.length:
                cached = frozenset()
            else:
                cached = frozenset(zip(*(c.values() for c in self.columns)))
            self.__dict__["_rows"] = cached
        return cached

    # -- views ------------------------------------------------------------
    def __len__(self) -> int:
        return self.length

    def __bool__(self) -> bool:
        return self.length > 0

    def __iter__(self) -> Iterator[Row]:
        if not self.length:
            return iter(())
        return zip(*(c.values() for c in self.columns))

    def column(self, attribute: str) -> set[Value]:
        return self.columns[self._position(attribute)].distinct()

    # Class-mismatch equality: the generated dataclass ``__eq__`` only
    # compares same-class instances, but a columnar relation must equal
    # the row relation it encodes.
    def __eq__(self, other) -> bool:
        if isinstance(other, Relation):
            return (
                self.attributes == other.attributes
                and self.name == other.name
                and self.rows == other.rows
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.attributes, self.rows, self.name))

    def to_relation(self) -> Relation:
        """The plain row relation this encodes (decodes the buffers)."""
        return Relation.trusted(self.attributes, self.rows, self.name)

    # -- internal kernels -------------------------------------------------
    def _key_positions(self, shared: tuple[str, ...]) -> list[int]:
        return [self._position(a) for a in shared]

    def _key_values(self, shared: tuple[str, ...]):
        """Row-ordered iterable of key values over *shared* (bare value
        for one attribute, value tuple otherwise — matching the
        ``key_set``/``key_index`` convention of the row engine)."""
        cols = [self.columns[p] for p in self._key_positions(shared)]
        if len(cols) == 1:
            return cols[0].values()
        if not cols:
            # ``zip()`` of no columns is empty, but the key of every row
            # under zero shared attributes is the empty tuple (the
            # cross-product case of the row engine's key convention).
            return repeat((), self.length)
        return zip(*(c.values() for c in cols))

    def _take_rows(self, sel: Sequence[int], name: str | None = None) -> "ColumnarRelation":
        """Gather a selection vector into a fresh columnar relation."""
        if not sel:
            return ColumnarRelation.make(
                self.attributes, _empty_columns(self.arity), name or self.name, 0
            )
        cols = tuple(c.take(sel) for c in self.columns)
        return ColumnarRelation.make(
            self.attributes, cols, name or self.name, len(sel)
        )

    # -- memoised hash structures -----------------------------------------
    def key_set(self, attributes: tuple[str, ...]) -> frozenset:
        cached = self._key_sets.get(attributes)
        if cached is None:
            if len(attributes) == 1:
                col = self.columns[self._position(attributes[0])]
                if _np is not None:
                    if col.kind == "o":
                        cached = frozenset(
                            map(col.pool.__getitem__, _np_used_codes(col).tolist())
                        )
                    else:
                        cached = frozenset(_np_unique(_np_view(col)).tolist())
                elif col.kind == "o":
                    cached = frozenset(
                        map(col.pool.__getitem__, set(col.data))
                    )
                else:
                    cached = frozenset(col.data)
            else:
                cached = frozenset(self._key_values(attributes))
            self._key_sets[attributes] = cached
        return cached

    # -- relational algebra -----------------------------------------------
    def semijoin(self, other: Relation) -> Relation:
        if not other:
            return Relation.trusted(self.attributes, frozenset(), self.name)
        if not self.length:
            return self
        shared = tuple(a for a in self.attributes if a in other._index_of)
        if not shared:
            return self
        return self.semijoin_with_keys(shared, other.key_set(shared))

    def semijoin_with_keys(
        self, shared: tuple[str, ...], keys: frozenset
    ) -> Relation:
        """The vectorised semijoin probe: one batch pass over the key
        column builds a selection mask (``numpy.isin`` on the buffer
        view when available, else a C ``map``/``bytes`` chain), then
        each output column is one vectorised gather — no Python
        bytecode runs per row.  A dictionary column resolves membership
        once per *distinct* value (``pool[code] in keys``) and masks on
        the raw int codes."""
        if not self.length:
            return self
        positions = self._key_positions(shared)
        if len(positions) == 1:
            col = self.columns[positions[0]]
            data = col.data
            if _np is not None:
                mask = None
                if col.kind == "o":
                    view = _np_view(col)
                    used = _np_used_codes(col)
                    pool = col.pool
                    ok = [c for c in used.tolist() if pool[c] in keys]
                    if len(ok) == used.size:
                        return self
                    if not ok:
                        return self._take_rows(())
                    mask = _np_member_mask(
                        view, _np.fromiter(ok, _np.int64, count=len(ok))
                    )
                else:
                    karr = _np_keys(keys, col.kind)
                    if karr is not None:
                        mask = _np_member_mask(_np_view(col), karr)
                if mask is not None:
                    survivors = int(mask.sum())
                    if survivors == self.length:
                        return self
                    if not survivors:
                        return self._take_rows(())
                    cols = tuple(_np_select(c, mask) for c in self.columns)
                    return ColumnarRelation.make(
                        self.attributes, cols, self.name, survivors
                    )
            if col.kind == "o":
                used = set(data)
                pool = col.pool
                ok = {c for c in used if pool[c] in keys}
                if len(ok) == len(used):
                    return self
                if not ok:
                    return self._take_rows(())
                mask = bytes(map(ok.__contains__, data))
            else:
                mask = bytes(map(keys.__contains__, data))
        else:
            mask = bytes(map(keys.__contains__, self._key_values(shared)))
        survivors = mask.count(1)
        if survivors == self.length:
            return self
        if not survivors:
            return self._take_rows(())
        cols = tuple(c.select(mask) for c in self.columns)
        return ColumnarRelation.make(
            self.attributes, cols, self.name, survivors
        )

    def join(self, other: Relation, name: str | None = None) -> Relation:
        out_name = name or f"({self.name}⋈{other.name})"
        if isinstance(other, AnnotatedRelation):
            # Annotated partners stay on the row path (their per-row
            # annotation maps are the point); join_dispatch routes the
            # plain-left × annotated-right case correctly.
            return join_dispatch(self, other, name)
        shared = tuple(a for a in self.attributes if a in other._index_of)
        extra = [a for a in other.attributes if a not in self._index_of]
        out_attrs = self.attributes + tuple(extra)
        if not self.length or not other:
            return Relation.trusted(out_attrs, frozenset(), out_name)
        right = to_columnar(other)
        extra_pos = tuple(right._position(a) for a in extra)
        if self.length <= right.length:
            build, probe, build_is_left = self, right, True
        else:
            build, probe, build_is_left = right, self, False
        return columnar_probe_join(
            build, probe, build_is_left, shared, extra_pos, out_attrs, out_name
        )

    def project(
        self, attributes: Sequence[str], name: str | None = None
    ) -> Relation:
        if len(set(attributes)) != len(attributes):
            raise SchemaError(
                f"projection onto duplicate attributes {tuple(attributes)}"
            )
        positions = [self._position(a) for a in attributes]
        out_name = name or self.name
        attrs = tuple(attributes)
        if positions == list(range(self.arity)):
            # Identity projection: share the buffers.
            return ColumnarRelation.make(
                attrs, self.columns, out_name, self.length
            )
        if not positions:
            rows = frozenset({()}) if self.length else frozenset()
            return Relation.trusted((), rows, out_name)
        cols = [self.columns[p] for p in positions]
        if len(cols) == 1:
            # Distinct over raw codes/values — no per-row tuples at all.
            col = cols[0]
            if _np is not None:
                if col.kind == "o":
                    uniq = _np_used_codes(col)
                else:
                    uniq = _np_unique(_np_view(col))
                if uniq.size == self.length:
                    return ColumnarRelation.make(
                        attrs, (col,), out_name, self.length
                    )
                data = array(_TYPECODE[col.kind])
                data.frombytes(uniq.tobytes())
            else:
                distinct = set(col.data)
                if len(distinct) == self.length:
                    return ColumnarRelation.make(
                        attrs, (col,), out_name, self.length
                    )
                data = array(_TYPECODE[col.kind], distinct)
            return ColumnarRelation.make(
                attrs, (Column(col.kind, data, col.pool),), out_name, len(data)
            )
        # Multi-column: dedup on raw tuples (codes are injective per
        # pool, so code-level equality is value-level equality), then
        # rebuild each output column from the deduped transpose.
        deduped = set(zip(*(c.data for c in cols)))
        if len(deduped) == self.length:
            return ColumnarRelation.make(
                attrs, tuple(cols), out_name, self.length
            )
        out_cols: list[Column] = []
        transposed = tuple(zip(*deduped)) if deduped else ((),) * len(cols)
        for col, raw in zip(cols, transposed):
            out_cols.append(
                Column(col.kind, array(_TYPECODE[col.kind], raw), col.pool)
            )
        return ColumnarRelation.make(
            attrs, tuple(out_cols), out_name, len(deduped)
        )


def columnar_probe_join(
    build: ColumnarRelation,
    probe: ColumnarRelation,
    build_is_left: bool,
    shared: tuple[str, ...],
    extra_pos: Sequence[int],
    out_attrs: tuple[str, ...],
    name: str,
) -> ColumnarRelation:
    """The vectorised hash-join: same build/probe contract as
    :func:`repro.db.relation.probe_join` (``out_attrs`` = left
    attributes + right extras, ``extra_pos`` indexing the right side).
    When the build side's keys are unique (foreign-key joins, reduced
    nodes) the whole probe runs as C sweeps: one ``map(index.get, …)``
    pass yields per-row matches, a mask selects the hits, and every
    output column is a ``compress``/gather batch — no Python bytecode
    per row.  Duplicate build keys fall back to an expansion loop that
    only iterates the *matched* probe rows (the probe is pre-filtered
    with a C membership mask first).  Natural join of sets is
    duplicate-free (output rows are in bijection with matched pairs
    agreeing on the shared columns), so no output dedup is needed."""
    n_build = build.length
    if not n_build or not probe.length:
        return ColumnarRelation.make(
            out_attrs, _empty_columns(len(out_attrs)), name, 0
        )
    if _np is not None and len(shared) == 1:
        result = _np_probe_join(
            build, probe, build_is_left, shared[0], extra_pos, out_attrs, name
        )
        if result is not None:
            return result
    index = dict(zip(build._key_values(shared), range(n_build)))
    if len(index) == n_build:
        # Unique build keys: ≤ 1 match per probe row, fully C.
        matches = list(map(index.get, probe._key_values(shared)))
        mask = bytes(map(_NOT_NONE, matches))
        hits = mask.count(1)
        if not hits:
            return ColumnarRelation.make(
                out_attrs, _empty_columns(len(out_attrs)), name, 0
            )
        bsel = list(compress(matches, mask))
        if build_is_left:
            out_cols = [c.take(bsel) for c in build.columns]
            out_cols.extend(
                probe.columns[p].select(mask) for p in extra_pos
            )
        else:
            out_cols = [c.select(mask) for c in probe.columns]
            out_cols.extend(
                build.columns[p].take(bsel) for p in extra_pos
            )
        return ColumnarRelation.make(out_attrs, tuple(out_cols), name, hits)
    # Duplicate build keys: full position-list index, then expand only
    # the probe rows that match at all (C-masked prefilter).
    index = {}
    for pos, key in enumerate(build._key_values(shared)):
        entry = index.get(key)
        if entry is None:
            index[key] = [pos]
        else:
            entry.append(pos)
    pkeys = list(probe._key_values(shared))
    mask = bytes(map(index.__contains__, pkeys))
    ppos: list[int] = []
    bpos: list[int] = []
    padd = ppos.append
    badd = bpos.append
    get = index.get
    for j, key in zip(compress(range(len(pkeys)), mask), compress(pkeys, mask)):
        for p in get(key):
            padd(j)
            badd(p)
    if not ppos:
        return ColumnarRelation.make(
            out_attrs, _empty_columns(len(out_attrs)), name, 0
        )
    if build_is_left:
        left, lsel = build, bpos
        right, rsel = probe, ppos
    else:
        left, lsel = probe, ppos
        right, rsel = build, bpos
    out_cols = [c.take(lsel) for c in left.columns]
    out_cols.extend(right.columns[p].take(rsel) for p in extra_pos)
    return ColumnarRelation.make(out_attrs, tuple(out_cols), name, len(ppos))


def _np_probe_join(
    build: ColumnarRelation,
    probe: ColumnarRelation,
    build_is_left: bool,
    key: str,
    extra_pos: Sequence[int],
    out_attrs: tuple[str, ...],
    name: str,
):
    """Vectorised single-key probe: sort the build keys once, binary
    search every probe key for its match *range* (so duplicate build
    keys expand without a Python loop: the flattened ranges come from
    ``repeat``/``cumsum`` arithmetic), and gather every output column
    with numpy fancy indexing.  Dictionary key columns first translate
    probe codes into the build pool's code space (one small pass over
    the *pools*, never the rows).  Returns ``None`` when the key kinds
    don't line up — the caller's generic path keeps Python equality
    semantics for those."""
    bcol = build.columns[build._position(key)]
    pcol = probe.columns[probe._position(key)]
    if bcol.kind == "o" and pcol.kind == "o":
        bk = _np_view(bcol)
        code_of = {v: c for c, v in enumerate(bcol.pool)}
        # -1 never appears as a build code, so untranslatable probe
        # values simply never match.
        trans = _np.fromiter(
            (code_of.get(v, -1) for v in pcol.pool),
            _np.int64,
            count=len(pcol.pool),
        )
        pk = trans[_np_view(pcol)]
    elif bcol.kind == pcol.kind and bcol.kind != "o":
        bk = _np_view(bcol)
        pk = _np_view(pcol)
    else:
        return None
    order = _np.argsort(bk)
    direct = False
    if bk.dtype == _np.int64:
        kmin = int(bk.min())
        kmax = int(bk.max())
        span = kmax - kmin + 1
        direct = span <= max(4 * (bk.size + pk.size), 1 << 16)
    if direct:
        # Direct-address CSR: ``order`` groups build rows by key value
        # and ``starts[v]`` is the group boundary, so each probe key
        # resolves its match range with two gathers — no binary search.
        group_counts = _np.bincount(bk - kmin, minlength=span)
        starts = _np.zeros(span + 1, dtype=_np.int64)
        _np.cumsum(group_counts, out=starts[1:])
        in_range = (pk >= kmin) & (pk <= kmax)
        slot = _np.where(in_range, pk - kmin, 0)
        lo = _np.where(in_range, starts[slot], 0)
        hi = _np.where(in_range, starts[slot + 1], 0)
    else:
        sbk = bk[order]
        lo = _np.searchsorted(sbk, pk, side="left")
        hi = _np.searchsorted(sbk, pk, side="right")
    matches = hi - lo
    total = int(matches.sum())
    if not total:
        return ColumnarRelation.make(
            out_attrs, _empty_columns(len(out_attrs)), name, 0
        )
    # Flatten the per-probe match ranges: probe row j repeats once per
    # partner, and the partner positions are lo[j], lo[j]+1, … hi[j)-1
    # (arange minus each range's running start).
    ppos = _np.repeat(_np.arange(pk.size), matches)
    ends = _np.cumsum(matches)
    offsets = _np.arange(total) - _np.repeat(ends - matches, matches)
    bsel = order[_np.repeat(lo, matches) + offsets]
    if build_is_left:
        out_cols = [_np_take(c, bsel) for c in build.columns]
        out_cols.extend(_np_take(probe.columns[p], ppos) for p in extra_pos)
    else:
        out_cols = [_np_take(c, ppos) for c in probe.columns]
        out_cols.extend(_np_take(build.columns[p], bsel) for p in extra_pos)
    return ColumnarRelation.make(out_attrs, tuple(out_cols), name, total)


def to_columnar(rel: Relation, min_rows: int = 0) -> Relation:
    """Convert a plain relation to columnar storage.

    Already-columnar input returns unchanged; annotated relations stay
    on the row path (returned as-is); 0-ary relations stay row (there
    is nothing to pack).  With *min_rows* > 0 relations below the
    threshold are returned unchanged — the ``layout="auto"`` gate."""
    if isinstance(rel, (ColumnarRelation, AnnotatedRelation)):
        return rel
    if not rel.attributes:
        return rel
    rows = rel.rows
    n = len(rows)
    if n < min_rows:
        return rel
    if not n:
        columns = _empty_columns(len(rel.attributes))
    else:
        columns = tuple(encode_column(vals) for vals in zip(*rows))
    return ColumnarRelation.make(rel.attributes, columns, rel.name, n)


def from_columns(
    attributes: Sequence[str],
    columns: Iterable[Sequence[Value]],
    name: str = "r",
) -> ColumnarRelation:
    """Build a columnar relation straight from column value sequences
    (deduplicating rows, preserving the set contract)."""
    cols = [tuple(c) for c in columns]
    attrs = tuple(attributes)
    if len(set(attrs)) != len(attrs):
        raise SchemaError(f"duplicate attributes {attrs}")
    lengths = {len(c) for c in cols}
    if len(lengths) > 1:
        raise SchemaError(
            f"columns of relation {name!r} have differing lengths {lengths}"
        )
    if len(cols) != len(attrs):
        raise SchemaError(
            f"{len(cols)} columns for {len(attrs)} attributes in {name!r}"
        )
    rows = frozenset(zip(*cols)) if cols and cols[0] else frozenset()
    return to_columnar(Relation.trusted(attrs, rows, name))


def concat_columnar(
    pieces: Sequence[ColumnarRelation],
    attributes: tuple[str, ...],
    name: str,
) -> Relation:
    """Gather-side merge of columnar shard pieces: union the decoded
    rows (cross-shard dedup) and re-encode, keeping the result columnar
    for downstream operators."""
    merged: set[Row] = set()
    for piece in pieces:
        merged |= piece.rows
    return to_columnar(Relation.trusted(attributes, frozenset(merged), name))


def partition_columnar(
    rel: ColumnarRelation,
    key_pos: int,
    n_shards: int,
    hash_fn,
    skew_factor: float,
) -> tuple[tuple[ColumnarRelation, ...], frozenset]:
    """Hash-partition a columnar relation on the column at *key_pos*.

    The columnar counterpart of the row bucketing in
    :meth:`repro.db.sharded.ShardedRelation.shard`: shard ids come from
    *hash_fn* (the process-stable hash), a dictionary key column hashes
    once per *pool entry* instead of once per row, and each shard is
    carved out with a selection vector (pools stay shared).  Returns the
    shard pieces plus the heavy-hitter values that were spread
    round-robin (empty for a clean partition) — same skew-guard
    semantics as the row path."""
    col = rel.columns[key_pos]
    data = col.data
    sids_np = None
    if _np is not None:
        view = _np_view(col)
        if col.kind == "o":
            # Hash once per *pool entry*, then map codes → shard ids
            # with one fancy-index gather.
            shard_of_code = _np.fromiter(
                (hash_fn(v) % n_shards for v in col.pool),
                _np.int64,
                count=len(col.pool),
            )
            sids_np = shard_of_code[view] if view.size else view
        elif col.kind == "i" and view.size:
            # CPython's int hash is the identity inside ±(2**61 - 1)
            # except hash(-1) == -2, so the whole shard-id pass
            # vectorises; values outside that range take the hash chain
            # below.
            modulus = (1 << 61) - 1
            if -modulus < int(view.min()) and int(view.max()) < modulus:
                sids_np = _np.where(view == -1, -2, view) % n_shards
        elif col.kind == "i":
            sids_np = view
    if sids_np is not None:
        counts = _np.bincount(sids_np, minlength=n_shards)
        sids = None
    else:
        if col.kind == "o":
            shard_of_code = [hash_fn(v) % n_shards for v in col.pool]
            sids = list(map(shard_of_code.__getitem__, data))
        else:
            # stable_hash agrees with builtin hash for numeric scalars,
            # so the shard-id pass is a C map chain.
            sids = list(map(n_shards.__rmod__, map(hash, data)))
        counts = [0] * n_shards
        for s in sids:
            counts[s] += 1
    heavy: frozenset = frozenset()
    threshold = skew_factor * rel.length / n_shards
    if rel.length and max(counts) > threshold:
        # Count key values only inside oversized shards (a value's rows
        # all share a shard before spreading, so none can hide).
        if sids is None:
            sids = sids_np.tolist()
        heavy_values: set = set()
        for s in range(n_shards):
            if counts[s] <= threshold:
                continue
            mask = bytes(map(s.__eq__, sids))
            value_counts: dict = {}
            for c in compress(data, mask):
                value_counts[c] = value_counts.get(c, 0) + 1
            if col.kind == "o":
                heavy_values.update(
                    col.pool[c]
                    for c, k in value_counts.items()
                    if k > threshold
                )
            else:
                heavy_values.update(
                    v for v, k in value_counts.items() if k > threshold
                )
        heavy = frozenset(heavy_values)
        if heavy:
            sels: list[list[int]] = [[] for _ in range(n_shards)]
            appends = [s.append for s in sels]
            spread = 0
            for j, v in enumerate(col.values()):
                if v in heavy:
                    appends[spread % n_shards](j)
                    spread += 1
                else:
                    appends[sids[j]](j)
            pieces = tuple(rel._take_rows(sel) for sel in sels)
            return pieces, heavy
    if sids_np is not None:
        pieces = tuple(
            ColumnarRelation.make(
                rel.attributes,
                tuple(_np_select(c, sids_np == s) for c in rel.columns),
                rel.name,
                int(counts[s]),
            )
            for s in range(n_shards)
        )
    else:
        masks = [bytes(map(s.__eq__, sids)) for s in range(n_shards)]
        pieces = tuple(
            ColumnarRelation.make(
                rel.attributes,
                tuple(c.select(mask) for c in rel.columns),
                rel.name,
                mask.count(1),
            )
            for mask, s in zip(masks, range(n_shards))
        )
    return pieces, heavy
