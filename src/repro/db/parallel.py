"""Parallel Yannakakis passes over hash-partitioned relations.

Mirrors :mod:`repro.db.yannakakis` operation for operation, but node
relations are first hash-partitioned into :class:`ShardedRelation`\\ s
(:func:`shard_key_for` picks the partition key: a variable shared with
the tree parent, so parent-child semijoin edges run partition-wise
whenever the two sides agree on it) and every semijoin/join/projection
then fans its shard tasks over an execution backend
(:mod:`repro.db.backend`): inline, thread pool, or worker processes with
resident shards.

How many shards each node gets is the caller's policy: the flat
``n_shards`` knob shards every node alike (the PR-4 behaviour), while
``shard_counts`` — produced by the engine's cost-based planner from
cardinality estimates — assigns counts per node, leaving small relations
unsharded entirely (they stay plain :class:`Relation` objects, so they
skip partitioning *and* the shard-task machinery; the sweeps mix plain
and sharded operands freely).

The sequential functions are the semantic oracle: for every tree,
database, backend and shard assignment,

* ``parallel_boolean_eval ≡ boolean_eval``
* ``parallel_full_reduce ≡ full_reduce``
* ``parallel_enumerate_answers ≡ enumerate_answers``

which ``tests/db/test_parallel_equivalence.py`` asserts property-style.
``backend=None`` (and ``pool=None``) runs the same sharded code inline,
which is how shard-count equivalence is tested without pool noise.
"""

from __future__ import annotations

from concurrent.futures import Executor

from ..core.atoms import Atom
from ..core.jointree import JoinTree
from ..obs import current_tracer
from .annotated import join_dispatch
from .backend import ExecutionContext
from .columnar import COLUMNAR_MIN_ROWS, LAYOUTS, to_columnar
from .relation import Relation
from .sharded import ShardedRelation, as_context
from .stats import EvalStats

__all__ = [
    "parallel_boolean_eval",
    "parallel_enumerate_answers",
    "parallel_full_reduce",
    "shard_key_for",
]


def shard_key_for(
    tree: JoinTree, node: Atom, relation: Relation
) -> str | None:
    """The partition key for *node*'s relation: prefer an attribute shared
    with the parent (the bottom-up and top-down sweeps both run over the
    parent edge, so agreeing on it makes those semijoins pairwise), then
    one shared with a child, then any attribute; ``None`` for the 0-ary
    relation, which cannot be partitioned."""
    attrs = relation.attributes
    if not attrs:
        return None
    here = set(attrs)
    parent = tree.parent_of.get(node)
    neighbours = ([parent] if parent is not None else []) + list(
        tree.children(node)
    )
    for neighbour in neighbours:
        shared = sorted(
            here & {v.name for v in neighbour.variables}
        )
        if shared:
            return shared[0]
    return attrs[0]


def _with_layout(
    relations: dict[Atom, Relation], layout: str | None
) -> dict[Atom, Relation]:
    """Apply a storage-layout policy to the node relations before
    sharding: ``"columnar"`` converts every plain relation, ``"auto"``
    only those with :data:`~repro.db.columnar.COLUMNAR_MIN_ROWS` rows or
    more, ``"row"``/``None`` converts nothing.  Annotated and 0-ary
    relations pass through unchanged (``to_columnar`` is a no-op on
    them), as do relations already columnar — engine callers convert at
    bag materialisation and hit that path."""
    if layout in (None, "row"):
        return relations
    if layout not in LAYOUTS:
        raise ValueError(
            f"unknown layout {layout!r}; expected one of {LAYOUTS}"
        )
    min_rows = COLUMNAR_MIN_ROWS if layout == "auto" else 0
    return {
        node: to_columnar(rel, min_rows=min_rows)
        for node, rel in relations.items()
    }


def _shard_all(
    tree: JoinTree,
    relations: dict[Atom, Relation],
    n_shards: int,
    ctx: ExecutionContext,
    shard_counts: dict[Atom, int] | None = None,
) -> dict[Atom, ShardedRelation | Relation]:
    """Partition the node relations per the shard policy.

    Nodes assigned one shard (and 0-ary relations) stay plain — for the
    cost-based policy that is the "partition overhead dominates below
    ~1k rows" rule made concrete."""
    sharded: dict[Atom, ShardedRelation | Relation] = {}
    for node in tree.nodes:
        rel = relations[node]
        n = shard_counts.get(node, n_shards) if shard_counts else n_shards
        key = shard_key_for(tree, node, rel)
        sharded[node] = (
            rel
            if key is None or n <= 1
            else ShardedRelation.shard(rel, key, n, backend=ctx)
        )
    return sharded


def _semijoin(left, right, ctx: ExecutionContext, stats: EvalStats):
    """One sweep step on possibly-sharded operands."""
    with current_tracer().span(
        "sweep.semijoin",
        node=getattr(left, "name", None),
        sharded=isinstance(left, ShardedRelation),
    ) as sp:
        if isinstance(left, ShardedRelation):
            out = left.semijoin(right, backend=ctx)
        elif isinstance(right, ShardedRelation):
            # A plain left side only needs the sharded partner's key-set
            # union, never its coalesced rows.
            shared = tuple(
                a for a in left.attributes if a in right.attributes
            )
            if not right:
                out = Relation.trusted(left.attributes, frozenset(), left.name)
            elif not shared or not left.rows:
                out = left
            else:
                # Method dispatch keeps annotated left sides annotated.
                out = left.semijoin_with_keys(shared, right.key_set(shared))
        else:
            out = left.semijoin(right)
        sp.set(rows=len(out))
    stats.semijoins += 1
    return stats.record(out)


def _reduced_bottom_up_sharded(
    tree: JoinTree,
    sharded: dict[Atom, ShardedRelation | Relation],
    stats: EvalStats,
    ctx: ExecutionContext,
) -> dict[Atom, ShardedRelation | Relation]:
    reduced = dict(sharded)
    for node in tree.post_order():
        for child in tree.children(node):
            reduced[node] = _semijoin(
                reduced[node], reduced[child], ctx, stats
            )
    return reduced


def _full_reduce_sharded(
    tree: JoinTree,
    sharded: dict[Atom, ShardedRelation | Relation],
    stats: EvalStats,
    ctx: ExecutionContext,
) -> dict[Atom, ShardedRelation | Relation]:
    reduced = _reduced_bottom_up_sharded(tree, sharded, stats, ctx)
    for node in tree.nodes:  # preorder: parents before children
        for child in tree.children(node):
            reduced[child] = _semijoin(
                reduced[child], reduced[node], ctx, stats
            )
    return reduced


def _as_relation(rel: ShardedRelation | Relation) -> Relation:
    return rel.to_relation() if isinstance(rel, ShardedRelation) else rel


def parallel_boolean_eval(
    tree: JoinTree,
    relations: dict[Atom, Relation],
    stats: EvalStats | None = None,
    n_shards: int = 4,
    pool: Executor | None = None,
    backend: ExecutionContext | None = None,
    shard_counts: dict[Atom, int] | None = None,
    layout: str | None = None,
) -> bool:
    """Sharded Boolean Yannakakis: one bottom-up semijoin sweep."""
    stats = stats if stats is not None else EvalStats()
    if any(not relations[node] for node in tree.nodes):
        return False
    ctx = as_context(backend, pool)
    relations = _with_layout(relations, layout)
    sharded = _shard_all(tree, relations, n_shards, ctx, shard_counts)
    reduced = _reduced_bottom_up_sharded(tree, sharded, stats, ctx)
    return bool(reduced[tree.root])


def parallel_full_reduce(
    tree: JoinTree,
    relations: dict[Atom, Relation],
    stats: EvalStats | None = None,
    n_shards: int = 4,
    pool: Executor | None = None,
    backend: ExecutionContext | None = None,
    shard_counts: dict[Atom, int] | None = None,
    layout: str | None = None,
) -> dict[Atom, Relation]:
    """Sharded full reducer; returns plain relations (coalesced), so the
    result is drop-in comparable with :func:`repro.db.yannakakis.full_reduce`."""
    stats = stats if stats is not None else EvalStats()
    ctx = as_context(backend, pool)
    relations = _with_layout(relations, layout)
    sharded = _shard_all(tree, relations, n_shards, ctx, shard_counts)
    reduced = _full_reduce_sharded(tree, sharded, stats, ctx)
    return {node: _as_relation(rel) for node, rel in reduced.items()}


def parallel_enumerate_answers(
    tree: JoinTree,
    relations: dict[Atom, Relation],
    output: tuple[str, ...],
    stats: EvalStats | None = None,
    n_shards: int = 4,
    pool: Executor | None = None,
    backend: ExecutionContext | None = None,
    shard_counts: dict[Atom, int] | None = None,
    layout: str | None = None,
) -> Relation:
    """Sharded output-polynomial enumeration.

    After the sharded full reduction, the bottom-up join pass keeps each
    partial result partitioned for as long as its shard key survives the
    projection (it coalesces exactly when the key is projected away —
    after which shard-local duplicate elimination would no longer be
    global).  Under the process backend the partial joins grow and
    shrink entirely inside the workers; only the final answer crosses
    back.
    """
    stats = stats if stats is not None else EvalStats()
    ctx = as_context(backend, pool)
    relations = _with_layout(relations, layout)
    sharded = _shard_all(tree, relations, n_shards, ctx, shard_counts)
    reduced = _full_reduce_sharded(tree, sharded, stats, ctx)

    tree_attrs: set[str] = set()
    for node in tree.nodes:
        tree_attrs.update(relations[node].attributes)
    missing = set(output) - tree_attrs
    if missing:
        raise ValueError(
            f"output attributes {sorted(missing)} do not occur in the join tree"
        )

    out_set = set(output)
    tracer = current_tracer()
    partial: dict[Atom, ShardedRelation | Relation] = {}
    subtree_attrs: dict[Atom, set[str]] = {}
    for node in tree.post_order():
        rel = reduced[node]
        attrs_below: set[str] = set(rel.attributes)
        for child in tree.children(node):
            attrs_below.update(subtree_attrs[child])
        keep = set(rel.attributes) | (attrs_below & out_set)
        for child in tree.children(node):
            child_part = partial[child]
            with tracer.span(
                "sweep.join",
                node=node.predicate,
                sharded=isinstance(rel, ShardedRelation),
            ) as sp:
                if isinstance(rel, ShardedRelation):
                    rel = rel.join(child_part, backend=ctx)
                else:
                    rel = join_dispatch(rel, _as_relation(child_part))
                stats.joins += 1
                kept = [a for a in rel.attributes if a in keep]
                if isinstance(rel, ShardedRelation):
                    rel = stats.record(rel.project(kept, backend=ctx))
                else:
                    rel = stats.record(rel.project(kept))
                stats.projections += 1
                sp.set(rows=len(rel))
        partial[node] = rel
        subtree_attrs[node] = attrs_below
    root_rel = partial[tree.root]
    if isinstance(root_rel, ShardedRelation):
        answer = root_rel.project(list(output), name="ans", backend=ctx)
    else:
        answer = root_rel.project(list(output), name="ans")
    stats.projections += 1
    return stats.record(_as_relation(answer))
