"""Relational engine and the paper's evaluation strategies."""

from .annotated import AnnotatedRelation
from .backend import (
    ExecutionContext,
    ProcessBackend,
    SequentialBackend,
    ThreadBackend,
    make_backend,
)
from .binding import BoundQuery, bind_atom
from .columnar import (
    COLUMNAR_MIN_ROWS,
    LAYOUTS,
    ColumnarRelation,
    default_layout,
    from_columns,
    to_columnar,
)
from .database import Database
from .evaluate import (
    Lemma46Result,
    evaluate,
    evaluate_boolean,
    lemma46_transform,
)
from .naive import (
    backtracking_answers,
    backtracking_eval,
    naive_boolean_eval,
    naive_join_eval,
)
from .parallel import (
    parallel_boolean_eval,
    parallel_enumerate_answers,
    parallel_full_reduce,
    shard_key_for,
)
from .relation import Relation
from .semiring import (
    COUNTING,
    INT_RING,
    MINCOST,
    PROB,
    PROVENANCE,
    SEMIRINGS,
    Semiring,
    get_semiring,
    resolve_semiring,
)
from .sharded import ShardedRelation
from .stats import EvalStats
from .yannakakis import boolean_eval, enumerate_answers, full_reduce

__all__ = [
    "AnnotatedRelation",
    "BoundQuery",
    "COLUMNAR_MIN_ROWS",
    "COUNTING",
    "ColumnarRelation",
    "Database",
    "EvalStats",
    "ExecutionContext",
    "INT_RING",
    "LAYOUTS",
    "Lemma46Result",
    "MINCOST",
    "PROB",
    "PROVENANCE",
    "ProcessBackend",
    "Relation",
    "SEMIRINGS",
    "Semiring",
    "SequentialBackend",
    "ShardedRelation",
    "ThreadBackend",
    "backtracking_answers",
    "backtracking_eval",
    "bind_atom",
    "boolean_eval",
    "default_layout",
    "enumerate_answers",
    "from_columns",
    "evaluate",
    "evaluate_boolean",
    "full_reduce",
    "get_semiring",
    "lemma46_transform",
    "resolve_semiring",
    "make_backend",
    "naive_boolean_eval",
    "naive_join_eval",
    "parallel_boolean_eval",
    "parallel_enumerate_answers",
    "parallel_full_reduce",
    "shard_key_for",
    "to_columnar",
]
