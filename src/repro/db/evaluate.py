"""Decomposition-guided query evaluation (Lemma 4.6, Theorems 4.7/4.8).

Lemma 4.6 turns a query ``Q`` with a width-k hypertree decomposition into
an *acyclic* query ``Q′`` over a derived database ``DB′`` together with a
join tree ``JT``:

* complete the decomposition (Lemma 4.4);
* for each node ``p``: join, for every ``A ∈ λ(p)``, the relation of ``A``
  projected onto ``var(A) ∩ χ(p)``; project the result onto ``χ(p)``.
  This is the fresh relation of a fresh atom over ``χ(p)``;
* the tree of fresh atoms mirrors ``T`` and is a join tree of ``Q′``
  (χ-connectedness becomes the join-tree connectedness condition).

Each node relation is a join of ≤ k database relations, so
``‖⟨Q′, DB′, JT⟩‖ = O((‖Q‖ + ‖HD‖) · r^k)`` — measured empirically by
experiment E08.  Evaluation then runs Yannakakis on ``JT``: Boolean
(Theorem 4.7 / Corollary 5.19) or output-polynomial enumeration
(Theorem 4.8 / Corollary 5.20).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from .._errors import EvaluationError
from ..core.acyclicity import join_tree as build_join_tree
from ..core.atoms import Atom, Variable
from ..core.detkdecomp import hypertree_width
from ..core.hypertree import HTNode, HypertreeDecomposition
from ..core.jointree import JoinTree
from ..core.query import ConjunctiveQuery
from .annotated import (
    AnnotatedRelation,
    AnnotationAssignmentError,
    assign_annotated_atoms,
    bind_atom_annotated,
    naive_annotated_eval,
)
from .binding import BoundQuery, bind_atom
from .database import Database
from .naive import backtracking_eval, naive_boolean_eval, naive_join_eval
from .relation import Relation
from .semiring import Semiring
from .stats import EvalStats
from .yannakakis import boolean_eval, enumerate_answers

Method = Literal["decomposition", "yannakakis", "naive", "backtracking"]


@dataclass
class Lemma46Result:
    """The transformed triple ``⟨Q′, DB′, JT⟩`` plus size accounting."""

    qprime: ConjunctiveQuery
    jt: JoinTree
    relations: dict[Atom, Relation]
    node_of_atom: dict[Atom, HTNode]
    stats: EvalStats = field(default_factory=EvalStats)

    def size(self) -> int:
        """``‖⟨Q′, DB′, JT⟩‖``: value occurrences in DB′ plus atom sizes of
        Q′ and JT (the units of the Lemma 4.6 bound)."""
        db_size = sum(len(r) * max(1, r.arity) for r in self.relations.values())
        query_size = sum(1 + a.arity for a in self.qprime.atoms)
        tree_size = 2 * len(self.jt.nodes)
        return db_size + query_size + tree_size

    def database(self) -> Database:
        """DB′ as a standalone :class:`Database` (one relation per node)."""
        db = Database()
        for atom, rel in self.relations.items():
            for row in rel.rows:
                db.add_fact(atom.predicate, *row)
            if not rel.rows:
                # Preserve the (empty) relation's existence and arity.
                db._arities.setdefault(atom.predicate, rel.arity)
                db._relations.setdefault(atom.predicate, set())
        return db


def lemma46_transform(
    query: ConjunctiveQuery,
    db: Database,
    hd: HypertreeDecomposition,
    stats: EvalStats | None = None,
    semiring: Semiring | None = None,
) -> Lemma46Result:
    """Construct ``⟨Q′, DB′, JT⟩`` from ``⟨Q, DB, HD⟩`` (Lemma 4.6).

    With a *semiring*, node relations carry annotations: each distinct
    query atom's annotation enters at exactly one node (its *carrier*,
    picked by :func:`~repro.db.annotated.assign_annotated_atoms`; other
    mentions join unannotated as pure filters).  Every part joined at a
    node has attributes ⊆ χ(p) — carriers because assignment requires
    ``var(A) ⊆ χ(p)``, the rest by pre-projection — so the bag-level
    projection never ``plus``-folds; all variable elimination happens in
    the enumeration pass, once per variable by χ-connectedness.  Raises
    :class:`AnnotationAssignmentError` when no assignment exists (the
    caller falls back to naive annotated evaluation)."""
    stats = stats if stats is not None else EvalStats()
    complete = hd if hd.is_complete else hd.complete()

    fresh_atoms: dict[int, Atom] = {}
    relations: dict[Atom, Relation] = {}
    node_of_atom: dict[Atom, HTNode] = {}
    nodes = complete.nodes
    node_ids = {id(n): i for i, n in enumerate(nodes)}

    assignment: dict[Atom, int] | None = None
    if semiring is not None:
        assignment = assign_annotated_atoms(
            [(tuple(p.lam), p.chi) for p in nodes], query.atoms
        )
        if assignment is None:
            raise AnnotationAssignmentError(
                f"decomposition of {query.name} admits no once-per-atom "
                "annotation assignment"
            )

    for i, p in enumerate(nodes):
        chi_names = tuple(sorted(v.name for v in p.chi))
        if semiring is not None:
            rel: Relation = AnnotatedRelation.unit(semiring, f"n{i}")
        else:
            rel = Relation((), frozenset({()}), f"n{i}")
        for a in sorted(p.lam, key=str):
            overlap = a.variables & p.chi
            if not overlap and a.variables:
                continue  # contributes no χ(p) bindings (Lemma 4.6 case split)
            if assignment is not None and assignment.get(a) == i:
                part: Relation = bind_atom_annotated(a, db, semiring)
            else:
                part = bind_atom(a, db)
            if not a.variables <= p.chi:
                part = part.project(
                    [v.name for v in sorted(overlap, key=lambda x: x.name)]
                )
                stats.projections += 1
            rel = rel.join(part)
            stats.joins += 1
            stats.record(rel)
        rel = stats.record(rel.project(chi_names, name=f"n{i}"))
        stats.projections += 1
        atom = Atom(f"n{i}", tuple(Variable(a) for a in chi_names))
        fresh_atoms[i] = atom
        relations[atom] = rel
        node_of_atom[atom] = p

    children_map: dict[Atom, tuple[Atom, ...]] = {}
    for i, p in enumerate(nodes):
        kids = tuple(fresh_atoms[node_ids[id(c)]] for c in p.children)
        if kids:
            children_map[fresh_atoms[i]] = kids
    jt = JoinTree(fresh_atoms[0], children_map)

    qprime = ConjunctiveQuery(
        tuple(fresh_atoms[i] for i in range(len(nodes))),
        query.head_terms,
        f"{query.name}'",
    )
    return Lemma46Result(qprime, jt, relations, node_of_atom, stats)


def evaluate_boolean(
    query: ConjunctiveQuery,
    db: Database,
    method: Method = "decomposition",
    hd: HypertreeDecomposition | None = None,
    stats: EvalStats | None = None,
) -> bool:
    """Evaluate a Boolean conjunctive query.

    Methods
    -------
    ``"decomposition"``
        The paper's pipeline: hypertree decomposition (computed with
        :func:`~repro.core.detkdecomp.hypertree_width` when *hd* is not
        supplied) → Lemma 4.6 transformation → Boolean Yannakakis.
    ``"yannakakis"``
        Direct Yannakakis; requires the query to be acyclic.
    ``"naive"`` / ``"backtracking"``
        The baselines of :mod:`repro.db.naive`.
    """
    stats = stats if stats is not None else EvalStats()
    query = query.as_boolean()
    if not query.atoms:
        return True
    if method == "naive":
        return naive_boolean_eval(query, db, stats)
    if method == "backtracking":
        return backtracking_eval(query, db, stats)
    if method == "yannakakis":
        jt = build_join_tree(query)
        if jt is None:
            raise EvaluationError(
                "method 'yannakakis' requires an acyclic query; "
                f"{query.name} is cyclic"
            )
        bound = BoundQuery.bind(query, db)
        return boolean_eval(jt, bound.relations, stats)
    if method == "decomposition":
        if hd is None:
            _, hd = hypertree_width(query)
        transformed = lemma46_transform(query, db, hd, stats)
        return boolean_eval(transformed.jt, transformed.relations, stats)
    raise ValueError(f"unknown evaluation method {method!r}")


def evaluate(
    query: ConjunctiveQuery,
    db: Database,
    method: Method = "decomposition",
    hd: HypertreeDecomposition | None = None,
    stats: EvalStats | None = None,
    semiring: Semiring | None = None,
) -> Relation:
    """Evaluate a (possibly non-Boolean) conjunctive query to its answer
    relation (Theorem 4.8 for the decomposition method).

    With a *semiring* the result is an
    :class:`~repro.db.annotated.AnnotatedRelation` whose rows carry
    provenance-semiring values (derivation counts, minimal costs,
    witness sets, probabilities — per the chosen algebra).  Set
    semantics (``semiring=None``) runs the untouched plain pipeline.
    """
    stats = stats if stats is not None else EvalStats()
    head = tuple(
        dict.fromkeys(
            t.name for t in query.head_terms if isinstance(t, Variable)
        )
    )
    if not query.atoms:
        if semiring is not None:
            rows = frozenset({()} if not head else ())
            return AnnotatedRelation.make(
                head, rows, "ans", semiring,
                dict.fromkeys(rows, semiring.one),
            )
        return Relation(head, frozenset({()} if not head else ()), "ans")
    if method == "naive":
        if semiring is not None:
            return naive_annotated_eval(query, db, semiring, stats)
        return naive_join_eval(query, db, stats)
    if method == "backtracking":
        if semiring is not None:
            # Backtracking enumerates rows, not derivations; annotated
            # semantics routes to the always-correct naive join.
            return naive_annotated_eval(query, db, semiring, stats)
        from .naive import backtracking_answers

        return backtracking_answers(query, db, stats)
    if method == "yannakakis":
        jt = build_join_tree(query)
        if jt is None:
            raise EvaluationError(
                "method 'yannakakis' requires an acyclic query; "
                f"{query.name} is cyclic"
            )
        if semiring is not None:
            relations: dict[Atom, Relation] = {
                a: bind_atom_annotated(a, db, semiring)
                for a in dict.fromkeys(query.atoms)
            }
            return enumerate_answers(jt, relations, head, stats)
        bound = BoundQuery.bind(query, db)
        return enumerate_answers(jt, bound.relations, head, stats)
    if method == "decomposition":
        if hd is None:
            _, hd = hypertree_width(query.as_boolean())
        try:
            transformed = lemma46_transform(
                query, db, hd, stats, semiring=semiring
            )
        except AnnotationAssignmentError:
            return naive_annotated_eval(query, db, semiring, stats)
        return enumerate_answers(
            transformed.jt, transformed.relations, head, stats
        )
    raise ValueError(f"unknown evaluation method {method!r}")
