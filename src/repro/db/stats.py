"""Instrumentation for evaluation strategies.

The paper's tractability results are statements about *intermediate sizes*
(semijoins never grow relations; decomposition node relations are bounded
by ``r^k``), so every evaluation strategy threads an :class:`EvalStats`
object through its operations.  Experiments E15/E16 report these counters
alongside wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .relation import Relation


@dataclass
class EvalStats:
    """Counters recorded by one evaluation run."""

    joins: int = 0
    semijoins: int = 0
    projections: int = 0
    max_intermediate: int = 0
    total_tuples_produced: int = 0
    notes: dict[str, float] = field(default_factory=dict)

    def record(self, relation: Relation) -> Relation:
        """Account for a freshly produced relation and pass it through."""
        size = len(relation)
        self.total_tuples_produced += size
        if size > self.max_intermediate:
            self.max_intermediate = size
        return relation

    def as_row(self) -> dict[str, int]:
        return {
            "joins": self.joins,
            "semijoins": self.semijoins,
            "projections": self.projections,
            "max_intermediate": self.max_intermediate,
            "tuples_produced": self.total_tuples_produced,
        }
