"""Instrumentation and cardinality estimates for evaluation strategies.

The paper's tractability results are statements about *intermediate sizes*
(semijoins never grow relations; decomposition node relations are bounded
by ``r^k``), so every evaluation strategy threads an :class:`EvalStats`
object through its operations.  Experiments E15/E16 report these counters
alongside wall-clock time, and the engine's batch executor aggregates them
across requests with :meth:`EvalStats.merge`.

:class:`CardinalityEstimator` supplies the cheap textbook estimates
(relation sizes scaled by independence-assumption selectivities) that
:mod:`repro.engine.plan` uses to pick join orders and the join-tree root.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..core.atoms import Atom, Constant, Variable
from .relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (database imports relation)
    from .database import Database


@dataclass
class EvalStats:
    """Counters recorded by one evaluation run."""

    joins: int = 0
    semijoins: int = 0
    projections: int = 0
    max_intermediate: int = 0
    total_tuples_produced: int = 0
    wall_time: float = 0.0
    notes: dict[str, float] = field(default_factory=dict)

    def record(self, relation: Relation) -> Relation:
        """Account for a freshly produced relation and pass it through."""
        size = len(relation)
        self.total_tuples_produced += size
        if size > self.max_intermediate:
            self.max_intermediate = size
        return relation

    @contextmanager
    def timed(self) -> Iterator["EvalStats"]:
        """Context manager adding the enclosed wall-clock time to
        :attr:`wall_time` (used by the engine around each request)."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.wall_time += time.perf_counter() - started

    def merge(self, other: "EvalStats") -> "EvalStats":
        """Fold *other*'s counters into this object (and return it).

        Additive counters sum, :attr:`max_intermediate` takes the maximum
        (it is a high-water mark, not a volume), wall times add, and notes
        merge additively.  The batch executor uses this to aggregate
        per-query stats into one workload-level row.
        """
        self.joins += other.joins
        self.semijoins += other.semijoins
        self.projections += other.projections
        self.max_intermediate = max(self.max_intermediate, other.max_intermediate)
        self.total_tuples_produced += other.total_tuples_produced
        self.wall_time += other.wall_time
        for key, value in other.notes.items():
            self.notes[key] = self.notes.get(key, 0.0) + value
        return self

    def as_row(self) -> dict[str, int | float]:
        """Flat dict for bench/CI JSON artifacts.

        Phase breakdowns recorded in :attr:`notes` ride along as
        ``note:<name>`` keys — they used to be dropped here, so the
        per-phase numbers strategies record (e.g. the incremental
        layer's ``touched_rows``) never reached the artifacts.
        """
        row: dict[str, int | float] = {
            "joins": self.joins,
            "semijoins": self.semijoins,
            "projections": self.projections,
            "max_intermediate": self.max_intermediate,
            "tuples_produced": self.total_tuples_produced,
            "wall_time": round(self.wall_time, 6),
        }
        for name in sorted(self.notes):
            row[f"note:{name}"] = self.notes[name]
        return row


class CardinalityEstimator:
    """Cheap per-database cardinality estimates for physical planning.

    Uses the classic System-R independence assumptions: a bound atom's
    cardinality is its relation size scaled by ``1/distinct(column)`` per
    constant selection and per repeated-variable equality.  Distinct
    counts are memoised, so estimating a whole plan touches each needed
    column once.
    """

    def __init__(self, db: "Database | None"):
        self.db = db
        self._distinct: dict[tuple[str, int], int] = {}
        self._sizes: dict[str, int] = {}
        self._atom_memo: dict[Atom, float] = {}
        self._domain: int | None = None

    def _relation_size(self, predicate: str) -> int:
        """Memoised tuple count (``Database.rows`` copies the relation,
        so the planner must not call it per candidate atom)."""
        if predicate not in self._sizes:
            self._sizes[predicate] = (
                len(self.db.rows(predicate)) if self.db is not None else 0
            )
        return self._sizes[predicate]

    def distinct(self, predicate: str, column: int) -> int:
        """Number of distinct values in one column (≥ 1 for estimates)."""
        key = (predicate, column)
        if key not in self._distinct:
            rows = self.db.rows(predicate) if self.db is not None else ()
            self._distinct[key] = max(1, len({row[column] for row in rows}))
        return self._distinct[key]

    def atom_rows(self, atom: Atom) -> float:
        """Estimated row count of ``bind_atom(atom, db)``, memoised per
        atom (the greedy join-order search evaluates each candidate many
        times).

        Unknown predicates (or no database at all, as in ``explain``
        without facts) estimate to 1.0 so planning still produces a
        deterministic order.
        """
        if atom not in self._atom_memo:
            self._atom_memo[atom] = self._atom_rows_uncached(atom)
        return self._atom_memo[atom]

    def _atom_rows_uncached(self, atom: Atom) -> float:
        if self.db is None or not self.db.has_predicate(atom.predicate):
            return 1.0
        if self.db.arity(atom.predicate) != atom.arity:
            return 1.0
        estimate = float(self._relation_size(atom.predicate))
        first_position: dict[Variable, int] = {}
        for i, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                estimate /= self.distinct(atom.predicate, i)
            elif term in first_position:
                estimate /= max(
                    self.distinct(atom.predicate, i),
                    self.distinct(atom.predicate, first_position[term]),
                )
            else:
                first_position[term] = i
        return estimate

    def join_rows(self, left_rows: float, left_vars: frozenset[Variable],
                  right_rows: float, right_vars: frozenset[Variable],
                  domain: int) -> float:
        """Estimated size of a natural join given both sides' variable
        sets, assuming each shared variable cuts the cross product by the
        active-domain size."""
        shared = len(left_vars & right_vars)
        estimate = left_rows * right_rows
        for _ in range(shared):
            estimate /= max(1, domain)
        return estimate

    @property
    def domain_size(self) -> int:
        """Active-domain size, memoised (1 when no database is attached)."""
        if self._domain is None:
            self._domain = 1 if self.db is None else max(1, len(self.db.universe))
        return self._domain
