"""Database instances as sets of ground facts (paper §2.1).

The paper identifies a relational database with a logical theory of ground
atoms ``r(a1, ..., ak)``; :class:`Database` keeps both views available: a
fact store (``add_fact`` / ``facts()``) and a relation store
(``relation(name)``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from .._errors import SchemaError, UnknownRelationError
from ..core.atoms import Atom, Constant
from .relation import Relation, Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (incremental imports db)
    from ..incremental.delta import Delta


class Database:
    """A mutable database instance over an implicit schema.

    Relation schemas are fixed on first use (first ``add_fact`` or
    ``set_relation`` for a name determines the arity); attribute names are
    synthesised as ``$0, $1, ...`` since conjunctive-query evaluation binds
    columns positionally through atoms.
    """

    def __init__(self) -> None:
        self._relations: dict[str, set[tuple[Value, ...]]] = {}
        self._arities: dict[str, int] = {}
        self._weights: dict[str, dict[tuple[Value, ...], float]] = {}
        self._version = 0

    # -- construction -----------------------------------------------------
    @staticmethod
    def from_facts(facts: Iterable[tuple[str, tuple[Value, ...]]]) -> "Database":
        db = Database()
        for predicate, values in facts:
            db.add_fact(predicate, *values)
        return db

    @staticmethod
    def from_relations(relations: Mapping[str, Iterable[tuple]]) -> "Database":
        db = Database()
        for name, rows in relations.items():
            for row in rows:
                db.add_fact(name, *row)
        return db

    def add_fact(
        self, predicate: str, *values: Value, weight: float | None = None
    ) -> bool:
        """Assert the ground atom ``predicate(values...)``.

        Returns ``True`` iff the fact was not already present (set
        semantics: re-asserting is a no-op, though it still records a
        given *weight*).  *weight* is the fact's annotation under the
        weighted semirings — a cost for ``mincost``, a probability for
        ``prob``; unweighted facts default to 1.0.
        """
        arity = self._arities.setdefault(predicate, len(values))
        if arity != len(values):
            raise SchemaError(
                f"fact {predicate}{values!r} does not match arity {arity}"
            )
        rows = self._relations.setdefault(predicate, set())
        row = tuple(values)
        if weight is not None:
            self._weights.setdefault(predicate, {})[row] = float(weight)
        if row in rows:
            return False
        rows.add(row)
        self._version += 1
        return True

    def remove_fact(self, predicate: str, *values: Value) -> bool:
        """Retract the ground atom; ``True`` iff it was present."""
        rows = self._relations.get(predicate)
        if rows is None:
            return False
        row = tuple(values)
        if row not in rows:
            return False
        rows.remove(row)
        weights = self._weights.get(predicate)
        if weights is not None:
            weights.pop(row, None)
        self._version += 1
        return True

    # -- fact weights ------------------------------------------------------
    def set_weight(self, predicate: str, row: Iterable[Value], weight: float) -> None:
        """Attach a weight to one fact (the ``lift`` value of the
        weighted semirings).  The fact need not exist yet — workload
        generators may assign weights before or after loading."""
        self._weights.setdefault(predicate, {})[tuple(row)] = float(weight)

    def weight(
        self, predicate: str, row: tuple[Value, ...], default: float = 1.0
    ) -> float:
        """The weight of one fact (*default* when none was assigned)."""
        weights = self._weights.get(predicate)
        if weights is None:
            return default
        return weights.get(tuple(row), default)

    def has_weights(self) -> bool:
        """Whether any fact carries an explicit weight."""
        return any(self._weights.values())

    def declare(self, predicate: str, arity: int) -> None:
        """Fix a relation's schema without asserting any facts.

        Lets update streams reference a relation that starts empty (the
        implicit first-``add_fact`` schema fixing cannot express that).
        """
        known = self._arities.setdefault(predicate, arity)
        if known != arity:
            raise SchemaError(
                f"predicate {predicate!r} already declared with arity {known}"
            )
        self._relations.setdefault(predicate, set())

    def apply(self, delta: "Delta") -> "Delta":
        """Apply a signed :class:`repro.incremental.Delta` in place.

        Inserts add missing rows, deletes drop present ones; everything
        else is a no-op under set semantics.  Returns the *effective*
        delta — exactly the changes that altered the instance — which is
        what :class:`repro.incremental.LiveEngine` fans out to views.
        Inserting into an unknown predicate declares it (first-use arity,
        as with :meth:`add_fact`); deleting from one is a no-op.
        """
        # Imported here: the incremental layer sits above db and imports
        # this module at load time.
        from ..incremental.delta import Delta

        delta.check_schema(self)
        effective: dict[str, dict[tuple[Value, ...], int]] = {}
        for predicate in sorted(delta.changes):
            changed: dict[tuple[Value, ...], int] = {}
            for row, sign in delta.changes[predicate].items():
                if sign > 0:
                    if self.add_fact(predicate, *row):
                        changed[row] = 1
                elif self.remove_fact(predicate, *row):
                    changed[row] = -1
            if changed:
                effective[predicate] = changed
        return Delta(effective)

    @property
    def version(self) -> int:
        """Monotonic change counter, bumped on every effective mutation."""
        return self._version

    def add_atom(self, atom: Atom) -> None:
        """Assert a ground :class:`Atom` (all terms must be constants)."""
        values = []
        for t in atom.terms:
            if not isinstance(t, Constant):
                raise SchemaError(f"atom {atom} is not ground")
            values.append(t.value)
        self.add_fact(atom.predicate, *values)

    # -- views -------------------------------------------------------------
    def predicates(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def arity(self, predicate: str) -> int:
        if predicate not in self._arities:
            raise UnknownRelationError(f"unknown predicate {predicate!r}")
        return self._arities[predicate]

    def has_predicate(self, predicate: str) -> bool:
        return predicate in self._relations

    def rows(self, predicate: str) -> frozenset[tuple[Value, ...]]:
        """All tuples of the given relation (empty for unknown names)."""
        return frozenset(self._relations.get(predicate, ()))

    def relation(self, predicate: str) -> Relation:
        """The relation instance as a :class:`Relation` with positional
        attribute names ``$0..$k``."""
        if predicate not in self._relations:
            raise UnknownRelationError(f"unknown predicate {predicate!r}")
        arity = self._arities[predicate]
        attrs = tuple(f"${i}" for i in range(arity))
        return Relation(attrs, frozenset(self._relations[predicate]), predicate)

    def contains(self, predicate: str, *values: Value) -> bool:
        """``r(a1..ak) ∈ DB``."""
        return tuple(values) in self._relations.get(predicate, set())

    def facts(self) -> Iterator[tuple[str, tuple[Value, ...]]]:
        for predicate in sorted(self._relations):
            for row in sorted(self._relations[predicate], key=repr):
                yield predicate, row

    @property
    def universe(self) -> frozenset[Value]:
        """The active domain: every value occurring in some tuple."""
        result: set[Value] = set()
        for rows in self._relations.values():
            for row in rows:
                result.update(row)
        return frozenset(result)

    def size(self) -> int:
        """``‖DB‖`` measured as the total number of value occurrences."""
        return sum(
            len(row) for rows in self._relations.values() for row in rows
        )

    def tuple_count(self) -> int:
        return sum(len(rows) for rows in self._relations.values())

    def max_relation_size(self) -> int:
        """``r`` in Lemma 4.6: the maximum relation cardinality."""
        if not self._relations:
            return 0
        return max(len(rows) for rows in self._relations.values())

    def __len__(self) -> int:
        return self.tuple_count()

    def __str__(self) -> str:
        parts = [
            f"{name}/{self._arities[name]}: {len(rows)} tuples"
            for name, rows in sorted(self._relations.items())
        ]
        return "Database(" + "; ".join(parts) + ")"
