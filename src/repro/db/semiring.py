"""Commutative semirings for annotated query evaluation.

Gottlob–Leone–Scarcello's tractability result is not specific to set
semantics: the bounded-width join-tree evaluation of
:mod:`repro.db.yannakakis` generalises to any commutative semiring
``(K, ⊕, ⊗, 0, 1)`` once every base fact carries an annotation from
``K`` (Green–Karvounarakis–Tannen provenance semirings):

* **semijoin** only removes rows whose contribution is ``0`` — safe for
  every semiring;
* **natural join** multiplies annotations with ``⊗`` (its output rows
  are in bijection with matched pairs, so no ``⊕`` is needed);
* **projection** ``⊕``-aggregates the annotations of collapsed rows.

Set semantics is the Boolean semiring and stays a zero-overhead
specialisation: plain :class:`~repro.db.relation.Relation` instances
never consult this module.  Annotated evaluation rides the
:class:`~repro.db.annotated.AnnotatedRelation` subclass, whose operator
overrides call ``plus``/``times`` from the instances below.

Four semirings ship built in (:data:`COUNTING`, :data:`MINCOST`,
:data:`PROVENANCE`, :data:`PROB`), plus the ℤ ring (:data:`INT_RING`)
the incremental layer's support counting is an instance of.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database

Row = tuple
#: A base-fact identifier as it appears in witnesses and provenance
#: sets: the (predicate, database row) pair.
FactId = tuple[str, Row]


class Semiring:
    """A commutative semiring ``(K, plus, times, zero, one)``.

    Subclasses fix the carrier set by choosing the value representation;
    all values must be hashable and picklable (annotations ride the
    process-backend codec).  ``is_absorbing`` lets projection folds stop
    ``plus``-ing once an absorbing element is reached (e.g. probability
    1.0); the default never short-circuits.  ``lift`` maps one base fact
    to its annotation — the single point where database weights (see
    :meth:`repro.db.database.Database.set_weight`) enter evaluation.
    """

    #: Short stable identifier; the wire/cache key for this semiring.
    tag: str = "abstract"
    zero: Any = None
    one: Any = None

    def plus(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def times(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def is_absorbing(self, value: Any) -> bool:
        """Whether ``plus(value, x) == value`` for every ``x`` (early
        exit for projection folds)."""
        return False

    def lift(self, db: "Database", predicate: str, row: Row) -> Any:
        """The annotation of one base fact (default: ``one``)."""
        return self.one

    def __repr__(self) -> str:
        return f"<Semiring {self.tag}>"


class CountingSemiring(Semiring):
    """ℕ under (+, ×): bag semantics.  The annotation of an answer is
    its number of derivations (satisfying assignments of the dropped
    variables), which is what :meth:`repro.engine.Engine.count`
    reports."""

    tag = "count"
    zero = 0
    one = 1

    def plus(self, a: int, b: int) -> int:
        return a + b

    def times(self, a: int, b: int) -> int:
        return a * b


class IntegerRing(CountingSemiring):
    """ℤ under (+, ×): the counting semiring completed with subtraction.

    This is the algebra the incremental layer's support counting runs
    on — a deletion is an insertion with weight ``minus(zero, one)``,
    and :class:`repro.incremental.counting.SupportCounter` folds signed
    weights with exactly these operations.  Support counting *is* the
    ℕ instance, extended with inverses so deltas can retract.
    """

    tag = "int"

    def minus(self, a: int, b: int) -> int:
        return a - b

    def negate(self, a: int) -> int:
        return -a


class MinCostSemiring(Semiring):
    """The tropical semiring (min, +) over costs, with witness tracking.

    Values are ``(cost, witness)`` pairs: ``cost`` is the summed weight
    of the facts along the cheapest derivation, ``witness`` the sorted
    tuple of :data:`FactId`\\ s that derivation used.  ``plus`` keeps
    the cheaper derivation (ties broken deterministically by the
    witness rendering), ``times`` sums costs and unions witnesses.  A
    fact used by two atoms of one derivation is charged once per use
    (cost is per atom occurrence) but listed once in the witness.

    Fact costs come from :meth:`Database.weight` (default 1.0), so an
    unweighted database ranks answers by derivation length.
    """

    tag = "mincost"
    zero = (math.inf, ())
    one = (0.0, ())

    def plus(self, a: tuple, b: tuple) -> tuple:
        if a[0] != b[0]:
            return a if a[0] < b[0] else b
        # Equal costs: pick a canonical witness so evaluation order
        # (join order, shard count, backend) cannot change the answer.
        return a if (len(a[1]), repr(a[1])) <= (len(b[1]), repr(b[1])) else b

    def times(self, a: tuple, b: tuple) -> tuple:
        cost = a[0] + b[0]
        if not b[1]:
            return (cost, a[1])
        if not a[1]:
            return (cost, b[1])
        merged = set(a[1])
        merged.update(b[1])
        return (cost, tuple(sorted(merged, key=repr)))

    def lift(self, db: "Database", predicate: str, row: Row) -> tuple:
        return (db.weight(predicate, row), ((predicate, row),))


class ProvenanceSemiring(Semiring):
    """Why-provenance: each answer is annotated with the set of its
    witness sets — every minimal-by-construction combination of base
    facts that derives it.

    Values are frozensets of frozensets of :data:`FactId`.  ``plus`` is
    union (alternative derivations), ``times`` the pairwise union
    product (joint use).  Replaying any one witness set as a database
    re-derives the answer, which the consistency suite checks.
    """

    tag = "provenance"
    zero: frozenset = frozenset()
    one: frozenset = frozenset({frozenset()})

    def plus(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def times(self, a: frozenset, b: frozenset) -> frozenset:
        if a == self.one:
            return b
        if b == self.one:
            return a
        return frozenset(x | y for x in a for y in b)

    def lift(self, db: "Database", predicate: str, row: Row) -> frozenset:
        return frozenset({frozenset({(predicate, row)})})


class ProbSemiring(Semiring):
    """Probabilities under the independence assumption.

    ``times`` multiplies (a derivation holds iff all its independent
    facts hold), ``plus`` is noisy-or ``a ⊕ b = a + b − ab`` (an answer
    holds if any derivation does, derivations treated as independent
    events).  This is the standard tuple-independent approximation:
    noisy-or does not distribute over ×, so answers whose derivations
    share facts are approximated, exactly as lineage-free probabilistic
    engines do.  1.0 absorbs, which lets projection folds stop early.

    Fact probabilities come from :meth:`Database.weight` (default 1.0:
    an unweighted fact is certain).
    """

    tag = "prob"
    zero = 0.0
    one = 1.0

    def plus(self, a: float, b: float) -> float:
        return a + b - a * b

    def times(self, a: float, b: float) -> float:
        return a * b

    def is_absorbing(self, value: float) -> bool:
        return value >= 1.0

    def lift(self, db: "Database", predicate: str, row: Row) -> float:
        return db.weight(predicate, row)


#: The built-in instances, keyed by tag.  Tags are the wire format of a
#: semiring: the serve protocol's ``mode`` field, the process-backend
#: codec, and the plan cache's composite keys all transport tags and
#: resolve them here.
COUNTING = CountingSemiring()
INT_RING = IntegerRing()
MINCOST = MinCostSemiring()
PROVENANCE = ProvenanceSemiring()
PROB = ProbSemiring()

SEMIRINGS: dict[str, Semiring] = {
    s.tag: s for s in (COUNTING, INT_RING, MINCOST, PROVENANCE, PROB)
}


def get_semiring(tag: str) -> Semiring:
    """Resolve a semiring tag (raises ``ValueError`` on unknown tags)."""
    try:
        return SEMIRINGS[tag]
    except KeyError:
        raise ValueError(
            f"unknown semiring {tag!r}; expected one of "
            f"{sorted(SEMIRINGS)}"
        ) from None


def resolve_semiring(spec: "Semiring | str | None") -> Semiring | None:
    """Normalise a user-facing semiring argument.

    ``None`` (or the explicit ``"set"`` mode) means plain set
    semantics; a string resolves through the registry; an instance
    passes through.
    """
    if spec is None or spec == "set":
        return None
    if isinstance(spec, Semiring):
        return spec
    if isinstance(spec, str):
        return get_semiring(spec)
    raise TypeError(f"not a semiring or tag: {spec!r}")
