"""Annotated relations: the semiring-generalised operator layer.

An :class:`AnnotatedRelation` is a :class:`~repro.db.relation.Relation`
whose rows each carry a value from a commutative
:class:`~repro.db.semiring.Semiring`.  The relational operators are
overridden with their annotated semantics:

* ``semijoin`` filters rows and restricts the annotation map (pruned
  rows contribute ``zero`` — safe for every semiring);
* ``join`` multiplies annotations with ``times`` (natural-join output
  rows are in bijection with matched pairs, so no ``plus`` arises);
* ``project`` folds the annotations of collapsed rows with ``plus``,
  stopping early on absorbing values.

Because the overrides live on a subclass, every consumer that already
dispatches through ``Relation`` methods — the Yannakakis sweeps of
:mod:`repro.db.yannakakis`, the sharded kernel, the execution-backend
operator registry — evaluates annotated relations unchanged.  Plain
relations never touch this module: set semantics keeps its memoised key
sets, specialised inner loops and ``Relation.trusted`` fast paths.

The free-function entry points (:func:`bind_atom_annotated`,
:func:`annotated_probe_join`) mirror their plain counterparts in
:mod:`repro.db.binding` / :mod:`repro.db.relation` for the two call
sites that take explicit build/probe assignments instead of method
dispatch.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from .._errors import EvaluationError, SchemaError, UnknownRelationError
from ..core.atoms import Atom, Constant, Variable
from .database import Database
from .relation import Relation, Row, Value, probe_join
from .semiring import Semiring

_MISSING = object()


class AnnotationAssignmentError(EvaluationError):
    """Raised when a decomposition admits no once-per-atom annotation
    assignment (see :func:`assign_annotated_atoms`); callers fall back
    to :func:`naive_annotated_eval`."""


class AnnotatedRelation(Relation):
    """A relation whose rows carry semiring annotations.

    Instances are built with :meth:`make` (the annotated counterpart of
    ``Relation.trusted``); ``annotations`` maps every row to its value
    and ``semiring`` names the algebra the values live in.  Rows and
    annotation keys are kept in lockstep by every operator.
    """

    # ``Relation`` is a frozen dataclass; the two extra attributes are
    # installed the same way ``trusted`` installs the base three.
    semiring: Semiring
    annotations: dict[Row, object]

    @staticmethod
    def make(
        attributes: tuple[str, ...],
        rows: frozenset[Row],
        name: str,
        semiring: Semiring,
        annotations: dict[Row, object],
    ) -> "AnnotatedRelation":
        rel = object.__new__(AnnotatedRelation)
        object.__setattr__(rel, "attributes", attributes)
        object.__setattr__(rel, "rows", rows)
        object.__setattr__(rel, "name", name)
        object.__setattr__(rel, "semiring", semiring)
        object.__setattr__(rel, "annotations", annotations)
        return rel

    @staticmethod
    def lift(
        rel: Relation,
        semiring: Semiring,
        annotations: Mapping[Row, object] | None = None,
    ) -> "AnnotatedRelation":
        """Wrap a plain relation; missing annotations default to
        ``one`` (the neutral weight of an unannotated fact)."""
        if isinstance(rel, AnnotatedRelation):
            return rel
        if annotations is None:
            ann = dict.fromkeys(rel.rows, semiring.one)
        else:
            ann = {row: annotations.get(row, semiring.one) for row in rel.rows}
        return AnnotatedRelation.make(
            rel.attributes, rel.rows, rel.name, semiring, ann
        )

    @staticmethod
    def unit(semiring: Semiring, name: str = "unit") -> "AnnotatedRelation":
        """The 0-ary relation holding one row annotated ``one`` — the
        neutral start of a bag-materialisation join pipeline."""
        return AnnotatedRelation.make(
            (), frozenset({()}), name, semiring, {(): semiring.one}
        )

    def annotation(self, row: Row):
        """The annotation of one row (``zero`` for absent rows)."""
        return self.annotations.get(row, self.semiring.zero)

    def total(self):
        """``plus``-fold of every annotation (``zero`` when empty) —
        e.g. the total derivation count under :data:`COUNTING`."""
        plus = self.semiring.plus
        acc = _MISSING
        for value in self.annotations.values():
            acc = value if acc is _MISSING else plus(acc, value)
        return self.semiring.zero if acc is _MISSING else acc

    def strip(self) -> Relation:
        """The plain set-semantics relation underneath."""
        return Relation.trusted(self.attributes, self.rows, self.name)

    # -- relational algebra ------------------------------------------------
    def project(
        self, attributes: Sequence[str], name: str | None = None
    ) -> "AnnotatedRelation":
        if len(set(attributes)) != len(attributes):
            raise SchemaError(
                f"projection onto duplicate attributes {tuple(attributes)}"
            )
        positions = [self._position(a) for a in attributes]
        out_name = name or self.name
        if positions == list(range(self.arity)):
            return AnnotatedRelation.make(
                tuple(attributes), self.rows, out_name,
                self.semiring, self.annotations,
            )
        semiring = self.semiring
        plus = semiring.plus
        absorbing = semiring.is_absorbing
        ann = self.annotations
        out: dict[Row, object] = {}
        get = out.get
        for row in self.rows:
            key = tuple(row[p] for p in positions)
            prior = get(key, _MISSING)
            if prior is _MISSING:
                out[key] = ann[row]
            elif not absorbing(prior):
                out[key] = plus(prior, ann[row])
        return AnnotatedRelation.make(
            tuple(attributes), frozenset(out), out_name, semiring, out
        )

    def semijoin(self, other: Relation) -> "AnnotatedRelation":
        if not other.rows:
            return AnnotatedRelation.make(
                self.attributes, frozenset(), self.name, self.semiring, {}
            )
        if not self.rows:
            return self
        shared = tuple(a for a in self.attributes if a in other._index_of)
        if not shared:
            return self
        return self.semijoin_with_keys(shared, other.key_set(shared))

    def semijoin_with_keys(
        self, shared: tuple[str, ...], keys: frozenset
    ) -> "AnnotatedRelation":
        if not self.rows:
            return self
        if len(shared) == 1:
            i = self._index_of[shared[0]]
            rows = frozenset(row for row in self.rows if row[i] in keys)
        else:
            pos = [self._index_of[a] for a in shared]
            rows = frozenset(
                row for row in self.rows
                if tuple(row[p] for p in pos) in keys
            )
        if len(rows) == len(self.rows):
            return self
        ann = self.annotations
        return AnnotatedRelation.make(
            self.attributes, rows, self.name, self.semiring,
            {row: ann[row] for row in rows},
        )

    def join(
        self, other: Relation, name: str | None = None
    ) -> "AnnotatedRelation":
        shared = tuple(a for a in self.attributes if a in other._index_of)
        extra = [a for a in other.attributes if a not in self._index_of]
        out_attrs = self.attributes + tuple(extra)
        out_name = name or f"({self.name}⋈{other.name})"
        if not self.rows or not other.rows:
            return AnnotatedRelation.make(
                out_attrs, frozenset(), out_name, self.semiring, {}
            )
        extra_pos = [other._position(a) for a in extra]
        if len(self.rows) <= len(other.rows):
            build, probe, build_is_left = self, other, True
        else:
            build, probe, build_is_left = other, self, False
        return annotated_probe_join(
            build, probe, build_is_left, shared, extra_pos,
            out_attrs, out_name,
        )

    def select(
        self,
        predicate: Callable[[dict[str, Value]], bool],
        name: str | None = None,
    ) -> "AnnotatedRelation":
        attrs = self.attributes
        ann = self.annotations
        kept = {
            row: ann[row]
            for row in self.rows
            if predicate(dict(zip(attrs, row)))
        }
        return AnnotatedRelation.make(
            attrs, frozenset(kept), name or self.name, self.semiring, kept
        )

    def select_eq(self, attribute: str, value: Value) -> "AnnotatedRelation":
        i = self._position(attribute)
        ann = self.annotations
        kept = {row: ann[row] for row in self.rows if row[i] == value}
        return AnnotatedRelation.make(
            self.attributes, frozenset(kept), self.name, self.semiring, kept
        )

    def rename(
        self, mapping: Mapping[str, str], name: str | None = None
    ) -> "AnnotatedRelation":
        base = super().rename(mapping, name)  # validates the new schema
        return AnnotatedRelation.make(
            base.attributes, base.rows, base.name,
            self.semiring, self.annotations,
        )

    def union(self, other: Relation) -> "AnnotatedRelation":
        if self.attributes != other.attributes:
            raise SchemaError(
                f"union of incompatible schemas {self.attributes} and "
                f"{other.attributes}"
            )
        semiring = self.semiring
        plus = semiring.plus
        merged = dict(self.annotations)
        other_ann = getattr(other, "annotations", None)
        for row in other.rows:
            value = semiring.one if other_ann is None else other_ann[row]
            prior = merged.get(row, _MISSING)
            merged[row] = value if prior is _MISSING else plus(prior, value)
        return AnnotatedRelation.make(
            self.attributes, frozenset(merged), self.name, semiring, merged
        )

    def intersect(self, other: Relation) -> "AnnotatedRelation":
        if self.attributes != other.attributes:
            raise SchemaError(
                f"intersection of incompatible schemas {self.attributes} "
                f"and {other.attributes}"
            )
        rows = self.rows & other.rows
        times = self.semiring.times
        ann = self.annotations
        other_ann = getattr(other, "annotations", None)
        kept = {
            row: ann[row] if other_ann is None else times(ann[row], other_ann[row])
            for row in rows
        }
        return AnnotatedRelation.make(
            self.attributes, rows, self.name, self.semiring, kept
        )

    def difference(self, other: Relation) -> "AnnotatedRelation":
        if self.attributes != other.attributes:
            raise SchemaError(
                f"difference of incompatible schemas {self.attributes} and "
                f"{other.attributes}"
            )
        rows = self.rows - other.rows
        ann = self.annotations
        return AnnotatedRelation.make(
            self.attributes, rows, self.name, self.semiring,
            {row: ann[row] for row in rows},
        )

    def __str__(self) -> str:
        return f"{super().__str__()} [{self.semiring.tag}-annotated]"


def annotated_probe_join(
    build: Relation,
    probe: Relation,
    build_is_left: bool,
    shared: tuple[str, ...],
    extra_pos: Sequence[int],
    out_attrs: tuple[str, ...],
    name: str,
) -> AnnotatedRelation:
    """The annotated hash-join probe loop (either side may be plain;
    a plain side contributes ``one``, i.e. its annotations are neutral).
    Mirrors :func:`repro.db.relation.probe_join`, additionally
    ``times``-combining the matched pair's annotations.  Output rows are
    in bijection with matched pairs, so each is assigned exactly once.
    """
    build_ann = getattr(build, "annotations", None)
    probe_ann = getattr(probe, "annotations", None)
    semiring = getattr(build, "semiring", None) or getattr(
        probe, "semiring", None
    )
    if semiring is None:
        raise EvaluationError(
            "annotated_probe_join requires at least one annotated side"
        )
    build_sr = getattr(build, "semiring", semiring)
    probe_sr = getattr(probe, "semiring", semiring)
    if build_sr is not probe_sr:
        raise EvaluationError(
            f"cannot join {build_sr.tag}-annotated and "
            f"{probe_sr.tag}-annotated relations"
        )
    times = semiring.times
    table = build.key_index(shared)
    single = len(shared) == 1
    probe_pos = [probe._position(a) for a in shared]
    probe_single = probe_pos[0] if single else None

    out: dict[Row, object] = {}
    get = table.get
    for row in probe.rows:
        key = (
            row[probe_single]
            if single
            else tuple(row[p] for p in probe_pos)
        )
        matches = get(key)
        if not matches:
            continue
        pv = probe_ann[row] if probe_ann is not None else None
        for match in matches:
            left_row = match if build_is_left else row
            right_row = row if build_is_left else match
            out_row = left_row + tuple(right_row[p] for p in extra_pos)
            bv = build_ann[match] if build_ann is not None else None
            if bv is None:
                out[out_row] = pv
            elif pv is None:
                out[out_row] = bv
            else:
                out[out_row] = times(bv, pv)
    return AnnotatedRelation.make(
        out_attrs, frozenset(out), name, semiring, out
    )


def dispatch_probe_join(
    build: Relation,
    probe: Relation,
    build_is_left: bool,
    shared: tuple[str, ...],
    extra_pos: Sequence[int],
    out_attrs: tuple[str, ...],
    name: str,
) -> Relation:
    """Route a build/probe join to the plain or annotated loop.  The
    plain-plain case falls straight through to the untouched fast path;
    the ``isinstance`` checks are per join, not per row."""
    if isinstance(build, AnnotatedRelation) or isinstance(
        probe, AnnotatedRelation
    ):
        return annotated_probe_join(
            build, probe, build_is_left, shared, extra_pos, out_attrs, name
        )
    return probe_join(
        build, probe, build_is_left, shared, extra_pos, out_attrs, name
    )


def join_dispatch(
    left: Relation, right: Relation, name: str | None = None
) -> Relation:
    """``left.join(right)`` with symmetric annotated dispatch.

    ``Relation.join`` dispatches on its receiver only, so a *plain* left
    joined with an *annotated* right would silently drop the right side's
    annotations.  The enumerate sweeps join reduced node relations (often
    plain) against partial results (annotated once any carrier atom sits
    in the subtree), so they route through here.  Plain × plain falls
    straight to the untouched fast path after one ``isinstance`` check
    per join call.
    """
    if isinstance(right, AnnotatedRelation) and not isinstance(
        left, AnnotatedRelation
    ):
        shared = tuple(a for a in left.attributes if a in right._index_of)
        extra = [a for a in right.attributes if a not in left._index_of]
        out_attrs = left.attributes + tuple(extra)
        out_name = name or f"({left.name}⋈{right.name})"
        if not left.rows or not right.rows:
            return AnnotatedRelation.make(
                out_attrs, frozenset(), out_name, right.semiring, {}
            )
        extra_pos = [right._position(a) for a in extra]
        if len(left.rows) <= len(right.rows):
            build, probe, build_is_left = left, right, True
        else:
            build, probe, build_is_left = right, left, False
        return annotated_probe_join(
            build, probe, build_is_left, shared, extra_pos,
            out_attrs, out_name,
        )
    return left.join(right, name)


def assign_annotated_atoms(
    bags: Sequence[tuple[Sequence[Atom], frozenset]],
    query_atoms: Sequence[Atom],
) -> dict[Atom, int] | None:
    """Pick, for every distinct query atom, the one decomposition node
    that introduces its annotation.

    A hypertree decomposition may mention one atom in several λ sets;
    multiplying its annotation once per mention would over-count under
    non-idempotent ``times`` (ℕ, costs, probabilities).  Each atom is
    therefore *assigned* to the first node that both binds it and covers
    all its variables with χ (so none of the atom's columns are folded
    away before the join-tree's own variable elimination); every other
    mention joins unannotated, contributing only its filtering power.

    *bags* lists, per node, the atoms bound there and the node's χ
    variable set.  Returns ``atom -> node index``, or ``None`` when some
    query atom has no eligible node — the caller then falls back to
    annotated naive evaluation, which is always correct.
    """
    assigned: dict[Atom, int] = {}
    for i, (atoms, chi) in enumerate(bags):
        for atom in sorted(atoms, key=str):
            if atom not in assigned and atom.variables <= chi:
                assigned[atom] = i
    if set(query_atoms) - assigned.keys():
        return None
    return assigned


def naive_annotated_eval(query, db: Database, semiring: Semiring, stats=None):
    """Annotated evaluation by one full join — the always-correct
    fallback when a decomposition admits no once-per-atom annotation
    assignment.  Joins every distinct atom's annotated binding
    (smallest first) and ``plus``-projects onto the head."""
    head = tuple(
        dict.fromkeys(
            t.name for t in query.head_terms if isinstance(t, Variable)
        )
    )
    atoms = list(dict.fromkeys(query.atoms))
    bindings = sorted(
        (bind_atom_annotated(a, db, semiring) for a in atoms), key=len
    )
    rel = AnnotatedRelation.unit(semiring, query.name)
    for part in bindings:
        rel = rel.join(part)
        if stats is not None:
            stats.joins += 1
            stats.record(rel)
    answer = rel.project(list(head), name="ans")
    if stats is not None:
        stats.projections += 1
        stats.record(answer)
    return answer


def merge_annotated(
    pieces: Sequence[Relation],
    attributes: tuple[str, ...],
    name: str,
) -> AnnotatedRelation:
    """``plus``-merge shard pieces into one annotated relation — the
    gather point of the sharded kernel.  Aligned shards partition their
    rows, so collisions normally cannot happen; when they do (broadcast
    results, re-sharded unions) the duplicate row's values are folded
    with ``plus``.  Plain pieces contribute ``one`` per row.

    Each per-shard map merges in one pass: collisions are found with a
    C-speed key-set intersection and only those few rows take the
    Python-level ``plus`` detour — the common disjoint-shard case is a
    plain bulk ``dict.update`` instead of a per-row get/store loop
    (profiled hotspot under ``semiring=count`` with 8 shards)."""
    semiring = None
    for piece in pieces:
        semiring = getattr(piece, "semiring", None)
        if semiring is not None:
            break
    if semiring is None:
        raise EvaluationError("merge_annotated requires an annotated piece")
    plus = semiring.plus
    one = semiring.one
    merged: dict[Row, object] = {}
    for piece in pieces:
        ann = getattr(piece, "annotations", None)
        if ann is None:
            ann = dict.fromkeys(piece.rows, one)
        if not merged:
            merged.update(ann)
            continue
        collisions = merged.keys() & ann.keys()
        if not collisions:
            merged.update(ann)
        else:
            saved = [(row, merged[row]) for row in collisions]
            merged.update(ann)
            for row, prior in saved:
                merged[row] = plus(prior, merged[row])
    return AnnotatedRelation.make(
        attributes, frozenset(merged), name, semiring, merged
    )


def bind_atom_annotated(
    atom: Atom, db: Database, semiring: Semiring
) -> AnnotatedRelation:
    """The annotated counterpart of :func:`repro.db.binding.bind_atom`.

    The bound-row → base-row map is injective (constants and repeated
    variables are filtered; the surviving columns determine the full
    row), so each bound row's annotation is exactly the ``lift`` of its
    one base fact — no ``plus`` arises during binding.
    """
    if not db.has_predicate(atom.predicate):
        raise UnknownRelationError(
            f"query atom {atom} references unknown relation "
            f"{atom.predicate!r}"
        )
    if db.arity(atom.predicate) != atom.arity:
        raise EvaluationError(
            f"atom {atom} has arity {atom.arity} but relation "
            f"{atom.predicate!r} has arity {db.arity(atom.predicate)}"
        )
    first_position: dict[Variable, int] = {}
    order: list[Variable] = []
    for i, term in enumerate(atom.terms):
        if isinstance(term, Variable) and term not in first_position:
            first_position[term] = i
            order.append(term)

    lift = semiring.lift
    predicate = atom.predicate
    annotations: dict[Row, object] = {}
    for row in db.rows(predicate):
        consistent = True
        for i, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                if row[i] != term.value:
                    consistent = False
                    break
            elif row[i] != row[first_position[term]]:
                consistent = False
                break
        if consistent:
            bound = tuple(row[first_position[v]] for v in order)
            annotations[bound] = lift(db, predicate, row)
    return AnnotatedRelation.make(
        tuple(v.name for v in order),
        frozenset(annotations),
        str(atom),
        semiring,
        annotations,
    )
