"""Baseline evaluation strategies (the "NP-complete in general" side).

Two baselines bracket the decomposition-guided evaluator of
:mod:`repro.db.evaluate` in experiments E15/E16:

* :func:`naive_join_eval` — materialise the join of all body atoms
  left-to-right.  On cyclic queries the intermediates can blow up
  exponentially in the query size (``O(n^{|atoms|})`` in database size),
  which is exactly the behaviour the paper's decompositions avoid.
* :func:`backtracking_eval` — the CSP-style search over substitutions
  (depth-first over variables, checking each atom as soon as bound).
  Polynomial space, exponential time in the worst case.
"""

from __future__ import annotations

from typing import Iterator

from ..core.atoms import Atom, Variable
from ..core.query import ConjunctiveQuery
from .binding import BoundQuery
from .database import Database
from .relation import Relation, Value
from .stats import EvalStats


def naive_join_eval(
    query: ConjunctiveQuery,
    db: Database,
    stats: EvalStats | None = None,
) -> Relation:
    """Left-deep natural join of all bound atoms, projected onto the head.

    Returns the answer relation; for a Boolean query the result has an
    empty schema and is non-empty iff the query is true.
    """
    stats = stats if stats is not None else EvalStats()
    bound = BoundQuery.bind(query, db)
    atoms = list(query.atoms)
    if not atoms:
        return Relation((), frozenset({()}), "ans")
    current = stats.record(bound.relations[atoms[0]])
    for atom in atoms[1:]:
        current = current.join(bound.relations[atom])
        stats.joins += 1
        stats.record(current)
    answer = current.project(bound.head_attributes(), name="ans")
    stats.projections += 1
    return stats.record(answer)


def naive_boolean_eval(
    query: ConjunctiveQuery, db: Database, stats: EvalStats | None = None
) -> bool:
    """Boolean version of :func:`naive_join_eval`."""
    return bool(naive_join_eval(query.as_boolean(), db, stats))


def _substitutions(
    query: ConjunctiveQuery, db: Database, stats: EvalStats
) -> Iterator[dict[Variable, Value]]:
    """Depth-first enumeration of satisfying substitutions θ (§2.1).

    Atoms are ordered greedily: at each step pick the atom sharing the
    most variables with those already bound (a lightweight connectivity
    heuristic; with none shared, the smallest relation first).
    """
    bound = BoundQuery.bind(query, db)
    remaining = list(query.atoms)
    order: list[Atom] = []
    seen_vars: set[Variable] = set()
    while remaining:
        remaining.sort(
            key=lambda a: (
                -len(a.variables & seen_vars),
                len(bound.relations[a]),
            )
        )
        chosen = remaining.pop(0)
        order.append(chosen)
        seen_vars.update(chosen.variables)

    def extend(
        index: int, assignment: dict[Variable, Value]
    ) -> Iterator[dict[Variable, Value]]:
        if index == len(order):
            yield dict(assignment)
            return
        atom = order[index]
        rel = bound.relations[atom]
        attr_vars = [Variable(a) for a in rel.attributes]
        for row in rel.rows:
            stats.total_tuples_produced += 1
            conflict = False
            added: list[Variable] = []
            for var, value in zip(attr_vars, row):
                if var in assignment:
                    if assignment[var] != value:
                        conflict = True
                        break
                else:
                    assignment[var] = value
                    added.append(var)
            if not conflict:
                yield from extend(index + 1, assignment)
            for var in added:
                del assignment[var]

    yield from extend(0, {})


def backtracking_eval(
    query: ConjunctiveQuery, db: Database, stats: EvalStats | None = None
) -> bool:
    """Boolean evaluation by backtracking search over substitutions."""
    stats = stats if stats is not None else EvalStats()
    for _ in _substitutions(query, db, stats):
        return True
    return False


def backtracking_answers(
    query: ConjunctiveQuery,
    db: Database,
    stats: EvalStats | None = None,
    limit: int | None = None,
) -> Relation:
    """All answers (projections of satisfying substitutions onto the head)
    by backtracking; *limit* caps enumeration for benchmarks."""
    stats = stats if stats is not None else EvalStats()
    head = tuple(
        dict.fromkeys(
            t.name for t in query.head_terms if isinstance(t, Variable)
        )
    )
    head_vars = [Variable(a) for a in head]
    rows: set[tuple] = set()
    for theta in _substitutions(query, db, stats):
        rows.add(tuple(theta[v] for v in head_vars))
        if limit is not None and len(rows) >= limit:
            break
    return Relation(head, frozenset(rows), "ans")
