"""Hash-partitioned relations: the sharded half of the parallel kernel.

A :class:`ShardedRelation` splits a relation's rows into ``n`` shards by
hashing one *shard key* attribute.  Because a natural join or semijoin on
a shared attribute only matches rows agreeing on that attribute, two
relations sharded on the same key admit *partition-wise* operation: shard
``i`` interacts with shard ``i`` alone — no cross-shard communication,
which is what makes the evaluation side of Yannakakis' algorithm
embarrassingly parallel.  When the partner is not co-sharded the
operations fall back to *broadcast* mode (every shard against the
partner's one memoised key set / hash table), which is still correct and
still fans shard-wise over the execution backend.

Two properties of the partitioning matter beyond speed:

* **Determinism** — rows are placed with :func:`stable_hash`, not the
  builtin ``hash``: per-process ``PYTHONHASHSEED`` randomisation makes
  string hashes disagree between worker processes, which would silently
  break partition-wise joins under the process backend.  The stable hash
  agrees wherever builtin equality does (``2 == 2.0 == True`` land
  together), so equal join keys always meet in the same shard.
* **Skew** — hash partitioning degrades when one join-key value
  dominates.  :meth:`ShardedRelation.shard` detects heavy hitters
  (frequency above ``rows / n_shards * skew_factor``), spreads their
  rows round-robin across all shards for balance, and records them in
  :attr:`ShardedRelation.heavy`.  A relation with spread keys is never
  treated as partition-wise aligned: its operations run in broadcast
  mode (the probe side checks the partner's *full* memoised structure),
  which is the correctness fix-up that makes the spread sound.

Operations take an optional ``backend`` (an
:class:`~repro.db.backend.ExecutionContext`); without one they run
inline.  Under a :class:`~repro.db.backend.ProcessBackend` the shard
pieces are :class:`~repro.db.backend.RemoteShard` handles resident in
worker processes — operators route to the owning worker, results stay
resident, and rows only return to the parent on
:meth:`ShardedRelation.to_relation`.  Semantics are identical to the
sequential :class:`Relation` operations in every mode, which the
property suite in ``tests/db/test_parallel_equivalence.py`` enforces
backend by backend and shard-count by shard-count.
"""

from __future__ import annotations

import zlib
from typing import Iterator, Sequence

from .._errors import SchemaError
from ..obs import get_registry
from .annotated import AnnotatedRelation
from .backend import (
    SEQUENTIAL,
    ExecutionContext,
    RemoteShard,
    ThreadBackend,
)
from .columnar import ColumnarRelation, partition_columnar
from .relation import Relation, Row, Value


def as_context(backend=None, pool=None) -> ExecutionContext:
    """Normalise the two ways callers hand us parallelism.

    *backend* wins; a bare ``concurrent.futures`` executor (*pool*, the
    pre-backend API kept for compatibility) is wrapped in a non-owning
    :class:`~repro.db.backend.ThreadBackend`; neither means inline.
    """
    if backend is not None:
        return backend
    if pool is not None:
        return ThreadBackend(pool=pool)
    return SEQUENTIAL


def _result_context(
    ctx: ExecutionContext, shards
) -> ExecutionContext | None:
    """The context a result relation must pin: the executing backend
    when any piece is worker-resident, nothing for all-local pieces."""
    return ctx if any(isinstance(s, RemoteShard) for s in shards) else None


def stable_hash(value: Value) -> int:
    """A hash that agrees across processes wherever ``==`` does.

    Builtin ``hash`` randomises ``str``/``bytes`` per process (via
    ``PYTHONHASHSEED``), so it cannot place rows when shards live in
    different workers.  Strings and bytes hash through ``zlib.crc32`` of
    their canonical byte encoding; tuples combine their elements'
    stable hashes; every other builtin scalar (``int``, ``float``,
    ``bool``, ``None``, …) keeps its builtin hash, which CPython defines
    deterministically and consistently across numeric types
    (``hash(2) == hash(2.0) == hash(True)``), preserving the invariant
    that equal values land in equal shards.
    """
    kind = type(value)
    if kind is str:
        return zlib.crc32(value.encode("utf-8"))
    if kind is bytes:
        return zlib.crc32(value)
    if kind is tuple:
        acc = 0x345678
        for item in value:
            acc = ((acc * 1000003) ^ stable_hash(item)) & 0xFFFFFFFF
        return acc
    return hash(value)


def shard_of(value: Value, n_shards: int) -> int:
    """The shard owning *value* — stable across worker processes."""
    return stable_hash(value) % n_shards


#: A key value is a heavy hitter when its row count exceeds
#: ``rows / n_shards * DEFAULT_SKEW_FACTOR`` — i.e. its rows alone would
#: make some shard more than ``DEFAULT_SKEW_FACTOR`` times the average.
DEFAULT_SKEW_FACTOR = 2.0


class ShardedRelation:
    """An immutable relation hash-partitioned on one key attribute.

    Attributes
    ----------
    attributes:
        The schema, shared by every shard.
    key:
        The attribute whose stable hash assigns each row to a shard.
    shards:
        ``n`` disjoint pieces — plain :class:`Relation` objects, or
        :class:`~repro.db.backend.RemoteShard` handles when the pieces
        live in process-backend workers.  Row ``t`` lives in shard
        ``stable_hash(t[key]) % n`` unless ``t[key]`` is a recorded
        heavy hitter, whose rows are spread round-robin.
    heavy:
        The heavy-hitter key values whose rows were spread (empty for a
        clean hash partition).  Non-empty disables partition-wise
        alignment — operations fall back to broadcast mode.
    context:
        The :class:`~repro.db.backend.ExecutionContext` owning any
        remote pieces (``None`` for purely local shards).
    """

    __slots__ = (
        "attributes", "key", "shards", "name", "heavy", "context",
        "_key_sets", "_merged",
    )

    def __init__(
        self,
        attributes: tuple[str, ...],
        key: str,
        shards: tuple,
        name: str = "r",
        heavy: frozenset = frozenset(),
        context: ExecutionContext | None = None,
    ):
        if key not in attributes:
            raise SchemaError(
                f"shard key {key!r} not in schema {attributes} of "
                f"sharded relation {name!r}"
            )
        if not shards:
            raise SchemaError(f"sharded relation {name!r} needs >= 1 shard")
        self.attributes = attributes
        self.key = key
        self.shards = shards
        self.name = name
        self.heavy = heavy
        self.context = context
        self._key_sets: dict[tuple[str, ...], frozenset] = {}
        self._merged: Relation | None = None

    # -- constructors -----------------------------------------------------
    @staticmethod
    def shard(
        relation: Relation,
        key: str,
        n_shards: int,
        backend: ExecutionContext | None = None,
        skew_factor: float = DEFAULT_SKEW_FACTOR,
    ) -> "ShardedRelation":
        """Partition *relation* on *key* into *n_shards* pieces.

        Placement uses :func:`stable_hash` so every process agrees.  If
        any shard overflows ``rows / n_shards * skew_factor`` rows, the
        key values responsible (the heavy hitters) are spread round-robin
        across all shards and recorded in :attr:`heavy` — the skew guard.
        The detection is two-phase so the common unskewed case pays one
        ``max`` over bucket sizes, not a value-frequency count.

        With a process *backend* the freshly cut shards are scattered to
        their owner workers immediately and the returned relation holds
        :class:`~repro.db.backend.RemoteShard` handles.
        """
        if n_shards < 1:
            raise SchemaError(f"n_shards must be >= 1, got {n_shards}")
        i = relation._position(key)
        if n_shards == 1:
            # One shard is the relation itself — keeps its memoised
            # hash structures alive.
            return ShardedRelation(
                relation.attributes, key, (relation,), relation.name
            )
        if isinstance(relation, ColumnarRelation):
            # Columnar partition kernel: selection vectors per shard,
            # dictionary keys hashed once per pool entry, buffers
            # carved without materialising row tuples.
            pieces, heavy = partition_columnar(
                relation, i, n_shards, stable_hash, skew_factor
            )
            if heavy:
                registry = get_registry()
                registry.counter("shard.skew_guard_activations").inc()
                registry.counter("shard.heavy_hitters").inc(len(heavy))
            if backend is not None and backend.kind == "process":
                pieces = tuple(
                    backend.map_shards(
                        "identity",
                        [(s,) for s in pieces],
                        keep=True,
                        out_attributes=relation.attributes,
                        out_name=relation.name,
                    )
                )
                return ShardedRelation(
                    relation.attributes, key, pieces, relation.name,
                    heavy=heavy, context=backend,
                )
            return ShardedRelation(
                relation.attributes, key, pieces, relation.name, heavy=heavy
            )
        buckets: list[list[Row]] = [[] for _ in range(n_shards)]
        appends = [b.append for b in buckets]
        _hash = stable_hash
        for row in relation.rows:
            appends[_hash(row[i]) % n_shards](row)
        heavy: frozenset = frozenset()
        threshold = skew_factor * len(relation.rows) / n_shards
        if relation.rows and max(len(b) for b in buckets) > threshold:
            heavy = _heavy_hitters(buckets, i, threshold)
            if heavy:
                get_registry().counter(
                    "shard.skew_guard_activations"
                ).inc()
                get_registry().counter("shard.heavy_hitters").inc(
                    len(heavy)
                )
                buckets = _spread_heavy(
                    relation.rows, i, heavy, n_shards
                )
        annotations = getattr(relation, "annotations", None)
        if annotations is not None:
            # Annotated input: each piece carves out its rows' slice of
            # the annotation map (rows partition, so slices are disjoint
            # and gather's plus-merge is a plain dict union).
            shards: tuple = tuple(
                AnnotatedRelation.make(
                    relation.attributes,
                    frozenset(b),
                    relation.name,
                    relation.semiring,
                    {row: annotations[row] for row in b},
                )
                for b in buckets
            )
        else:
            shards = tuple(
                Relation.trusted(
                    relation.attributes, frozenset(b), relation.name
                )
                for b in buckets
            )
        if backend is not None and backend.kind == "process":
            shards = tuple(
                backend.map_shards(
                    "identity",
                    [(s,) for s in shards],
                    keep=True,
                    out_attributes=relation.attributes,
                    out_name=relation.name,
                )
            )
            return ShardedRelation(
                relation.attributes, key, shards, relation.name,
                heavy=heavy, context=backend,
            )
        return ShardedRelation(
            relation.attributes, key, shards, relation.name, heavy=heavy
        )

    # -- views ------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def __bool__(self) -> bool:
        return any(bool(s) for s in self.shards)

    def __iter__(self) -> Iterator[Row]:
        if any(isinstance(s, RemoteShard) for s in self.shards):
            yield from self.to_relation().rows
            return
        for shard in self.shards:
            yield from shard.rows

    @property
    def rows(self) -> frozenset[Row]:
        return self.to_relation().rows

    def _ctx(self, backend=None, pool=None) -> ExecutionContext:
        """The context operations must run on: remote pieces pin their
        owning backend; otherwise the caller's choice (or inline)."""
        if self.context is not None:
            return self.context
        return as_context(backend, pool)

    def to_relation(self) -> Relation:
        """Coalesce the shards back into one plain relation (memoised).
        For worker-resident shards this is the *gather* point — the one
        place rows travel back to the parent."""
        if self._merged is None:
            if len(self.shards) == 1 and isinstance(self.shards[0], Relation):
                self._merged = self.shards[0]
            else:
                self._merged = self._ctx().gather(
                    self.shards, self.attributes, self.name
                )
        return self._merged

    def key_set(self, attributes: tuple[str, ...]) -> frozenset:
        """Union of the shards' memoised key sets over *attributes*.
        Computed worker-side for resident shards (only the key values
        cross the process boundary, never the rows)."""
        cached = self._key_sets.get(attributes)
        if cached is None:
            if any(isinstance(s, RemoteShard) for s in self.shards):
                sets = self._ctx().map_shards(
                    "key_set", [(s, attributes) for s in self.shards]
                )
            else:
                sets = [s.key_set(attributes) for s in self.shards]
            cached = frozenset().union(*sets)
            self._key_sets[attributes] = cached
        return cached

    def _aligned_with(
        self, other: "ShardedRelation | Relation", shared: tuple[str, ...]
    ) -> bool:
        """Partition-wise operation is sound iff both sides are sharded
        on the same number of shards by the same *shared* key — and
        neither side spread heavy-hitter rows off their hash shard."""
        return (
            isinstance(other, ShardedRelation)
            and other.key == self.key
            and other.n_shards == self.n_shards
            and self.key in shared
            and not self.heavy
            and not other.heavy
        )

    def _rebuild(
        self,
        shards: list,
        ctx: ExecutionContext,
        name: str | None = None,
    ) -> "ShardedRelation":
        if all(new is old for new, old in zip(shards, self.shards)):
            return self
        return ShardedRelation(
            self.attributes, self.key, tuple(shards), name or self.name,
            heavy=self.heavy, context=_result_context(ctx, shards),
        )

    # -- relational algebra ----------------------------------------------
    def semijoin(
        self,
        other: "ShardedRelation | Relation",
        backend: ExecutionContext | None = None,
        pool=None,
    ) -> "ShardedRelation":
        """⋉ shard-wise: pairwise against an aligned partner, otherwise
        every shard against the partner's one memoised key set (scattered
        to the workers at most once per partner)."""
        ctx = self._ctx(backend, pool)
        keep = ctx.kind == "process"
        if not other:
            empty = Relation.trusted(self.attributes, frozenset(), self.name)
            return ShardedRelation(
                self.attributes,
                self.key,
                tuple(empty for _ in self.shards),
                self.name,
            )
        shared = tuple(a for a in self.attributes if a in other.attributes)
        if not shared:
            return self
        if self._aligned_with(other, shared):
            pairs = list(zip(self.shards, other.shards))
            shards = ctx.map_shards(
                "semijoin_pair", pairs, keep=keep,
                out_attributes=self.attributes, out_name=self.name,
            )
            return self._rebuild(shards, ctx)
        if not isinstance(other, ShardedRelation) and (
            ctx.prefers_relation_scatter(other)
        ):
            # Shm-eligible columnar partner: ship the relation itself
            # (zero-copy segment) and let each worker build — and
            # memoise — the key set locally, instead of pickling the
            # key set through the queues.
            ref = ctx.scatter(other)
            tasks = [(shard, ref) for shard in self.shards]
            shards = ctx.map_shards(
                "semijoin_pair", tasks, keep=keep,
                out_attributes=self.attributes, out_name=self.name,
            )
            return self._rebuild(shards, ctx)
        keys = ctx.scatter(other.key_set(shared))
        tasks = [(shard, shared, keys) for shard in self.shards]
        shards = ctx.map_shards(
            "semijoin_keys", tasks, keep=keep,
            out_attributes=self.attributes, out_name=self.name,
        )
        return self._rebuild(shards, ctx)

    def join(
        self,
        other: "ShardedRelation | Relation",
        name: str | None = None,
        backend: ExecutionContext | None = None,
        pool=None,
    ) -> "ShardedRelation":
        """⋈ shard-wise; the result stays sharded on this side's key
        (every output row extends one of this side's rows, so the key
        column — and with it the partition — is preserved)."""
        ctx = self._ctx(backend, pool)
        keep = ctx.kind == "process"
        shared = tuple(a for a in self.attributes if a in other.attributes)
        here = set(self.attributes)
        extra = tuple(a for a in other.attributes if a not in here)
        out_attrs = self.attributes + extra
        out_name = name or f"({self.name}⋈{other.name})"
        if self._aligned_with(other, shared):
            pairs = [
                (left, right, name)
                for left, right in zip(self.shards, other.shards)
            ]
            shards = ctx.map_shards(
                "join_pair", pairs, keep=keep,
                out_attributes=out_attrs, out_name=out_name,
            )
        else:
            partner = (
                other.to_relation()
                if isinstance(other, ShardedRelation)
                else other
            )
            # Broadcast: every shard probes the partner's one memoised
            # hash table (building per-shard tables would redo the same
            # build n times and probe the full partner per shard).  The
            # partner ships to each worker at most once via scatter.
            extra_pos = tuple(partner._position(a) for a in extra)
            ref = ctx.scatter(partner)
            tasks = [
                (ref, shard, shared, extra_pos, out_attrs, out_name)
                for shard in self.shards
            ]
            shards = ctx.map_shards(
                "probe_join", tasks, keep=keep,
                out_attributes=out_attrs, out_name=out_name,
            )
        return ShardedRelation(
            out_attrs, self.key, tuple(shards), out_name,
            heavy=self.heavy, context=_result_context(ctx, shards),
        )

    def project(
        self,
        attributes: Sequence[str],
        name: str | None = None,
        backend: ExecutionContext | None = None,
        pool=None,
    ) -> "ShardedRelation | Relation":
        """π shard-wise; the result stays sharded when the shard key
        survives (rows equal after projection then agree on the key, so
        they were in the same shard and shard-local dedup is global).
        Dropping the key — or projecting a relation with spread heavy
        hitters, whose equal-after-projection rows may straddle shards —
        still projects shard-wise, with the final union of the (smaller)
        projected shards performing the cross-shard dedup."""
        ctx = self._ctx(backend, pool)
        attrs = tuple(attributes)
        out_name = name or self.name
        tasks = [(shard, attrs, name) for shard in self.shards]
        if self.key in attrs and not self.heavy:
            keep = ctx.kind == "process"
            shards = ctx.map_shards(
                "project", tasks, keep=keep,
                out_attributes=attrs, out_name=out_name,
            )
            return ShardedRelation(
                attrs, self.key, tuple(shards), out_name,
                context=_result_context(ctx, shards),
            )
        projected = ctx.map_shards("project", tasks)
        return ctx.gather(projected, attrs, out_name)

    def __str__(self) -> str:
        sizes = ", ".join(str(len(s)) for s in self.shards)
        spread = f" heavy={len(self.heavy)}" if self.heavy else ""
        return (
            f"{self.name}({', '.join(self.attributes)}) "
            f"[{len(self)} rows @ {self.key}: {sizes}{spread}]"
        )


def _heavy_hitters(
    buckets: list[list[Row]], key_pos: int, threshold: float
) -> frozenset:
    """Key values whose row count alone exceeds *threshold*, counted
    only inside oversized buckets (a value's rows all share a bucket
    before spreading, so no heavy hitter can hide in a small one)."""
    heavy: set[Value] = set()
    for bucket in buckets:
        if len(bucket) <= threshold:
            continue
        counts: dict[Value, int] = {}
        for row in bucket:
            value = row[key_pos]
            counts[value] = counts.get(value, 0) + 1
        heavy.update(v for v, c in counts.items() if c > threshold)
    return frozenset(heavy)


def _spread_heavy(
    rows: frozenset[Row],
    key_pos: int,
    heavy: frozenset,
    n_shards: int,
) -> list[list[Row]]:
    """Re-bucket with heavy-hitter rows dealt round-robin for balance."""
    buckets: list[list[Row]] = [[] for _ in range(n_shards)]
    appends = [b.append for b in buckets]
    _hash = stable_hash
    spread = 0
    for row in rows:
        value = row[key_pos]
        if value in heavy:
            appends[spread % n_shards](row)
            spread += 1
        else:
            appends[_hash(value) % n_shards](row)
    return buckets
