"""Hash-partitioned relations: the sharded half of the parallel kernel.

A :class:`ShardedRelation` splits a relation's rows into ``n`` shards by
hashing one *shard key* attribute.  Because a natural join or semijoin on
a shared attribute only matches rows agreeing on that attribute, two
relations sharded on the same key admit *partition-wise* operation: shard
``i`` interacts with shard ``i`` alone — no cross-shard communication,
which is what makes the evaluation side of Yannakakis' algorithm
embarrassingly parallel.  When the partner is not co-sharded the
operations fall back to *broadcast* mode (every shard against the
partner's one memoised key set / hash table), which is still correct and
still runs shard-wise over the worker pool.

Projection keeps the result sharded exactly when the shard key survives:
two equal projected rows then carry the same key value and therefore live
in the same shard, so shard-local duplicate elimination is global
duplicate elimination.  Dropping the key coalesces to a plain
:class:`~repro.db.relation.Relation`.

All operations take an optional ``pool`` (a
:class:`concurrent.futures.Executor`); without one — or with a single
shard — they run inline.  Semantics are identical to the sequential
:class:`Relation` operations, which the property suite in
``tests/db/test_parallel_equivalence.py`` enforces shard-count by
shard-count.
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Callable, Iterator, Sequence

from .._errors import SchemaError
from .relation import Relation, Row, Value, probe_join, semijoin_with_keys


def pool_map(pool: Executor | None, fn: Callable, items: Sequence) -> list:
    """Run ``fn`` over *items*, through *pool* when one is given and the
    fan-out is non-trivial; in order either way."""
    if pool is None or len(items) <= 1:
        return [fn(item) for item in items]
    return list(pool.map(fn, items))


def shard_of(value: Value, n_shards: int) -> int:
    """The shard owning *value* (stable within one process)."""
    return hash(value) % n_shards


class ShardedRelation:
    """An immutable relation hash-partitioned on one key attribute.

    Attributes
    ----------
    attributes:
        The schema, shared by every shard.
    key:
        The attribute whose hash assigns each row to a shard.
    shards:
        ``n`` disjoint :class:`Relation` pieces; row ``t`` lives in shard
        ``hash(t[key]) % n``.
    """

    __slots__ = ("attributes", "key", "shards", "name", "_key_sets", "_merged")

    def __init__(
        self,
        attributes: tuple[str, ...],
        key: str,
        shards: tuple[Relation, ...],
        name: str = "r",
    ):
        if key not in attributes:
            raise SchemaError(
                f"shard key {key!r} not in schema {attributes} of "
                f"sharded relation {name!r}"
            )
        if not shards:
            raise SchemaError(f"sharded relation {name!r} needs >= 1 shard")
        self.attributes = attributes
        self.key = key
        self.shards = shards
        self.name = name
        self._key_sets: dict[tuple[str, ...], frozenset] = {}
        self._merged: Relation | None = None

    # -- constructors -----------------------------------------------------
    @staticmethod
    def shard(
        relation: Relation, key: str, n_shards: int
    ) -> "ShardedRelation":
        """Partition *relation* on *key* into *n_shards* pieces."""
        if n_shards < 1:
            raise SchemaError(f"n_shards must be >= 1, got {n_shards}")
        i = relation._position(key)
        if n_shards == 1:
            # One shard is the relation itself — keeps its memoised
            # hash structures alive.
            return ShardedRelation(
                relation.attributes, key, (relation,), relation.name
            )
        # Rows are already distinct, so list buckets (cheap appends)
        # suffice before the per-shard frozenset build; the bound
        # appends keep the per-row work to hash + mod + call.
        buckets: list[list[Row]] = [[] for _ in range(n_shards)]
        appends = [b.append for b in buckets]
        _hash = hash
        for row in relation.rows:
            appends[_hash(row[i]) % n_shards](row)
        shards = tuple(
            Relation.trusted(relation.attributes, frozenset(b), relation.name)
            for b in buckets
        )
        return ShardedRelation(
            relation.attributes, key, shards, relation.name
        )

    # -- views ------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def __bool__(self) -> bool:
        return any(s.rows for s in self.shards)

    def __iter__(self) -> Iterator[Row]:
        for shard in self.shards:
            yield from shard.rows

    @property
    def rows(self) -> frozenset[Row]:
        return self.to_relation().rows

    def to_relation(self) -> Relation:
        """Coalesce the shards back into one plain relation (memoised)."""
        if self._merged is None:
            if len(self.shards) == 1:
                self._merged = self.shards[0]
            else:
                merged: set[Row] = set()
                for shard in self.shards:
                    merged |= shard.rows
                self._merged = Relation.trusted(
                    self.attributes, frozenset(merged), self.name
                )
        return self._merged

    def key_set(self, attributes: tuple[str, ...]) -> frozenset:
        """Union of the shards' memoised key sets over *attributes*."""
        cached = self._key_sets.get(attributes)
        if cached is None:
            cached = frozenset().union(
                *(s.key_set(attributes) for s in self.shards)
            )
            self._key_sets[attributes] = cached
        return cached

    def _aligned_with(
        self, other: "ShardedRelation | Relation", shared: tuple[str, ...]
    ) -> bool:
        """Partition-wise operation is sound iff both sides are sharded
        on the same number of shards by the same *shared* key."""
        return (
            isinstance(other, ShardedRelation)
            and other.key == self.key
            and other.n_shards == self.n_shards
            and self.key in shared
        )

    def _rebuild(
        self, shards: list[Relation], name: str | None = None
    ) -> "ShardedRelation":
        if all(new is old for new, old in zip(shards, self.shards)):
            return self
        return ShardedRelation(
            self.attributes, self.key, tuple(shards), name or self.name
        )

    # -- relational algebra ----------------------------------------------
    def semijoin(
        self,
        other: "ShardedRelation | Relation",
        pool: Executor | None = None,
    ) -> "ShardedRelation":
        """⋉ shard-wise: pairwise against an aligned partner, otherwise
        every shard against the partner's one memoised key set."""
        if not other:
            empty = Relation.trusted(self.attributes, frozenset(), self.name)
            return ShardedRelation(
                self.attributes,
                self.key,
                tuple(empty for _ in self.shards),
                self.name,
            )
        shared = tuple(a for a in self.attributes if a in other.attributes)
        if not shared:
            return self
        if self._aligned_with(other, shared):
            pairs = list(zip(self.shards, other.shards))
            shards = pool_map(
                pool, lambda pair: pair[0].semijoin(pair[1]), pairs
            )
            return self._rebuild(shards)
        keys = other.key_set(shared)

        def one(shard: Relation) -> Relation:
            return semijoin_with_keys(shard, shared, keys)

        return self._rebuild(pool_map(pool, one, self.shards))

    def join(
        self,
        other: "ShardedRelation | Relation",
        name: str | None = None,
        pool: Executor | None = None,
    ) -> "ShardedRelation":
        """⋈ shard-wise; the result stays sharded on this side's key
        (every output row extends one of this side's rows, so the key
        column — and with it the partition — is preserved)."""
        shared = tuple(a for a in self.attributes if a in other.attributes)
        if self._aligned_with(other, shared):
            pairs = list(zip(self.shards, other.shards))
            shards = pool_map(
                pool,
                lambda pair: pair[0].join(pair[1], name=name),
                pairs,
            )
        else:
            partner = (
                other.to_relation()
                if isinstance(other, ShardedRelation)
                else other
            )
            # Broadcast: every shard probes the partner's one memoised
            # hash table (building per-shard tables would redo the same
            # build n times and probe the full partner per shard).
            here = set(self.attributes)
            extra = [a for a in partner.attributes if a not in here]
            extra_pos = [partner._position(a) for a in extra]
            out = self.attributes + tuple(extra)
            out_name = name or f"({self.name}⋈{partner.name})"
            shards = pool_map(
                pool,
                lambda shard: probe_join(
                    partner, shard, False, shared, extra_pos, out, out_name
                ),
                self.shards,
            )
        out_attrs = shards[0].attributes
        return ShardedRelation(
            out_attrs, self.key, tuple(shards), name or shards[0].name
        )

    def project(
        self,
        attributes: Sequence[str],
        name: str | None = None,
        pool: Executor | None = None,
    ) -> "ShardedRelation | Relation":
        """π shard-wise; the result stays sharded when the shard key
        survives (rows equal after projection then agree on the key, so
        they were in the same shard and shard-local dedup is global).
        Dropping the key still projects shard-wise — the final union of
        the (smaller) projected shards performs the cross-shard dedup."""
        shards = pool_map(
            pool,
            lambda shard: shard.project(attributes, name=name),
            self.shards,
        )
        if self.key in attributes:
            return ShardedRelation(
                tuple(attributes), self.key, tuple(shards), name or self.name
            )
        merged: set[Row] = set()
        for shard in shards:
            merged |= shard.rows
        return Relation.trusted(
            tuple(attributes), frozenset(merged), name or self.name
        )

    def __str__(self) -> str:
        sizes = ", ".join(str(len(s)) for s in self.shards)
        return (
            f"{self.name}({', '.join(self.attributes)}) "
            f"[{len(self)} rows @ {self.key}: {sizes}]"
        )


