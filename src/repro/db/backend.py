"""Pluggable execution backends for the sharded evaluation kernel.

PR 4's parallel kernel threaded a raw ``concurrent.futures`` pool through
every layer (``ShardedRelation`` → sweep functions → physical plans →
``Engine`` → CLI).  That worked for threads, where every shard task can
close over shared relations for free, but it cannot express a process
pool: closures do not pickle, and shipping a relation's rows to a worker
on every operator call costs more than the operator itself (measured: a
pickle round trip of 10k rows ≈ 3 ms against ≈ 1.4 ms for the semijoin
probe loop it would parallelise).

This module replaces the pool plumbing with a small backend interface,
:class:`ExecutionContext`, and three implementations:

* :class:`SequentialBackend` — zero-overhead inline execution, the
  default;
* :class:`ThreadBackend` — the PR-4 behaviour: shard tasks fan out over
  a thread pool.  Low latency and shared memory, but GIL-bound: it banks
  per-operator constants, not multicore scaling;
* :class:`ProcessBackend` — shard tasks run in worker *processes*.  To
  beat the serialisation tax it keeps shard data **resident in the
  workers**: ``scatter`` ships a shard's rows to its owner worker once
  (compact codec below), every subsequent operator references it by
  token and leaves its result resident, and ``gather`` pulls rows back
  only when a plain :class:`~repro.db.relation.Relation` is actually
  needed.  A whole Yannakakis sweep therefore pays IPC proportional to
  the *input plus output* volume, not to the number of operators.

The operator vocabulary is a registry of named, module-level functions
(:data:`_OPS`) over plain relations — the same functions run inline, on
a thread pool, or inside a worker process, which is how the property
suite can assert backend-for-backend equivalence.

**Compact row codec.**  Relations cross the process boundary as
``(attributes, name, row-tuple sequence)`` triples — never as pickled
:class:`Relation` instances, whose ``__dict__`` drags along the memoised
key sets and join hash tables (orders of magnitude larger than the
rows).  Rehydration goes through :meth:`Relation.trusted`, skipping
per-row re-validation.  Worker-side caches keep the rehydrated instance,
so its memoised hash structures amortise across operators exactly like
the parent's do.

**Broadcast scatter.**  Read-only build-side payloads (a semijoin's key
set, a broadcast join's partner relation) are registered with
:meth:`ExecutionContext.scatter` and shipped to each worker at most
once, LRU-bounded; repeated semijoins against the same filter reference
the worker-resident copy by token instead of re-serialising it.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import queue as queue_module
import threading
import time
import traceback
import weakref
from collections import OrderedDict, deque
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Callable, Sequence

from .._errors import EvaluationError
from ..obs import current_tracer, get_registry
from ..obs.flight import get_flight_recorder
from ..obs.profiler import SamplingProfiler, current_profiler
from ..obs.tracer import span_tuple
from .annotated import AnnotatedRelation, dispatch_probe_join, merge_annotated
from .columnar import (
    ColumnarRelation,
    column_from_payload,
    columnar_probe_join,
    concat_columnar,
)
from .relation import Relation, Row
from .semiring import get_semiring
from .shm import attach_columnar, export_columnar, shm_available

BACKEND_KINDS = ("sequential", "thread", "process")

#: Columnar relations at or above this many rows cross the process
#: boundary through a shared-memory segment (tiny descriptor on the
#: queue, zero-copy attach in the worker) instead of the byte codec.
#: Below it the segment setup costs more than the pickle it saves.
SHM_MIN_ROWS = 2048

#: Environment variable selecting the default backend kind (CI runs the
#: tier-1 suite once with ``REPRO_BACKEND=process`` to exercise the
#: process kernel end to end).
BACKEND_ENV_VAR = "REPRO_BACKEND"


def default_backend_kind() -> str:
    """The backend kind engines use when none is chosen explicitly:
    ``$REPRO_BACKEND`` when it names a valid kind, else ``sequential``."""
    kind = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    return kind if kind in BACKEND_KINDS else "sequential"


# -- compact row codec -----------------------------------------------------

RelationPayload = tuple


def encode_relation(rel: Relation) -> RelationPayload:
    """Flatten *rel* to its cheaply-picklable payload.

    A tuple of plain builtins — attribute tuple, name, row tuples —
    deliberately excluding the instance's memoised key sets / hash
    tables, which are worker-local concerns rebuilt (and re-memoised) on
    the other side.  Annotated relations extend the triple with their
    semiring tag and ``(row, value)`` annotation items; semirings cross
    the boundary by tag and are resolved from the registry on arrival.
    Columnar relations ship their raw column buffers (``tobytes`` plus
    dictionary pools) as a length-4 payload — no row tuples are ever
    built on either side.
    """
    if isinstance(rel, AnnotatedRelation):
        return (
            rel.attributes,
            rel.name,
            tuple(rel.rows),
            rel.semiring.tag,
            tuple(rel.annotations.items()),
        )
    if isinstance(rel, ColumnarRelation):
        return (
            rel.attributes,
            rel.name,
            rel.length,
            tuple(col.payload() for col in rel.columns),
        )
    return (rel.attributes, rel.name, tuple(rel.rows))


def decode_relation(payload: RelationPayload) -> Relation:
    """Rehydrate a relation from its payload without row re-validation."""
    if len(payload) == 5:
        attributes, name, rows, tag, items = payload
        return AnnotatedRelation.make(
            attributes, frozenset(rows), name, get_semiring(tag), dict(items)
        )
    if len(payload) == 4:
        attributes, name, length, cols = payload
        return ColumnarRelation.make(
            attributes,
            tuple(column_from_payload(c) for c in cols),
            name,
            length,
        )
    attributes, name, rows = payload
    return Relation.trusted(attributes, frozenset(rows), name)


# -- shard operator registry ----------------------------------------------
#
# Every shard-level operator the kernel fans out is a named module-level
# function over plain relations/values: picklable by reference, so the
# same vocabulary runs inline, on threads, and in worker processes.

_OPS: dict[str, Callable] = {}


def register_op(name: str) -> Callable[[Callable], Callable]:
    def decorate(fn: Callable) -> Callable:
        _OPS[name] = fn
        return fn

    return decorate


@register_op("identity")
def _op_identity(rel: Relation) -> Relation:
    """Pass-through: scatter (with ``keep=True``) and gather transport."""
    return rel


@register_op("semijoin_pair")
def _op_semijoin_pair(left: Relation, right: Relation) -> Relation:
    return left.semijoin(right)


@register_op("semijoin_keys")
def _op_semijoin_keys(
    shard: Relation, shared: tuple[str, ...], keys: frozenset
) -> Relation:
    # Method dispatch: the annotated subclass filters its annotation map
    # alongside the rows; plain shards run the untouched probe loop.
    return shard.semijoin_with_keys(shared, keys)


@register_op("join_pair")
def _op_join_pair(left: Relation, right: Relation, name: str | None) -> Relation:
    return left.join(right, name=name)


@register_op("probe_join")
def _op_probe_join(
    partner: Relation,
    shard: Relation,
    shared: tuple[str, ...],
    extra_pos: tuple[int, ...],
    out_attrs: tuple[str, ...],
    name: str,
) -> Relation:
    if isinstance(partner, ColumnarRelation) and isinstance(
        shard, ColumnarRelation
    ):
        # Both sides columnar (e.g. an shm-attached broadcast partner
        # probing a columnar resident shard): batch kernel, no tuples.
        return columnar_probe_join(
            partner, shard, False, shared, extra_pos, out_attrs, name
        )
    return dispatch_probe_join(
        partner, shard, False, shared, extra_pos, out_attrs, name
    )


@register_op("project")
def _op_project(
    shard: Relation, attributes: tuple[str, ...], name: str | None
) -> Relation:
    return shard.project(attributes, name=name)


@register_op("key_set")
def _op_key_set(shard: Relation, attributes: tuple[str, ...]) -> frozenset:
    return shard.key_set(attributes)


# -- remote handles --------------------------------------------------------


class RemoteShard:
    """A relation shard resident in one :class:`ProcessBackend` worker.

    Carries everything the parent-side planning code needs — schema,
    display name, row count, owning worker — while the rows themselves
    stay in the worker's store under ``token``.  Garbage collection of
    the handle releases the worker-side entry (via a ``weakref``
    finalizer registered by the backend), so sweep intermediates free
    their memory as the parent drops them.
    """

    __slots__ = ("token", "attributes", "name", "length", "owner", "__weakref__")

    def __init__(
        self,
        token: str,
        attributes: tuple[str, ...],
        name: str,
        length: int,
        owner: int,
    ):
        self.token = token
        self.attributes = attributes
        self.name = name
        self.length = length
        self.owner = owner

    def __len__(self) -> int:
        return self.length

    def __bool__(self) -> bool:
        return self.length > 0

    def __repr__(self) -> str:
        return (
            f"<RemoteShard {self.name}({', '.join(self.attributes)}) "
            f"[{self.length} rows @ worker {self.owner}]>"
        )


class _BroadcastRef:
    """A scatter handle: token for workers, live value for inline use."""

    __slots__ = ("token", "value")

    def __init__(self, token: str, value: object):
        self.token = token
        self.value = value


ShardPiece = "Relation | RemoteShard"


# -- the backend interface -------------------------------------------------


class ExecutionContext:
    """Where shard tasks run and how shard data moves.

    ``map_shards`` fans registered operators over per-shard argument
    tuples; ``scatter`` publishes a read-only build-side object for
    reuse across calls; ``gather`` coalesces shard pieces (local or
    remote) into one plain relation; ``close`` releases workers.  The
    base class is the sequential implementation: everything runs inline
    and data never moves.
    """

    kind = "sequential"
    workers = 1

    def map_shards(
        self,
        op: str,
        tasks: Sequence[tuple],
        keep: bool = False,
        out_attributes: tuple[str, ...] | None = None,
        out_name: str | None = None,
    ) -> list:
        """Run registered operator *op* once per task tuple, in order.

        ``keep`` asks the backend to leave each result resident with the
        worker that produced it (returning :class:`RemoteShard` handles
        instead of relations); backends without resident storage ignore
        it and return plain results.  ``out_attributes``/``out_name``
        describe the result schema for the handles.
        """
        fn = _OPS[op]
        tracer = current_tracer()
        if not tracer.enabled:
            return [fn(*_resolve_local(args)) for args in tasks]
        return [
            _traced_shard_call(tracer, self.kind, op, fn, i, args)
            for i, args in enumerate(tasks)
        ]

    def map_local(self, fn: Callable, items: Sequence) -> list:
        """Fan *closure-based* tasks out locally (bag materialisation).

        Unlike :meth:`map_shards` the callable is arbitrary, so this
        never crosses a process boundary; the process backend runs it
        inline (shipping a whole database would dwarf the win).
        """
        return [fn(item) for item in items]

    def scatter(self, obj):
        """Publish a read-only object for repeated shard-task use.

        Returns a handle accepted by :meth:`map_shards` task tuples.
        In-process backends return the object itself; the process
        backend registers it for at-most-once shipment per worker.
        """
        return obj

    def gather(
        self,
        pieces: Sequence["Relation | RemoteShard"],
        attributes: tuple[str, ...],
        name: str = "r",
    ) -> Relation:
        """Coalesce shard pieces into one relation.  Annotated pieces
        ``plus``-merge their annotation maps (duplicate rows across
        pieces fold, disjoint shards concatenate)."""
        pieces = self._fetch(pieces)
        if len(pieces) == 1:
            return pieces[0]
        if any(isinstance(piece, AnnotatedRelation) for piece in pieces):
            return merge_annotated(pieces, attributes, name)
        if all(isinstance(piece, ColumnarRelation) for piece in pieces):
            # Keep the merge columnar so downstream operators stay on
            # the batch kernels.
            return concat_columnar(pieces, attributes, name)
        merged: set[Row] = set()
        for piece in pieces:
            merged |= piece.rows
        return Relation.trusted(attributes, frozenset(merged), name)

    def prefers_relation_scatter(self, rel) -> bool:
        """True when scattering *rel* itself beats scattering derived
        structures (key sets): the process backend answers yes for
        shm-eligible columnar relations, whose buffers cross for free
        while a pickled key set would not."""
        return False

    def _fetch(self, pieces: Sequence) -> list[Relation]:
        return list(pieces)

    def close(self) -> None:
        """Release workers.  Idempotent."""

    @property
    def closed(self) -> bool:
        """True once the context can no longer run work (a closed
        process pool); owners use this to recreate rather than reuse.
        In-process backends recover lazily and never report closed."""
        return False

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _resolve_local(args: tuple) -> tuple:
    """Unwrap scatter handles for inline execution."""
    if any(isinstance(a, _BroadcastRef) for a in args):
        return tuple(
            a.value if isinstance(a, _BroadcastRef) else a for a in args
        )
    return args


def _traced_shard_call(tracer, kind: str, op: str, fn, shard: int, args: tuple):
    """Run one shard task under a ``shard:<op>`` span (tracer enabled)."""
    with tracer.span(f"shard:{op}", backend=kind, shard=shard) as sp:
        result = fn(*_resolve_local(args))
        if hasattr(result, "__len__"):
            sp.set(rows=len(result))
    return result


class SequentialBackend(ExecutionContext):
    """The zero-overhead default: every operator runs inline."""


#: Shared stateless instance — the ``backend=None`` fallback everywhere.
SEQUENTIAL = SequentialBackend()


class ThreadBackend(ExecutionContext):
    """Shard tasks over a thread pool (the PR-4 parallel kernel).

    Low-latency — shards are shared objects, nothing is copied — but
    GIL-bound: gains come from per-operator constants (memoised indexes,
    partition-wise probes), not from occupying multiple cores.  May wrap
    an externally owned executor (``pool=``), in which case ``close`` is
    the owner's job, not ours.
    """

    kind = "thread"

    def __init__(self, workers: int = 4, pool: Executor | None = None):
        self.workers = max(
            1, getattr(pool, "_max_workers", workers) if pool else workers
        )
        self._external = pool
        self._own_pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _executor(self) -> Executor:
        if self._external is not None:
            return self._external
        with self._lock:
            if self._own_pool is None:
                self._own_pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix=f"shard-{self.workers}",
                )
            return self._own_pool

    def map_shards(
        self,
        op: str,
        tasks: Sequence[tuple],
        keep: bool = False,
        out_attributes: tuple[str, ...] | None = None,
        out_name: str | None = None,
    ) -> list:
        fn = _OPS[op]
        tracer = current_tracer()
        if tracer.enabled:
            # Spans record on the pool threads, so the trace lays shard
            # tasks out in per-thread tracks.
            return list(
                self._executor().map(
                    lambda item: _traced_shard_call(
                        tracer, self.kind, op, fn, item[0], item[1]
                    ),
                    enumerate(tasks),
                )
            )
        if len(tasks) <= 1:
            return [fn(*_resolve_local(args)) for args in tasks]
        return list(
            self._executor().map(lambda args: fn(*_resolve_local(args)), tasks)
        )

    def map_local(self, fn: Callable, items: Sequence) -> list:
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._executor().map(fn, items))

    def close(self) -> None:
        with self._lock:
            pool, self._own_pool = self._own_pool, None
        if pool is not None:
            pool.shutdown(wait=False)


# -- the process backend ---------------------------------------------------
#
# Parent and workers speak over per-worker task queues (so scatter and
# routing are targeted — queue FIFO order means a cached payload is
# always installed before any task that references it) and one shared
# result queue.  Messages:
#
#   parent -> worker:  ("task", tid, op, out_token|None, encoded_args,
#                       trace, profile_hz)  -- trace: bool, hz: float (0=off)
#                      ("cache", token, encoded_value)
#                      ("uncache", (token, ...))
#                      None                          -- shut down
#   worker -> parent:  ("ok", tid, row_count, spans, samples)   -- resident
#                      ("ok", tid, encoded_result, spans, samples) -- shipped
#                      ("err", tid, traceback_text, (), ())
#
# Argument/result encodings: ("r", attrs, name, rows) for relations via
# the compact codec, ("t", token) for worker-resident objects,
# ("s", descriptor) for columnar relations riding a shared-memory
# segment (the worker attaches by name, zero-copy), and ("v", obj) for
# plain picklable values.  With ``trace`` set the worker
# times each operator on the shared monotonic clock and ships the span
# tuples (:func:`repro.obs.tracer.span_tuple`) back in the reply; the
# parent ingests them into the current tracer labelled with the owning
# worker's track.  With ``profile_hz`` > 0 the worker lazily starts its
# own :class:`~repro.obs.profiler.SamplingProfiler` at that rate and
# each reply drains the folded samples accumulated since the previous
# reply; the parent merges them into the current profiler under a
# ``worker-<pid>`` root frame — one profile covers driver and workers.


def _encode_value(value) -> tuple:
    if isinstance(value, Relation):
        return ("r",) + encode_relation(value)
    return ("v", value)


def _encode_arg(arg) -> tuple:
    if isinstance(arg, Relation):
        return ("r",) + encode_relation(arg)
    if isinstance(arg, (RemoteShard, _BroadcastRef)):
        return ("t", arg.token)
    return ("v", arg)


def _decode_value(payload: tuple):
    tag = payload[0]
    if tag == "r":
        return decode_relation(payload[1:])
    if tag == "s":
        return attach_columnar(payload[1])
    return payload[1]


def _worker_decode(payload: tuple, store: dict):
    tag = payload[0]
    if tag == "r":
        return decode_relation(payload[1:])
    if tag == "t":
        return store[payload[1]]
    if tag == "s":
        return attach_columnar(payload[1])
    return payload[1]


def _worker_main(task_queue, result_queue) -> None:  # pragma: no cover - child process
    """One worker process: a task loop over a private resident store."""
    store: dict[str, object] = {}
    profiler: SamplingProfiler | None = None
    try:
        while True:
            message = task_queue.get()
            if message is None:
                break
            tag = message[0]
            if tag == "task":
                _, tid, op, out_token, args, trace, profile_hz = message
                if profile_hz and profiler is None:
                    # Started once, on the first profiled task; the
                    # daemon sampler then covers this worker for the
                    # rest of its life (replies drain incrementally).
                    profiler = SamplingProfiler(hz=profile_hz)
                    profiler.start()
                try:
                    fn = _OPS[op]
                    decoded = [_worker_decode(a, store) for a in args]
                    spans: tuple = ()
                    if trace:
                        started = time.perf_counter()
                        result = fn(*decoded)
                        ended = time.perf_counter()
                        spans = (
                            span_tuple(
                                f"shard:{op}",
                                started,
                                ended,
                                {
                                    "op": op,
                                    "rows": (
                                        len(result)
                                        if hasattr(result, "__len__")
                                        else None
                                    ),
                                },
                            ),
                        )
                    else:
                        result = fn(*decoded)
                    samples = (
                        profiler.drain() if profile_hz and profiler else ()
                    )
                    if out_token is not None:
                        store[out_token] = result
                        result_queue.put(
                            ("ok", tid, len(result), spans, samples)
                        )
                    else:
                        result_queue.put(
                            ("ok", tid, _encode_value(result), spans, samples)
                        )
                except BaseException:
                    result_queue.put(
                        ("err", tid, traceback.format_exc(), (), ())
                    )
            elif tag == "cache":
                store[message[1]] = _decode_value(pickle.loads(message[2]))
            elif tag == "uncache":
                for token in message[1]:
                    store.pop(token, None)
    except (EOFError, OSError, KeyboardInterrupt):
        # Parent went away (or interrupted): exit quietly.
        pass
    finally:
        if profiler is not None:
            profiler.stop()


class ProcessBackendError(EvaluationError, RuntimeError):
    """A shard task failed inside a worker process (traceback attached).

    An :class:`~repro._errors.EvaluationError`, so worker-side failures
    stay inside the library's typed-error contract: ``execute_many``'s
    per-request fault isolation records them on the failed request
    instead of aborting the batch, and the CLI renders them as readable
    one-liners.  (``RuntimeError`` is kept as a secondary base for
    callers that treated backend faults generically.)
    """


class ProcessBackend(ExecutionContext):
    """Shard tasks in worker processes with worker-resident shard data.

    Shard ``i`` of every scattered relation lives with worker
    ``i % workers``; partition-wise operators are routed to the owner of
    their resident arguments, keep their results resident, and reply
    with a row count only.  Data crosses the process boundary exactly at
    ``scatter`` (inputs, compact codec, once) and ``gather`` (outputs),
    so a multi-operator sweep is compute-bound in the workers rather
    than codec-bound in the parent.

    One ``map_shards`` call is atomic with respect to concurrent engine
    threads (an internal lock serialises dispatch+collect); the shard
    tasks inside a call still run across all workers.

    ``close`` is idempotent: workers get a sentinel, are joined, and
    terminated if they fail to exit; the daemon flag backstops parent
    crashes.  A closed backend raises on further use — engines recreate
    backends on demand after :meth:`repro.engine.Engine.close`.
    """

    kind = "process"

    def __init__(
        self,
        workers: int = 4,
        scatter_cache: int = 128,
        start_method: str | None = None,
    ):
        self.workers = max(1, int(workers))
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        ctx = multiprocessing.get_context(start_method)
        self._result_queue = ctx.Queue()
        self._task_queues = [ctx.Queue() for _ in range(self.workers)]
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(task_queue, self._result_queue),
                daemon=True,
                name=f"repro-shard-{i}",
            )
            for i, task_queue in enumerate(self._task_queues)
        ]
        for proc in self._procs:
            proc.start()
        self._lock = threading.RLock()
        self._closed = False
        self._counter = itertools.count()
        # Broadcast registry: (identity, version) -> (obj, token).  The
        # strong reference pins the id, so the identity-keyed LRU is
        # sound; the version component (for objects that expose one,
        # e.g. databases) keys out stale payloads after mutation.
        self._scattered: OrderedDict[tuple, tuple[object, str]] = OrderedDict()
        self._scatter_limit = max(8, scatter_cache)
        self._sent: set[str] = set()
        self._dead: deque[tuple[int, str]] = deque()
        # Pickled-payload cache, independent of the scatter registry's
        # eviction: a build side scattered again after LRU churn — or
        # re-referenced by a later plan node — reuses its serialised
        # blob instead of re-pickling.  Strong references pin ids.
        self._blob_lru: OrderedDict[tuple, tuple[object, bytes]] = OrderedDict()
        self._blob_limit = 16
        # Shared-memory lifecycle: token -> live segment for broadcast
        # payloads, plus retired segments whose unlink is deferred to
        # close/abort (eviction must not unlink a segment a worker has
        # queued-but-not-processed a "cache" message for).
        self._shm_segments: dict[str, object] = {}
        self._shm_retired: list = []

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._dead.clear()
            self._scattered.clear()
            self._sent.clear()
            self._blob_lru.clear()
            segments = [*self._shm_segments.values(), *self._shm_retired]
            self._shm_segments.clear()
            self._shm_retired.clear()
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for proc in self._procs:
            proc.join(timeout=3.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        # Unlink after the workers are gone: every queued "cache"
        # attach has either run or can never run.
        for segment in segments:
            segment.release()
        for q in (*self._task_queues, self._result_queue):
            q.cancel_join_thread()
            q.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("process backend is closed")

    # -- resident-token bookkeeping --------------------------------------
    def _free_remote(self, owner: int, token: str) -> None:
        """``weakref.finalize`` callback: queue a worker-store release."""
        self._dead.append((owner, token))

    def _reap_dead_locked(self) -> None:
        if not self._dead:
            return
        by_owner: dict[int, list[str]] = {}
        while self._dead:
            try:
                owner, token = self._dead.popleft()
            except IndexError:  # pragma: no cover - concurrent finalizers
                break
            by_owner.setdefault(owner, []).append(token)
        for owner, tokens in by_owner.items():
            self._task_queues[owner].put(("uncache", tuple(tokens)))

    def _remote(
        self,
        token: str,
        attributes: tuple[str, ...],
        name: str,
        length: int,
        owner: int,
    ) -> RemoteShard:
        shard = RemoteShard(token, attributes, name, length, owner)
        weakref.finalize(shard, self._free_remote, owner, token)
        return shard

    # -- scatter ----------------------------------------------------------
    def scatter(self, obj):
        """Register *obj* (a relation or key set) for broadcast reuse.

        The payload is shipped to each worker at most once, lazily — on
        the first ``map_shards`` dispatch that references it — and
        dropped everywhere when the LRU evicts it.  Repeated scatters of
        the same object (e.g. a semijoin filter reused across both sweep
        directions, or a build side referenced by several plan nodes)
        return the same token without re-serialising.
        """
        with self._lock:
            self._ensure_open()
            key = self._scatter_key(obj)
            entry = self._scattered.get(key)
            if entry is not None and entry[0] is obj:
                self._scattered.move_to_end(key)
                return _BroadcastRef(entry[1], obj)
            token = f"b{next(self._counter)}"
            self._scattered[key] = (obj, token)
            self._evict_overflow_locked()
            return _BroadcastRef(token, obj)

    @staticmethod
    def _scatter_key(obj) -> tuple:
        """LRU key: object identity plus (when exposed) its version, so
        a mutated-and-rescattered container cannot alias a stale
        worker-resident payload through id reuse."""
        return (id(obj), getattr(obj, "version", None))

    def prefers_relation_scatter(self, rel) -> bool:
        return (
            isinstance(rel, ColumnarRelation)
            and rel.length >= SHM_MIN_ROWS
            and shm_available()
        )

    def _evict_overflow_locked(self) -> None:
        while len(self._scattered) > self._scatter_limit:
            _, (_, old_token) = self._scattered.popitem(last=False)
            self._uncache_broadcast_locked(old_token)

    def _uncache_broadcast_locked(self, token: str) -> None:
        segment = self._shm_segments.pop(token, None)
        if segment is not None:
            # Deferred unlink: a worker may still have the "cache"
            # message for this token queued ahead of the uncache; close
            # or abort performs the actual release once no attach can
            # still be in flight.
            self._shm_retired.append(segment)
        if token in self._sent:
            self._sent.discard(token)
            for task_queue in self._task_queues:
                task_queue.put(("uncache", (token,)))

    def _broadcast_locked(self, ref: _BroadcastRef) -> None:
        if ref.token in self._sent:
            return
        key = self._scatter_key(ref.value)
        entry = self._scattered.get(key)
        if entry is None or entry[1] != ref.token:
            # The LRU evicted (or re-tokened) this payload between
            # scatter and dispatch.  The tasks already carry ref.token,
            # so re-register under it — otherwise the shipment below
            # would leave an entry in every worker store that no
            # eviction path can ever release.
            if entry is not None:
                self._uncache_broadcast_locked(entry[1])
            self._scattered[key] = (ref.value, ref.token)
            self._scattered.move_to_end(key)
            self._evict_overflow_locked()
        registry = get_registry()
        if self.prefers_relation_scatter(ref.value):
            # Zero-copy broadcast: the column buffers go into a shared
            # memory segment; only the tiny descriptor rides the queues.
            descriptor, segment = export_columnar(ref.value)
            self._shm_segments[ref.token] = segment
            blob = pickle.dumps(
                ("s", descriptor), protocol=pickle.HIGHEST_PROTOCOL
            )
            registry.counter("backend.shm_segments").inc()
            registry.counter("backend.shm_bytes").inc(segment.size)
        else:
            cached = self._blob_lru.get(key)
            if cached is not None and cached[0] is ref.value:
                # Already pickled for a previous node/token: reuse.
                self._blob_lru.move_to_end(key)
                blob = cached[1]
                registry.counter("backend.scatter_blob_reuse").inc()
            else:
                # Pre-pickle once: each queue would otherwise
                # re-serialise the same payload per worker.
                blob = pickle.dumps(
                    _encode_value(ref.value), protocol=pickle.HIGHEST_PROTOCOL
                )
                self._blob_lru[key] = (ref.value, blob)
                while len(self._blob_lru) > self._blob_limit:
                    self._blob_lru.popitem(last=False)
        for task_queue in self._task_queues:
            task_queue.put(("cache", ref.token, blob))
        self._sent.add(ref.token)
        registry.counter("backend.scatter_casts").inc()
        registry.counter("backend.scatter_bytes").inc(
            len(blob) * len(self._task_queues)
        )

    # -- dispatch ---------------------------------------------------------
    def map_shards(
        self,
        op: str,
        tasks: Sequence[tuple],
        keep: bool = False,
        out_attributes: tuple[str, ...] | None = None,
        out_name: str | None = None,
    ) -> list:
        if not tasks:
            return []
        tracer = current_tracer()
        profiler = current_profiler()
        profile_hz = profiler.hz if profiler.enabled else 0.0
        get_registry().counter("backend.tasks").inc(len(tasks))
        with self._lock:
            self._ensure_open()
            self._reap_dead_locked()
            if not keep and len(tasks) == 1 and not any(
                isinstance(a, RemoteShard) for a in tasks[0]
            ):
                # Single local task: the fan-out would be pure IPC tax.
                fn = _OPS[op]
                if tracer.enabled:
                    return [
                        _traced_shard_call(
                            tracer, self.kind, op, fn, 0, tasks[0]
                        )
                    ]
                return [fn(*_resolve_local(tasks[0]))]
            # Per-call shared-memory shipments: big columnar arguments
            # cross via a segment + descriptor instead of the codec.
            # Released in the ``finally`` — by then every task that
            # references a segment has been executed by its worker (the
            # reply arrived), so the worker holds a live mapping and
            # the parent-side unlink only removes the name.
            call_segments: dict[int, tuple] = {}

            def encode_arg(a):
                if (
                    isinstance(a, ColumnarRelation)
                    and a.length >= SHM_MIN_ROWS
                    and shm_available()
                ):
                    cached = call_segments.get(id(a))
                    if cached is None:
                        cached = export_columnar(a)
                        call_segments[id(a)] = cached
                        registry = get_registry()
                        registry.counter("backend.shm_segments").inc()
                        registry.counter("backend.shm_bytes").inc(
                            cached[1].size
                        )
                    return ("s", cached[0])
                return _encode_arg(a)

            pending: dict[int, tuple[int, str | None, int]] = {}
            try:
                for i, args in enumerate(tasks):
                    owners = {
                        a.owner for a in args if isinstance(a, RemoteShard)
                    }
                    if len(owners) > 1:
                        raise ProcessBackendError(
                            f"operator {op!r} mixes shards resident on "
                            f"workers {sorted(owners)}; partition-wise "
                            f"tasks must align"
                        )
                    owner = owners.pop() if owners else i % self.workers
                    for arg in args:
                        if isinstance(arg, _BroadcastRef):
                            self._broadcast_locked(arg)
                    tid = next(self._counter)
                    out_token = f"t{next(self._counter)}" if keep else None
                    self._task_queues[owner].put(
                        ("task", tid, op, out_token,
                         tuple(encode_arg(a) for a in args),
                         tracer.enabled, profile_hz)
                    )
                    pending[tid] = (i, out_token, owner)
                results: list = [None] * len(tasks)
                failure: str | None = None
                while pending:
                    status, tid, payload, spans, samples = (
                        self._next_result_locked()
                    )
                    entry = pending.pop(tid, None)
                    if entry is None:
                        continue  # stale reply from an earlier aborted call
                    i, out_token, owner = entry
                    if spans:
                        # Worker-resident spans: same monotonic timeline,
                        # laid out on the owning worker's track.
                        tracer.ingest(spans, tid=f"worker-{owner}")
                    if samples:
                        # Worker-side profile samples, rooted per worker
                        # pid so one flamegraph covers driver and workers.
                        profiler.ingest(
                            samples, label=f"worker-{self._procs[owner].pid}"
                        )
                    if status == "err":
                        failure = failure or payload
                    elif out_token is not None:
                        results[i] = self._remote(
                            out_token,
                            out_attributes or (),
                            out_name or "r",
                            payload,
                            owner,
                        )
                    else:
                        results[i] = _decode_value(payload)
            finally:
                for _, segment in call_segments.values():
                    segment.release()
            if failure is not None:
                raise ProcessBackendError(
                    f"shard operator {op!r} failed in a worker:\n{failure}"
                )
            return results

    def _next_result_locked(self) -> tuple:
        while True:
            try:
                return self._result_queue.get(timeout=1.0)
            except queue_module.Empty:
                dead = [p.name for p in self._procs if not p.is_alive()]
                if dead:
                    # A lost worker means lost resident shards: the
                    # backend cannot limp along.  Full teardown happens
                    # here because close() early-returns once _closed is
                    # set — engines then recreate a fresh pool on the
                    # next request (`closed` property).
                    get_flight_recorder().record(
                        "worker_death",
                        workers=sorted(dead),
                        exitcodes={
                            p.name: p.exitcode
                            for p in self._procs
                            if not p.is_alive()
                        },
                        backend=self.kind,
                        pool_workers=self.workers,
                    )
                    self._abort_locked()
                    raise ProcessBackendError(
                        f"worker process(es) died: {', '.join(dead)}"
                    ) from None

    def _abort_locked(self) -> None:
        """Immediate teardown after a worker fault: terminate and reap
        every process and release the queues' feeder threads/pipes, so
        repeated faults in a long-lived parent cannot accumulate
        zombies or leaked file descriptors."""
        self._closed = True
        self._dead.clear()
        self._scattered.clear()
        self._sent.clear()
        self._blob_lru.clear()
        segments = [*self._shm_segments.values(), *self._shm_retired]
        self._shm_segments.clear()
        self._shm_retired.clear()
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=1.0)
        # The workers are dead: no attach can be in flight, unlink now.
        for segment in segments:
            segment.release()
        for q in (*self._task_queues, self._result_queue):
            q.cancel_join_thread()
            q.close()

    # -- gather -----------------------------------------------------------
    def _fetch(self, pieces: Sequence) -> list[Relation]:
        remote = [
            (i, piece)
            for i, piece in enumerate(pieces)
            if isinstance(piece, RemoteShard)
        ]
        if not remote:
            return list(pieces)
        fetched = self.map_shards("identity", [(piece,) for _, piece in remote])
        get_registry().counter("backend.gather_rows").inc(
            sum(len(rel) for rel in fetched)
        )
        out = list(pieces)
        for (i, _), rel in zip(remote, fetched):
            out[i] = rel
        return out


def make_backend(
    kind: str, workers: int = 4, pool: Executor | None = None
) -> ExecutionContext:
    """Construct a backend by kind name (``Engine``'s selector)."""
    if kind == "sequential":
        return SEQUENTIAL
    if kind == "thread":
        return ThreadBackend(workers=workers, pool=pool)
    if kind == "process":
        return ProcessBackend(workers=workers)
    raise ValueError(
        f"unknown backend kind {kind!r}; expected one of {BACKEND_KINDS}"
    )
