"""Yannakakis' algorithm over join trees (paper §1.1, §2.1; [44]).

Given a join tree of an acyclic query with each tree atom bound to a
relation:

* ``boolean_eval`` — one bottom-up semijoin pass; the query is true iff
  the root relation stays non-empty.  Intermediate relations never grow
  (semijoins only filter), which is the paper's explanation of why acyclic
  BCQ is tractable.
* ``full_reduce`` — the bottom-up pass followed by a top-down pass yields
  the *full reducer*: every remaining tuple participates in at least one
  answer.
* ``enumerate_answers`` — after full reduction, a bottom-up join pass that
  projects each partial result onto the node's variables plus the output
  variables seen so far computes the answer relation in time polynomial in
  input + output (Theorem: Yannakakis [44]; used by Theorem 4.8 /
  Corollary 5.20 through the Lemma 4.6 transformation).
"""

from __future__ import annotations

from ..core.atoms import Atom
from ..core.jointree import JoinTree
from ..obs import current_tracer
from .annotated import join_dispatch
from .relation import Relation
from .stats import EvalStats


def _reduced_bottom_up(
    tree: JoinTree, relations: dict[Atom, Relation], stats: EvalStats
) -> dict[Atom, Relation]:
    """One bottom-up semijoin sweep (child filters parent)."""
    tracer = current_tracer()
    reduced = dict(relations)
    for node in tree.post_order():
        for child in tree.children(node):
            with tracer.span(
                "sweep.semijoin", node=node.predicate, pass_="bottom-up"
            ) as sp:
                reduced[node] = stats.record(
                    reduced[node].semijoin(reduced[child])
                )
                sp.set(rows=len(reduced[node]))
            stats.semijoins += 1
    return reduced


def boolean_eval(
    tree: JoinTree,
    relations: dict[Atom, Relation],
    stats: EvalStats | None = None,
) -> bool:
    """Boolean Yannakakis: true iff the root survives the bottom-up pass."""
    stats = stats if stats is not None else EvalStats()
    if any(not relations[node] for node in tree.nodes):
        return False
    reduced = _reduced_bottom_up(tree, relations, stats)
    return bool(reduced[tree.root])


def full_reduce(
    tree: JoinTree,
    relations: dict[Atom, Relation],
    stats: EvalStats | None = None,
) -> dict[Atom, Relation]:
    """The full reducer: bottom-up then top-down semijoin sweeps.

    Afterwards each relation contains exactly the tuples that extend to a
    full answer of the (acyclic) query.
    """
    stats = stats if stats is not None else EvalStats()
    tracer = current_tracer()
    reduced = _reduced_bottom_up(tree, relations, stats)
    for node in tree.nodes:  # preorder: parents before children
        for child in tree.children(node):
            with tracer.span(
                "sweep.semijoin", node=child.predicate, pass_="top-down"
            ) as sp:
                reduced[child] = stats.record(
                    reduced[child].semijoin(reduced[node])
                )
                sp.set(rows=len(reduced[child]))
            stats.semijoins += 1
    return reduced


def enumerate_answers(
    tree: JoinTree,
    relations: dict[Atom, Relation],
    output: tuple[str, ...],
    stats: EvalStats | None = None,
) -> Relation:
    """Compute the projection of the join onto *output* attribute names.

    Implements the output-polynomial phase of Yannakakis' algorithm: after
    full reduction, join bottom-up but project every partial result onto
    the current node's attributes plus the output attributes contributed
    by its subtree.  Each intermediate is then at most
    ``|node relation| × |answers|`` — polynomial in input plus output.

    Output attributes must occur in the tree (standard for CQ heads, whose
    variables occur in the body).
    """
    stats = stats if stats is not None else EvalStats()
    reduced = full_reduce(tree, relations, stats)

    tree_attrs: set[str] = set()
    for node in tree.nodes:
        tree_attrs.update(relations[node].attributes)
    missing = set(output) - tree_attrs
    if missing:
        raise ValueError(
            f"output attributes {sorted(missing)} do not occur in the join tree"
        )

    out_set = set(output)
    tracer = current_tracer()
    partial: dict[Atom, Relation] = {}
    subtree_attrs: dict[Atom, set[str]] = {}
    for node in tree.post_order():
        rel = reduced[node]
        attrs_below: set[str] = set(rel.attributes)
        for child in tree.children(node):
            attrs_below.update(subtree_attrs[child])
        keep = set(rel.attributes) | (attrs_below & out_set)
        for child in tree.children(node):
            with tracer.span("sweep.join", node=node.predicate) as sp:
                rel = join_dispatch(rel, partial[child])
                stats.joins += 1
                rel = stats.record(
                    rel.project([a for a in rel.attributes if a in keep])
                )
                stats.projections += 1
                sp.set(rows=len(rel))
        partial[node] = rel
        subtree_attrs[node] = attrs_below
    answer = partial[tree.root].project(list(output), name="ans")
    stats.projections += 1
    return stats.record(answer)
