"""Shared-memory transport for columnar relations.

The process backend's compact codec serialises row tuples through a
pickle at every scatter.  A :class:`~repro.db.columnar.ColumnarRelation`
is a handful of contiguous int64/float64 buffers, so it can cross the
process boundary without copying rows at all: the parent writes the
column buffers into one ``multiprocessing.shared_memory`` segment, ships
a tiny *descriptor* (segment name + schema + column kinds + dictionary
pools), and each worker attaches the segment by name and wraps the
buffers in typed ``memoryview`` casts — zero row decoding, zero pickled
tuples, O(descriptor) bytes on the queue regardless of row count.

Lifecycle rules (POSIX semantics make these easy to get wrong):

* the parent — and only the parent — ``unlink``s a segment; workers
  merely close their mapping (dropping the attached relation does that
  via the buffer refcounts).  Unlinking removes the *name* while live
  mappings keep the memory, so the parent may unlink as soon as every
  worker that will ever attach has attached.
* every :class:`ShmSegment` carries a ``weakref.finalize`` backstop, so
  a segment can never outlive the interpreter even if its owner forgot
  to release it.
* workers attach segments *without registering* them with
  ``multiprocessing.resource_tracker`` — the tracker otherwise assumes
  per-process ownership and both double-unlinks at worker exit and
  prints leak warnings for segments the parent already manages.  (An
  unregister *after* attaching would be just as wrong: forked workers
  share the parent's tracker process, so it would strip the creator's
  registration instead.)

Platforms without usable shared memory (no ``/dev/shm``, restricted
containers) are detected once by :func:`shm_available`; callers then
fall back to the byte codec, which is always correct.
"""

from __future__ import annotations

import weakref
from array import array
from typing import Sequence

try:  # pragma: no cover - import guard for exotic builds
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None
    shared_memory = None

from .columnar import Column, ColumnarRelation, _TYPECODE

#: Names of segments created by this process and not yet unlinked —
#: lifecycle tests assert this drains to empty on backend close.
_LIVE: set[str] = set()

_available: bool | None = None


def shm_available() -> bool:
    """Probe (once) whether shared memory actually works here."""
    global _available
    if _available is None:
        if shared_memory is None:
            _available = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=8)
                probe.close()
                probe.unlink()
                _available = True
            except (OSError, PermissionError, ValueError):
                _available = False
    return _available


def live_segment_names() -> frozenset[str]:
    """Segments this process has created and not yet unlinked."""
    return frozenset(_LIVE)


def _unlink_segment(shm, name: str) -> None:
    _LIVE.discard(name)
    try:
        shm.close()
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - teardown race
        pass


class ShmSegment:
    """A parent-owned shared memory segment holding column buffers.

    ``release()`` unlinks eagerly; the ``weakref.finalize`` registered
    at construction is the backstop that fires at garbage collection or
    interpreter exit if nobody released explicitly (finalizers run
    before interpreter teardown, so no resource_tracker leak warnings).
    """

    __slots__ = ("shm", "name", "size", "_finalizer", "__weakref__")

    def __init__(self, shm) -> None:
        self.shm = shm
        self.name = shm.name
        self.size = shm.size
        _LIVE.add(shm.name)
        self._finalizer = weakref.finalize(self, _unlink_segment, shm, shm.name)

    def release(self) -> None:
        self._finalizer()


def export_columnar(rel: ColumnarRelation) -> tuple[tuple, ShmSegment]:
    """Write *rel*'s column buffers into a fresh segment.

    Returns ``(descriptor, segment)``: the descriptor is the tiny
    picklable message workers turn back into a relation with
    :func:`attach_columnar`; the segment handle stays with the caller,
    who owns the unlink."""
    size = max(1, sum(col.nbytes for col in rel.columns))
    shm = shared_memory.SharedMemory(create=True, size=size)
    segment = ShmSegment(shm)
    buf = shm.buf
    offset = 0
    kinds = []
    for col in rel.columns:
        nbytes = col.nbytes
        buf[offset : offset + nbytes] = memoryview(col.data).cast("B")
        kinds.append((col.kind, col.pool))
        offset += nbytes
    descriptor = (
        shm.name,
        rel.attributes,
        rel.name,
        rel.length,
        tuple(kinds),
    )
    return descriptor, segment


def attach_columnar(descriptor: tuple) -> ColumnarRelation:
    """Rebuild a columnar relation from a descriptor, zero-copy.

    Each column becomes a typed ``memoryview`` into the attached
    segment.  The ``SharedMemory`` handle is pinned on the relation
    (``__dict__``), so the mapping lives exactly as long as some
    consumer still references the relation or a view derived from it —
    no explicit close needed worker-side."""
    seg_name, attributes, name, length, kinds = descriptor
    # The tracker would treat this attachment as ownership: unlink at
    # worker exit (breaking other attachments) and warn about "leaks"
    # for segments the parent deliberately still holds.  Attaching must
    # not *register* at all: under fork the workers share the parent's
    # tracker process, so an unregister-after-attach would strip the
    # creator's own registration and the parent's eventual unlink would
    # hit a tracker KeyError.
    if resource_tracker is not None:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=seg_name)
        finally:
            resource_tracker.register = original_register
    else:  # pragma: no cover - exotic builds without a tracker
        shm = shared_memory.SharedMemory(name=seg_name)
    mv = memoryview(shm.buf)
    columns = []
    offset = 0
    for kind, pool in kinds:
        nbytes = length * 8
        view = mv[offset : offset + nbytes].cast(_TYPECODE[kind])
        columns.append(Column(kind, view, pool))
        offset += nbytes
    rel = ColumnarRelation.make(attributes, tuple(columns), name, length)
    rel.__dict__["_shm"] = shm
    return rel


def copy_from_shm(rel: ColumnarRelation) -> ColumnarRelation:
    """Deep-copy an shm-attached relation into process-private arrays
    (used before a worker result must outlive the parent's segment)."""
    columns = tuple(
        Column(c.kind, array(_TYPECODE[c.kind], c.data), c.pool)
        for c in rel.columns
    )
    out = ColumnarRelation.make(rel.attributes, columns, rel.name, rel.length)
    return out
