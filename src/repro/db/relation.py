"""Relations and relational-algebra operations (paper §2.1).

A relation instance is a finite set of tuples over a named schema.  For
query evaluation the attribute names are query-variable names, so natural
join / semijoin operate positionally on shared variables — exactly the
"common variables acting as join attributes" convention of Lemma 4.6.

The implementation is a straightforward set-of-tuples engine with hash
joins.  It is deliberately simple and fully observable: the evaluation
strategies in :mod:`repro.db.yannakakis` and :mod:`repro.db.evaluate`
record intermediate sizes after every operation, which is how experiments
E15/E16 reproduce the paper's "semijoins keep intermediates small" claims.

Relations are immutable, so the hash structures a join or semijoin needs
are *memoised per instance*: :meth:`Relation.key_set` and
:meth:`Relation.key_index` build the probe set / build table for a given
attribute tuple once and reuse it across the bottom-up and top-down
Yannakakis sweeps (a relation acting as the filter of several semijoins —
a star root, or the same tree edge in both sweeps — used to rebuild the
identical hash structure on every call).  A semijoin that filters nothing
returns ``self`` unchanged, keeping those memoised structures alive for
the next pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from .._errors import SchemaError, UnknownAttributeError

Row = tuple
Value = Hashable


@dataclass(frozen=True)
class Relation:
    """An immutable named relation: schema + set of rows.

    Attributes
    ----------
    attributes:
        Ordered attribute names; must be distinct.
    rows:
        The tuples, each of length ``len(attributes)``.
    name:
        Optional display name.
    """

    attributes: tuple[str, ...]
    rows: frozenset[Row]
    name: str = "r"

    def __post_init__(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"relation {self.name!r} has duplicate attributes "
                f"{self.attributes}"
            )
        width = len(self.attributes)
        for row in self.rows:
            if len(row) != width:
                raise SchemaError(
                    f"row {row!r} does not match schema {self.attributes} "
                    f"of relation {self.name!r}"
                )

    # -- constructors -----------------------------------------------------
    @staticmethod
    def trusted(
        attributes: tuple[str, ...], rows: frozenset[Row], name: str = "r"
    ) -> "Relation":
        """Construct without re-validating rows (hot-path constructor).

        Every relational-algebra operation below produces rows that match
        its output schema *by construction*, so re-running the
        ``__post_init__`` width check over each result row — once per
        join/semijoin/projection in a Yannakakis pass — is pure overhead.
        Arguments must already be a ``tuple`` and a ``frozenset`` of
        correctly sized tuples; external data should keep entering through
        :meth:`from_rows`, which validates.
        """
        rel = object.__new__(Relation)
        object.__setattr__(rel, "attributes", attributes)
        object.__setattr__(rel, "rows", rows)
        object.__setattr__(rel, "name", name)
        return rel

    @staticmethod
    def from_rows(
        attributes: Sequence[str], rows: Iterable[Sequence[Value]], name: str = "r"
    ) -> "Relation":
        return Relation(
            tuple(attributes), frozenset(tuple(r) for r in rows), name
        )

    @staticmethod
    def empty(attributes: Sequence[str], name: str = "r") -> "Relation":
        return Relation(tuple(attributes), frozenset(), name)

    # -- views --------------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    @cached_property
    def _index_of(self) -> dict[str, int]:
        return {a: i for i, a in enumerate(self.attributes)}

    def column(self, attribute: str) -> set[Value]:
        i = self._position(attribute)
        return {row[i] for row in self.rows}

    def _position(self, attribute: str) -> int:
        try:
            return self._index_of[attribute]
        except KeyError:
            raise UnknownAttributeError(
                f"attribute {attribute!r} not in schema {self.attributes} "
                f"of relation {self.name!r}"
            ) from None

    # -- memoised hash structures -------------------------------------------
    #
    # Keyed by the attribute tuple; a single attribute keys by the bare
    # value (no 1-tuple allocation per row), longer tuples by the value
    # tuple.  Instances are immutable, so entries never invalidate; under
    # concurrent use two threads may compute the same entry, which is
    # harmless (the structures are idempotent and the dict write is
    # atomic under the GIL).

    @cached_property
    def _key_sets(self) -> dict[tuple[str, ...], frozenset]:
        return {}

    @cached_property
    def _key_indexes(self) -> dict[tuple[str, ...], dict]:
        return {}

    def key_set(self, attributes: tuple[str, ...]) -> frozenset:
        """The set of key values over *attributes*, built once per
        relation instance (the probe set of a semijoin)."""
        cached = self._key_sets.get(attributes)
        if cached is None:
            if len(attributes) == 1:
                i = self._position(attributes[0])
                cached = frozenset(row[i] for row in self.rows)
            else:
                positions = [self._position(a) for a in attributes]
                cached = frozenset(
                    tuple(row[p] for p in positions) for row in self.rows
                )
            self._key_sets[attributes] = cached
        return cached

    def key_index(self, attributes: tuple[str, ...]) -> dict:
        """Key value -> list of rows, built once per relation instance
        (the build table of a hash join).  Treat the lists as frozen:
        the index is shared by every later join against this relation.
        """
        cached = self._key_indexes.get(attributes)
        if cached is None:
            cached = {}
            if len(attributes) == 1:
                i = self._position(attributes[0])
                for row in self.rows:
                    cached.setdefault(row[i], []).append(row)
            else:
                positions = [self._position(a) for a in attributes]
                for row in self.rows:
                    cached.setdefault(
                        tuple(row[p] for p in positions), []
                    ).append(row)
            self._key_indexes[attributes] = cached
        return cached

    # -- relational algebra --------------------------------------------------
    def project(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """π over the given attributes (duplicates removed by the set)."""
        # The attribute list is caller-supplied, so the schema check of
        # the validating constructor must not be skipped (rows, however,
        # are correct by construction).
        if len(set(attributes)) != len(attributes):
            raise SchemaError(
                f"projection onto duplicate attributes {tuple(attributes)}"
            )
        positions = [self._position(a) for a in attributes]
        # Short projections dominate the enumeration pass; direct tuple
        # construction avoids one generator frame per row.
        if len(positions) == 1:
            p0 = positions[0]
            rows = frozenset((row[p0],) for row in self.rows)
        elif len(positions) == 2:
            p0, p1 = positions
            rows = frozenset((row[p0], row[p1]) for row in self.rows)
        elif len(positions) == 3:
            p0, p1, p2 = positions
            rows = frozenset(
                (row[p0], row[p1], row[p2]) for row in self.rows
            )
        elif positions == list(range(self.arity)):
            rows = self.rows  # identity projection
        else:
            rows = frozenset(
                tuple(row[p] for p in positions) for row in self.rows
            )
        return Relation.trusted(tuple(attributes), rows, name or self.name)

    def rename(self, mapping: Mapping[str, str], name: str | None = None) -> "Relation":
        """ρ: rename attributes according to *mapping* (others unchanged)."""
        new_attrs = tuple(mapping.get(a, a) for a in self.attributes)
        # Validating constructor on purpose: a non-injective mapping can
        # collapse two attributes into one, which must raise.
        return Relation(new_attrs, self.rows, name or self.name)

    def select(
        self, predicate: Callable[[dict[str, Value]], bool], name: str | None = None
    ) -> "Relation":
        """σ with an arbitrary row predicate over attribute→value dicts."""
        attrs = self.attributes
        rows = frozenset(
            row for row in self.rows if predicate(dict(zip(attrs, row)))
        )
        return Relation.trusted(attrs, rows, name or self.name)

    def select_eq(self, attribute: str, value: Value) -> "Relation":
        """σ attribute = constant."""
        i = self._position(attribute)
        return Relation.trusted(
            self.attributes,
            frozenset(row for row in self.rows if row[i] == value),
            self.name,
        )

    def join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Natural join ⋈ on shared attribute names (hash join).

        The result schema is this relation's attributes followed by the
        other's non-shared attributes, matching textbook natural join.
        The build-side hash table comes from :meth:`key_index`, so joining
        repeatedly against the same relation reuses one table.
        """
        shared = tuple(a for a in self.attributes if a in other._index_of)
        extra = [a for a in other.attributes if a not in self._index_of]
        out_attrs = self.attributes + tuple(extra)
        if not self.rows or not other.rows:
            # Empty-input short-circuit: no hash table, no probe scan.
            return Relation.trusted(
                out_attrs, frozenset(), name or f"({self.name}⋈{other.name})"
            )
        extra_pos = [other._position(a) for a in extra]

        # Build (memoised) on the smaller side, probe the larger.
        if len(self.rows) <= len(other.rows):
            build, probe, build_is_left = self, other, True
        else:
            build, probe, build_is_left = other, self, False
        return probe_join(
            build,
            probe,
            build_is_left,
            shared,
            extra_pos,
            out_attrs,
            name or f"({self.name}⋈{other.name})",
        )

    def semijoin(self, other: "Relation") -> "Relation":
        """Semijoin ⋉: keep rows with a join partner in *other*.

        This is the workhorse of Yannakakis' algorithm — it never grows
        the relation, which is why acyclic evaluation stays polynomial.
        The probe set over the shared attributes is memoised on *other*
        (:meth:`key_set`), an empty input on either side short-circuits
        without scanning, and a semijoin that filters nothing returns
        ``self`` itself so downstream operations keep its memoised hash
        structures.
        """
        if not other.rows:
            # ⋉ against the empty relation is empty regardless of the
            # schemas (with no shared attributes it is a product with
            # nothing) — and must not scan self.rows to find that out.
            return Relation.trusted(self.attributes, frozenset(), self.name)
        if not self.rows:
            return self
        shared = tuple(a for a in self.attributes if a in other._index_of)
        if not shared:
            # Every row has a partner: identity (other is non-empty).
            return self
        return semijoin_with_keys(self, shared, other.key_set(shared))

    def semijoin_with_keys(
        self, shared: tuple[str, ...], keys: frozenset
    ) -> "Relation":
        """Filter against a prebuilt key set (method form, so annotated
        subclasses can carry their annotations through the broadcast
        semijoin of the sharded kernel)."""
        return semijoin_with_keys(self, shared, keys)

    def union(self, other: "Relation") -> "Relation":
        if self.attributes != other.attributes:
            raise SchemaError(
                f"union of incompatible schemas {self.attributes} and "
                f"{other.attributes}"
            )
        return Relation.trusted(self.attributes, self.rows | other.rows, self.name)

    def intersect(self, other: "Relation") -> "Relation":
        if self.attributes != other.attributes:
            raise SchemaError(
                f"intersection of incompatible schemas {self.attributes} and "
                f"{other.attributes}"
            )
        return Relation.trusted(self.attributes, self.rows & other.rows, self.name)

    def difference(self, other: "Relation") -> "Relation":
        if self.attributes != other.attributes:
            raise SchemaError(
                f"difference of incompatible schemas {self.attributes} and "
                f"{other.attributes}"
            )
        return Relation.trusted(self.attributes, self.rows - other.rows, self.name)

    def reorder(self, attributes: Sequence[str]) -> "Relation":
        """Permute columns into the given attribute order (must be a
        permutation of the schema)."""
        if set(attributes) != set(self.attributes) or len(attributes) != self.arity:
            raise SchemaError(
                f"{attributes} is not a permutation of {self.attributes}"
            )
        return self.project(attributes)

    # -- rendering -------------------------------------------------------------
    def __str__(self) -> str:
        header = ", ".join(self.attributes)
        shown = sorted(self.rows)[:8]
        body = "; ".join(str(r) for r in shown)
        suffix = " ..." if len(self.rows) > 8 else ""
        return f"{self.name}({header}) [{len(self.rows)} rows: {body}{suffix}]"


def semijoin_with_keys(
    rel: Relation, shared: tuple[str, ...], keys: frozenset
) -> Relation:
    """Filter *rel* against a prebuilt key set over *shared*.

    The probe loop behind :meth:`Relation.semijoin`, shared with the
    sharded kernel's broadcast mode (every shard against one key set
    built for all of them).  Key convention matches
    :meth:`Relation.key_set`: a single attribute keys by the bare value,
    longer tuples by the value tuple.  Returns ``rel`` itself when
    nothing is filtered, keeping its memoised hash structures alive.
    """
    if not rel.rows:
        return rel
    if len(shared) == 1:
        i = rel._index_of[shared[0]]
        rows = frozenset(row for row in rel.rows if row[i] in keys)
    else:
        pos = [rel._index_of[a] for a in shared]
        rows = frozenset(
            row for row in rel.rows if tuple(row[p] for p in pos) in keys
        )
    if len(rows) == len(rel.rows):
        return rel
    return Relation.trusted(rel.attributes, rows, rel.name)


def probe_join(
    build: Relation,
    probe: Relation,
    build_is_left: bool,
    shared: tuple[str, ...],
    extra_pos: Sequence[int],
    out_attrs: tuple[str, ...],
    name: str,
) -> Relation:
    """The hash-join probe loop over an explicit build/probe assignment.

    ``build``'s table comes from its memoised :meth:`Relation.key_index`,
    so a relation probed by many partners — the broadcast mode of the
    sharded kernel, where every shard probes the same un-co-partitioned
    partner — pays for the table once.  ``build_is_left`` says which side
    contributes the row prefix of the output (``out_attrs`` = left
    attributes + right extras, ``extra_pos`` indexes the extras on the
    right side).  The inner loop runs once per matched pair; the common
    0/1 extra-column shapes skip the per-match generator.
    """
    table = build.key_index(shared)
    single = len(shared) == 1
    probe_pos = [probe._position(a) for a in shared]
    probe_single = probe_pos[0] if single else None

    out_rows: set[Row] = set()
    add = out_rows.add
    get = table.get
    e0 = extra_pos[0] if len(extra_pos) == 1 else None
    for row in probe.rows:
        key = (
            row[probe_single]
            if single
            else tuple(row[p] for p in probe_pos)
        )
        matches = get(key)
        if not matches:
            continue
        if not extra_pos:
            if build_is_left:
                for match in matches:
                    add(match)
            else:
                add(row)
        elif e0 is not None:
            if build_is_left:
                e = row[e0]
                for match in matches:
                    add(match + (e,))
            else:
                for match in matches:
                    add(row + (match[e0],))
        else:
            for match in matches:
                left_row = match if build_is_left else row
                right_row = row if build_is_left else match
                add(left_row + tuple(right_row[p] for p in extra_pos))
    return Relation.trusted(out_attrs, frozenset(out_rows), name)
