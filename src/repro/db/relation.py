"""Relations and relational-algebra operations (paper §2.1).

A relation instance is a finite set of tuples over a named schema.  For
query evaluation the attribute names are query-variable names, so natural
join / semijoin operate positionally on shared variables — exactly the
"common variables acting as join attributes" convention of Lemma 4.6.

The implementation is a straightforward set-of-tuples engine with hash
joins.  It is deliberately simple and fully observable: the evaluation
strategies in :mod:`repro.db.yannakakis` and :mod:`repro.db.evaluate`
record intermediate sizes after every operation, which is how experiments
E15/E16 reproduce the paper's "semijoins keep intermediates small" claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from .._errors import SchemaError

Row = tuple
Value = Hashable


@dataclass(frozen=True)
class Relation:
    """An immutable named relation: schema + set of rows.

    Attributes
    ----------
    attributes:
        Ordered attribute names; must be distinct.
    rows:
        The tuples, each of length ``len(attributes)``.
    name:
        Optional display name.
    """

    attributes: tuple[str, ...]
    rows: frozenset[Row]
    name: str = "r"

    def __post_init__(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(
                f"relation {self.name!r} has duplicate attributes "
                f"{self.attributes}"
            )
        width = len(self.attributes)
        for row in self.rows:
            if len(row) != width:
                raise SchemaError(
                    f"row {row!r} does not match schema {self.attributes} "
                    f"of relation {self.name!r}"
                )

    # -- constructors -----------------------------------------------------
    @staticmethod
    def trusted(
        attributes: tuple[str, ...], rows: frozenset[Row], name: str = "r"
    ) -> "Relation":
        """Construct without re-validating rows (hot-path constructor).

        Every relational-algebra operation below produces rows that match
        its output schema *by construction*, so re-running the
        ``__post_init__`` width check over each result row — once per
        join/semijoin/projection in a Yannakakis pass — is pure overhead.
        Arguments must already be a ``tuple`` and a ``frozenset`` of
        correctly sized tuples; external data should keep entering through
        :meth:`from_rows`, which validates.
        """
        rel = object.__new__(Relation)
        object.__setattr__(rel, "attributes", attributes)
        object.__setattr__(rel, "rows", rows)
        object.__setattr__(rel, "name", name)
        return rel

    @staticmethod
    def from_rows(
        attributes: Sequence[str], rows: Iterable[Sequence[Value]], name: str = "r"
    ) -> "Relation":
        return Relation(
            tuple(attributes), frozenset(tuple(r) for r in rows), name
        )

    @staticmethod
    def empty(attributes: Sequence[str], name: str = "r") -> "Relation":
        return Relation(tuple(attributes), frozenset(), name)

    # -- views --------------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    @cached_property
    def _index_of(self) -> dict[str, int]:
        return {a: i for i, a in enumerate(self.attributes)}

    def column(self, attribute: str) -> set[Value]:
        i = self._position(attribute)
        return {row[i] for row in self.rows}

    def _position(self, attribute: str) -> int:
        try:
            return self._index_of[attribute]
        except KeyError:
            raise SchemaError(
                f"attribute {attribute!r} not in schema {self.attributes} "
                f"of relation {self.name!r}"
            ) from None

    # -- relational algebra --------------------------------------------------
    def project(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """π over the given attributes (duplicates removed by the set)."""
        # The attribute list is caller-supplied, so the schema check of
        # the validating constructor must not be skipped (rows, however,
        # are correct by construction).
        if len(set(attributes)) != len(attributes):
            raise SchemaError(
                f"projection onto duplicate attributes {tuple(attributes)}"
            )
        positions = [self._position(a) for a in attributes]
        rows = frozenset(tuple(row[p] for p in positions) for row in self.rows)
        return Relation.trusted(tuple(attributes), rows, name or self.name)

    def rename(self, mapping: Mapping[str, str], name: str | None = None) -> "Relation":
        """ρ: rename attributes according to *mapping* (others unchanged)."""
        new_attrs = tuple(mapping.get(a, a) for a in self.attributes)
        # Validating constructor on purpose: a non-injective mapping can
        # collapse two attributes into one, which must raise.
        return Relation(new_attrs, self.rows, name or self.name)

    def select(
        self, predicate: Callable[[dict[str, Value]], bool], name: str | None = None
    ) -> "Relation":
        """σ with an arbitrary row predicate over attribute→value dicts."""
        attrs = self.attributes
        rows = frozenset(
            row for row in self.rows if predicate(dict(zip(attrs, row)))
        )
        return Relation.trusted(attrs, rows, name or self.name)

    def select_eq(self, attribute: str, value: Value) -> "Relation":
        """σ attribute = constant."""
        i = self._position(attribute)
        return Relation.trusted(
            self.attributes,
            frozenset(row for row in self.rows if row[i] == value),
            self.name,
        )

    def join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Natural join ⋈ on shared attribute names (hash join).

        The result schema is this relation's attributes followed by the
        other's non-shared attributes, matching textbook natural join.
        """
        shared = [a for a in self.attributes if a in other._index_of]
        left_pos = [self._position(a) for a in shared]
        right_pos = [other._position(a) for a in shared]
        extra = [a for a in other.attributes if a not in self._index_of]
        extra_pos = [other._position(a) for a in extra]

        # Build the hash table on the smaller side.
        if len(self.rows) <= len(other.rows):
            build, probe = self, other
            build_key, probe_key = left_pos, right_pos
            build_is_left = True
        else:
            build, probe = other, self
            build_key, probe_key = right_pos, left_pos
            build_is_left = False

        table: dict[Row, list[Row]] = {}
        for row in build.rows:
            table.setdefault(tuple(row[p] for p in build_key), []).append(row)

        out_rows: set[Row] = set()
        for row in probe.rows:
            key = tuple(row[p] for p in probe_key)
            for match in table.get(key, ()):
                left_row = match if build_is_left else row
                right_row = row if build_is_left else match
                out_rows.add(
                    left_row + tuple(right_row[p] for p in extra_pos)
                )
        return Relation.trusted(
            self.attributes + tuple(extra),
            frozenset(out_rows),
            name or f"({self.name}⋈{other.name})",
        )

    def semijoin(self, other: "Relation") -> "Relation":
        """Semijoin ⋉: keep rows with a join partner in *other*.

        This is the workhorse of Yannakakis' algorithm — it never grows
        the relation, which is why acyclic evaluation stays polynomial.
        """
        shared = [a for a in self.attributes if a in other._index_of]
        if not shared:
            return self if other.rows else Relation.trusted(
                self.attributes, frozenset(), self.name
            )
        left_pos = [self._position(a) for a in shared]
        right_pos = [other._position(a) for a in shared]
        keys = {tuple(row[p] for p in right_pos) for row in other.rows}
        rows = frozenset(
            row for row in self.rows if tuple(row[p] for p in left_pos) in keys
        )
        return Relation.trusted(self.attributes, rows, self.name)

    def union(self, other: "Relation") -> "Relation":
        if self.attributes != other.attributes:
            raise SchemaError(
                f"union of incompatible schemas {self.attributes} and "
                f"{other.attributes}"
            )
        return Relation.trusted(self.attributes, self.rows | other.rows, self.name)

    def intersect(self, other: "Relation") -> "Relation":
        if self.attributes != other.attributes:
            raise SchemaError(
                f"intersection of incompatible schemas {self.attributes} and "
                f"{other.attributes}"
            )
        return Relation.trusted(self.attributes, self.rows & other.rows, self.name)

    def difference(self, other: "Relation") -> "Relation":
        if self.attributes != other.attributes:
            raise SchemaError(
                f"difference of incompatible schemas {self.attributes} and "
                f"{other.attributes}"
            )
        return Relation.trusted(self.attributes, self.rows - other.rows, self.name)

    def reorder(self, attributes: Sequence[str]) -> "Relation":
        """Permute columns into the given attribute order (must be a
        permutation of the schema)."""
        if set(attributes) != set(self.attributes) or len(attributes) != self.arity:
            raise SchemaError(
                f"{attributes} is not a permutation of {self.attributes}"
            )
        return self.project(attributes)

    # -- rendering -------------------------------------------------------------
    def __str__(self) -> str:
        header = ", ".join(self.attributes)
        shown = sorted(self.rows)[:8]
        body = "; ".join(str(r) for r in shown)
        suffix = " ..." if len(self.rows) > 8 else ""
        return f"{self.name}({header}) [{len(self.rows)} rows: {body}{suffix}]"
