"""Binding query atoms to variable-attributed relations.

Evaluating an atom ``r(X, 'a', Y, X)`` against a database means: select the
rows of ``r`` whose second column equals ``'a'`` and whose first and fourth
columns agree, then project to one column per *distinct variable*, named by
the variable.  After binding, every relational operation joins purely on
variable names — the convention all evaluation strategies share.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._errors import EvaluationError, UnknownRelationError
from ..core.atoms import Atom, Constant, Variable
from ..core.query import ConjunctiveQuery
from .database import Database
from .relation import Relation


def bind_atom(atom: Atom, db: Database) -> Relation:
    """The relation of rows of ``rel(atom.predicate)`` consistent with the
    atom's constants and repeated variables, projected onto its variables.

    The result schema lists the atom's distinct variables in order of first
    occurrence.  An atom over an unknown predicate raises
    :class:`EvaluationError` (the query references a relation the database
    does not define).
    """
    if not db.has_predicate(atom.predicate):
        raise UnknownRelationError(
            f"query atom {atom} references unknown relation "
            f"{atom.predicate!r}"
        )
    if db.arity(atom.predicate) != atom.arity:
        raise EvaluationError(
            f"atom {atom} has arity {atom.arity} but relation "
            f"{atom.predicate!r} has arity {db.arity(atom.predicate)}"
        )

    first_position: dict[Variable, int] = {}
    order: list[Variable] = []
    for i, term in enumerate(atom.terms):
        if isinstance(term, Variable) and term not in first_position:
            first_position[term] = i
            order.append(term)

    rows: set[tuple] = set()
    for row in db.rows(atom.predicate):
        consistent = True
        for i, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                if row[i] != term.value:
                    consistent = False
                    break
            else:
                if row[i] != row[first_position[term]]:
                    consistent = False
                    break
        if consistent:
            rows.add(tuple(row[first_position[v]] for v in order))
    # Rows are projections of arity-checked database tuples, so the
    # trusted constructor skips the per-row width re-validation.
    return Relation.trusted(
        tuple(v.name for v in order), frozenset(rows), str(atom)
    )


@dataclass
class BoundQuery:
    """A query with every body atom bound to its variable-relation."""

    query: ConjunctiveQuery
    relations: dict[Atom, Relation]

    @staticmethod
    def bind(query: ConjunctiveQuery, db: Database) -> "BoundQuery":
        return BoundQuery(
            query, {a: bind_atom(a, db) for a in query.atoms}
        )

    def head_attributes(self) -> tuple[str, ...]:
        """Distinct head-variable names in first-occurrence order.

        Repeated head variables collapse to one named column (the engine
        is attribute-named; a duplicated column carries no information).
        """
        names = [
            t.name for t in self.query.head_terms if isinstance(t, Variable)
        ]
        return tuple(dict.fromkeys(names))
