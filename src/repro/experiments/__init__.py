"""Experiment registry: every reproduced figure/claim of the paper.

Run ``python -m repro.experiments E06`` (or ``all``) to print the tables.
"""

from . import (  # noqa: F401
    engine,
    equivalences,
    evaluation,
    figures,
    hardness,
    recognizers,
    streaming,
    widths,
)
from .harness import REGISTRY, Experiment, Table, register, run, run_all

__all__ = [
    "REGISTRY",
    "Experiment",
    "Table",
    "register",
    "run",
    "run_all",
]
