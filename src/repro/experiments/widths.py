"""Experiments E12, E13, E17, E21: width comparisons (§6).

E12 — Theorem 6.1: ``hw(Q) ≤ qw(Q)`` with strictness witnessed by Q5.
E13 — Theorem 6.2: the family Qₙ has qw = hw = 1 but tw(VAIG) = n.
E17 — the §6/[21] applicability comparison across query families.
E21 — heuristic portfolio vs exact search: ordering-based GHTD widths,
      trivial lower bounds, and the ``auto`` portfolio bracket against
      the exact ``k-decomp`` width across the corpus.
"""

from __future__ import annotations

from ..core.detkdecomp import hypertree_width
from ..core.qwsearch import query_width
from ..csp.methods import all_method_widths
from ..generators.families import (
    book_query,
    clique_query,
    cycle_query,
    grid_query,
    hyperwheel_query,
    random_query,
)
from ..generators.paper_queries import all_named_queries, q5, qn
from ..graphs.primal import primal_graph, variable_atom_incidence_graph
from ..graphs.treewidth import exact_treewidth, treewidth_upper_bound
from ..heuristics import decompose, is_valid_ghtd, lower_bound
from .harness import Table, register


@register("E12", "hw(Q) ≤ qw(Q), strict for Q5", "Thm. 6.1")
def e12_hw_vs_qw() -> list[Table]:
    table = Table(
        "Exact hw vs qw over the corpus",
        ("query", "hw", "qw", "hw≤qw", "strict"),
    )
    corpus = dict(all_named_queries())
    corpus["cycle_4"] = cycle_query(4)
    corpus["cycle_6"] = cycle_query(6)
    corpus["book_3"] = book_query(3)
    corpus["Q_3"] = qn(3)
    for seed in range(8):
        q = random_query(n_atoms=5, n_variables=6, seed=200 + seed)
        corpus[q.name] = q
    for name, q in corpus.items():
        hw, _ = hypertree_width(q)
        qw, _ = query_width(q)
        assert hw <= qw, (name, hw, qw)
        table.add(query=name, hw=hw, qw=qw, **{"hw≤qw": True, "strict": hw < qw})
    hw5, _ = hypertree_width(q5())
    qw5, _ = query_width(q5())
    assert (hw5, qw5) == (2, 3)
    table.note("Theorem 6.1(b) witness: hw(Q5)=2 < qw(Q5)=3 (paper values)")
    return [table]


@register("E13", "Qₙ: query width 1, unbounded treewidth", "Thm. 6.2")
def e13_qn_treewidth() -> list[Table]:
    table = Table(
        "The Theorem 6.2 family",
        ("n", "qw", "hw", "tw_vaig", "expected_tw", "tw_primal"),
    )
    for n in range(2, 8):
        q = qn(n)
        qw, _ = query_width(q)
        hw, _ = hypertree_width(q)
        vaig = variable_atom_incidence_graph(q)
        tw = exact_treewidth(vaig) if len(vaig) <= 22 else treewidth_upper_bound(vaig)
        primal = primal_graph(q)
        tw_p = (
            exact_treewidth(primal)
            if len(primal) <= 16
            else treewidth_upper_bound(primal)
        )
        assert qw == 1 and hw == 1
        assert tw == n, (n, tw)
        table.add(n=n, qw=qw, hw=hw, tw_vaig=tw, expected_tw=n, tw_primal=tw_p)
    table.note("paper: tw(VAIG(Qₙ)) = n while qw(Qₙ) = hw(Qₙ) = 1")
    return [table]


@register("E17", "Structural-method comparison across families", "§6, [21]")
def e17_methods() -> list[Table]:
    table = Table(
        "Width assigned by each §6 method (bounded column ⇒ method applies)",
        ("query", "bicomp", "cutset", "cluster", "tw+1", "hinge", "qw", "hw"),
    )
    families = [
        cycle_query(4),
        cycle_query(6),
        cycle_query(8),
        book_query(2),
        book_query(4),
        qn(2),
        qn(3),
        qn(4),
        hyperwheel_query(4, 4),
        hyperwheel_query(6, 4),
        clique_query(4),
        grid_query(3),
    ]
    for q in families:
        compute_qw = len(q.atoms) <= 12
        row = all_method_widths(q, compute_qw=compute_qw).as_row()
        if not compute_qw:
            row["qw"] = "-"
        table.add(**row)
    table.note(
        "growing families: cycles blow up bicomp+hinge; Qₙ blows up every "
        "primal-graph method; hw stays ≤ 2 in all rows — the §6 claim"
    )
    return [table]


@register("E21", "Heuristic portfolio vs exact widths", "§5.2 + practice")
def e21_heuristic_vs_exact() -> list[Table]:
    table = Table(
        "Ordering-based heuristic widths against the exact search",
        ("query", "lb", "heuristic", "exact", "auto", "gap", "heur_method"),
    )
    corpus = dict(all_named_queries())
    corpus["Q_4"] = qn(4)
    corpus["cycle_6"] = cycle_query(6)
    corpus["cycle_9"] = cycle_query(9)
    corpus["book_4"] = book_query(4)
    corpus["clique_5"] = clique_query(5)
    corpus["grid_3"] = grid_query(3)
    corpus["hyperwheel_5_4"] = hyperwheel_query(5, 4)
    for seed in range(4):
        q = random_query(n_atoms=6, n_variables=7, seed=300 + seed)
        corpus[q.name] = q
    for name, q in corpus.items():
        heur = decompose(q, mode="heuristic")
        assert is_valid_ghtd(heur.decomposition), name
        exact, _ = hypertree_width(q)
        auto = decompose(q, mode="auto")
        assert auto.width <= exact, (name, auto.width, exact)
        assert lower_bound(q) <= exact, name
        table.add(
            query=name,
            lb=heur.lower,
            heuristic=heur.width,
            exact=exact,
            auto=auto.width,
            gap=heur.width - exact,
            heur_method=heur.method,
        )
    table.note(
        "heuristic is a GHTD width (ghw ≤ hw, so gap may be ≤ 0); auto "
        "never exceeds exact — the polynomial pipeline brackets the "
        "exponential one"
    )
    return [table]
