"""Experiments E11, E14: the §7 NP-hardness machinery.

E14 — Lemma 7.3: strict (m,k)-3PS constructions, strictness verified
exhaustively, with the O(m² + km) size scaling.
E11 — Theorem 3.4 / Fig. 11: the XC3S reduction on the paper's running
example and on random instances; a width-4 decomposition constructed from
an exact cover validates, and the construction fails for every non-cover
selection (reduction soundness).
"""

from __future__ import annotations

from itertools import combinations

from ..reductions.qw_hardness import build_reduction, decomposition_from_cover
from ..reductions.three_ps import strict_3ps
from ..reductions.xc3s import paper_running_example, random_instance
from .harness import Table, register


@register("E14", "Strict (m,k)-3-partitioning systems", "Lemma 7.3")
def e14_three_ps() -> list[Table]:
    table = Table(
        "Lemma 7.3 construction",
        ("m", "k", "base_size", "partitions", "valid", "strict", "min_class"),
    )
    for m, k in [(1, 1), (2, 2), (3, 2), (5, 2), (8, 2), (4, 3), (3, 5)]:
        s = strict_3ps(m, k)
        assert not s.validate()
        assert s.is_mk(m, k)
        assert s.is_strict
        table.add(
            m=m,
            k=k,
            base_size=len(s.base),
            partitions=len(s.partitions),
            valid=True,
            strict=True,
            min_class=min(len(c) for c in s.classes),
        )
    table.note("base size = 4k + 2m + 3 = O(m + k); strictness checked over all class triples")
    return [table]


@register("E11", "XC3S → qw ≤ 4 reduction (running example + soundness)", "Thm. 3.4, Fig. 11")
def e11_reduction() -> list[Table]:
    instance = paper_running_example()
    reduction = build_reduction(instance)
    table = Table(
        "The running example Ie",
        ("property", "value"),
    )
    table.add(property="elements |R|", value=len(instance.elements))
    table.add(property="triples |D|", value=len(instance.triples))
    table.add(property="query atoms", value=len(reduction.query.atoms))
    table.add(property="query variables", value=len(reduction.query.variables))
    covers = instance.all_exact_covers()
    table.add(property="exact covers", value=str(covers))
    assert covers == [[1, 3]], covers
    table.note("paper: D2 and D4 form the unique partition of Re")

    qd = decomposition_from_cover(reduction, covers[0])
    assert qd.width == 4 and qd.is_valid
    table.add(property="constructed decomposition width", value=qd.width)
    table.add(property="constructed decomposition valid", value=qd.is_valid)

    soundness = Table(
        "Soundness: the Fig.-11 construction validates iff the selection is an exact cover",
        ("selection", "is_cover", "decomposition_valid", "agree"),
    )
    s = instance.s
    for selection in combinations(range(len(instance.triples)), s):
        is_cover = instance.verify_cover(selection)
        candidate = decomposition_from_cover(reduction, list(selection))
        valid = candidate.is_valid and candidate.width <= 4
        soundness.add(
            selection=str(list(selection)),
            is_cover=is_cover,
            decomposition_valid=valid,
            agree=is_cover == valid,
        )
        assert is_cover == valid

    randoms = Table(
        "Random instances: solvable ⟺ construction succeeds",
        ("seed", "s", "triples", "solvable", "witness_valid"),
    )
    for seed in range(4):
        inst = random_instance(s=2, extra_triples=3, seed=seed, solvable=seed % 2 == 0)
        red = build_reduction(inst)
        cover = inst.exact_cover()
        if cover is None:
            randoms.add(
                seed=seed,
                s=inst.s,
                triples=len(inst.triples),
                solvable=False,
                witness_valid="-",
            )
            continue
        witness = decomposition_from_cover(red, cover)
        assert witness.is_valid and witness.width == 4
        randoms.add(
            seed=seed,
            s=inst.s,
            triples=len(inst.triples),
            solvable=True,
            witness_valid=True,
        )
    return [table, soundness, randoms]
