"""Experiments E08, E15, E16: evaluation complexity (§4.2, Lemma 4.6).

E08 — the Lemma 4.6 transformation: answer equivalence of Q and Q′ and
the ``O((‖Q‖+‖HD‖)·r^k)`` size bound measured against the database size.
E15 — the tractability headline: decomposition-guided evaluation vs the
naive join and backtracking baselines on cyclic queries as the database
grows (time and max intermediate relation size).
E16 — Yannakakis on acyclic queries: scaling and output-polynomial
enumeration.
"""

from __future__ import annotations

import time

from ..core.detkdecomp import hypertree_width
from ..db.evaluate import evaluate, evaluate_boolean, lemma46_transform
from ..db.stats import EvalStats
from ..generators.families import cycle_query, path_query
from ..generators.paper_queries import q1, q2, q5
from ..generators.workloads import random_database
from .harness import Table, register


@register("E08", "Lemma 4.6: ⟨Q′, DB′, JT⟩ equivalence and size bound", "Lemma 4.6, Fig. 8")
def e08_lemma46() -> list[Table]:
    equivalence = Table(
        "Answer equivalence of Q and Q′ (random databases)",
        ("query", "seed", "r", "answer_q", "answer_qprime", "agree"),
    )
    for q in (q1(), q5()):
        width, hd = hypertree_width(q)
        for seed in range(4):
            db = random_database(
                q, domain_size=4, tuples_per_relation=16, seed=seed,
                plant_answer=seed % 2 == 0,
            )
            direct = evaluate_boolean(q, db, method="naive")
            transformed = lemma46_transform(q, db, hd)
            from ..db.yannakakis import boolean_eval

            via = boolean_eval(transformed.jt, transformed.relations)
            equivalence.add(
                query=q.name,
                seed=seed,
                r=db.max_relation_size(),
                answer_q=direct,
                answer_qprime=via,
                agree=direct == via,
            )
            assert direct == via

    bound = Table(
        "Size of ⟨Q′, DB′, JT⟩ vs the r^k bound (Q5, k = 2)",
        ("r", "transformed_size", "bound_units", "ratio"),
    )
    q = q5()
    width, hd = hypertree_width(q)
    base = len(q.atoms) + len(hd)
    for tuples in (8, 16, 32, 64, 128):
        db = random_database(q, domain_size=8, tuples_per_relation=tuples, seed=1)
        r = db.max_relation_size()
        transformed = lemma46_transform(q, db, hd)
        size = transformed.size()
        cap = base * (r ** width)
        bound.add(
            r=r,
            transformed_size=size,
            bound_units=cap,
            ratio=size / cap,
        )
        assert size <= 40 * cap  # generous constant; the shape is what matters
    bound.note(
        "paper: ‖⟨Q′,DB′,JT⟩‖ = O((‖Q‖+‖HD‖)·r^k); the measured/bound "
        "ratio stays bounded (≈1) as r grows — linear in r^k units"
    )
    return [equivalence, bound]


@register("E15", "Decomposition-guided vs naive evaluation on cyclic queries", "Thms. 4.7/4.8, Cor. 5.19")
def e15_evaluation() -> list[Table]:
    table = Table(
        "Boolean evaluation of the 6-cycle (planted answer) as DB grows",
        (
            "tuples",
            "t_decomp_ms",
            "t_naive_ms",
            "t_backtrack_ms",
            "max_int_decomp",
            "max_int_naive",
        ),
    )
    q = cycle_query(6)
    _, hd = hypertree_width(q)
    for tuples in (20, 40, 80, 160):
        db = random_database(
            q, domain_size=max(4, tuples // 8), tuples_per_relation=tuples,
            seed=3, plant_answer=True,
        )
        row: dict[str, float | int] = {"tuples": tuples}
        for method, key in (
            ("decomposition", "decomp"),
            ("naive", "naive"),
            ("backtracking", "backtrack"),
        ):
            stats = EvalStats()
            start = time.perf_counter()
            result = evaluate_boolean(
                q, db, method=method, hd=hd if method == "decomposition" else None,
                stats=stats,
            )
            elapsed = (time.perf_counter() - start) * 1000
            assert result is True
            row[f"t_{key}_ms"] = round(elapsed, 2)
            if method in ("decomposition", "naive"):
                row[f"max_int_{key}"] = stats.max_intermediate
        table.add(**row)
    table.note(
        "the paper's shape: decomposition intermediates stay O(r^k) while "
        "naive join intermediates grow much faster"
    )

    unsat = Table(
        "The same comparison on sparse 'no' instances",
        ("tuples", "t_decomp_ms", "t_naive_ms", "t_backtrack_ms", "answer"),
    )
    for tuples in (40, 80, 160):
        db = random_database(
            q,
            domain_size=tuples * 4,  # sparse: almost surely no 6-cycle
            tuples_per_relation=tuples,
            seed=11,
            plant_answer=False,
        )
        row: dict[str, float | int | bool] = {"tuples": tuples}
        answers = set()
        for method, key in (
            ("decomposition", "decomp"),
            ("naive", "naive"),
            ("backtracking", "backtrack"),
        ):
            start = time.perf_counter()
            result = evaluate_boolean(
                q, db, method=method, hd=hd if method == "decomposition" else None
            )
            row[f"t_{key}_ms"] = round((time.perf_counter() - start) * 1000, 2)
            answers.add(result)
        assert len(answers) == 1
        row["answer"] = answers.pop()
        unsat.add(**row)
    unsat.note(
        "on sparse 'no' instances every strategy is fast (semijoins/joins "
        "empty out immediately); backtracking degrades fastest with size, "
        "while the dense planted instances above are where the paper's "
        "polynomial guarantee separates decomposition from naive joins"
    )
    return [table, unsat]


@register("E16", "Yannakakis on acyclic queries", "§2.1, [44]")
def e16_yannakakis() -> list[Table]:
    boolean = Table(
        "Boolean Q2 as the university DB grows",
        ("tuples", "t_yannakakis_ms", "t_naive_ms", "max_int_yk", "max_int_naive"),
    )
    q = q2()
    for tuples in (50, 100, 200, 400):
        db = random_database(q, domain_size=tuples // 5, tuples_per_relation=tuples, seed=2, plant_answer=True)
        row: dict[str, float | int] = {"tuples": tuples}
        for method, key in (("yannakakis", "yk"), ("naive", "naive")):
            stats = EvalStats()
            start = time.perf_counter()
            result = evaluate_boolean(q, db, method=method, stats=stats)
            column = "t_yannakakis_ms" if key == "yk" else "t_naive_ms"
            row[column] = round((time.perf_counter() - start) * 1000, 2)
            row[f"max_int_{key}"] = stats.max_intermediate
            assert result is True
        boolean.add(**row)

    output_poly = Table(
        "Output-polynomial enumeration on a path query (Theorem 4.8 machinery)",
        ("path_len", "tuples", "answers", "max_intermediate", "t_ms"),
    )
    from ..core.atoms import Variable

    for n in (3, 5, 7):
        q = path_query(n)
        q = q.with_head((Variable("X1"), Variable(f"X{n+1}")))
        db = random_database(q, domain_size=12, tuples_per_relation=60, seed=4)
        stats = EvalStats()
        start = time.perf_counter()
        answers = evaluate(q, db, method="yannakakis", stats=stats)
        elapsed = (time.perf_counter() - start) * 1000
        output_poly.add(
            path_len=n,
            tuples=60,
            answers=len(answers),
            max_intermediate=stats.max_intermediate,
            t_ms=round(elapsed, 2),
        )
    output_poly.note(
        "after full reduction, intermediates are bounded by node-size × answers"
    )
    return [boolean, output_poly]
