"""CLI entry point: ``python -m repro.experiments [id ... | all | list]``."""

import sys

from .harness import REGISTRY, run, run_all


def main(argv: list[str]) -> int:
    if not argv or argv == ["list"]:
        print("Available experiments:")
        for exp_id in sorted(REGISTRY):
            exp = REGISTRY[exp_id]
            print(f"  {exp_id}: {exp.title}  [{exp.paper_ref}]")
        print("\nUsage: python -m repro.experiments <id ...> | all")
        return 0
    if argv == ["all"]:
        print(run_all())
        return 0
    for exp_id in argv:
        print(run(exp_id))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
