"""Experiment E23: semijoin locality in streaming form.

The paper's explanation of acyclic tractability is that semijoins keep
intermediates small (E15/E16 measure it in batch mode).  The incremental
subsystem inherits a streaming version of the claim: because every
maintained tuple carries its support count, a delta batch touches only
the tuples its changes actually support — so per-batch work should track
the *delta* size and stay flat as the *database* grows.

The experiment registers the same path view over databases of increasing
size, applies identical single-tuple update streams, and reports the
average touched-tuple count per batch next to what a from-scratch
re-execution produces; the assertions pin the claim (touched-per-batch
bounded and database-size independent, answers always equal to
recomputation).
"""

from __future__ import annotations

from ..core.atoms import Variable
from ..db.database import Database
from ..engine import Engine
from ..generators.families import path_query
from ..generators.workloads import update_workload
from ..incremental import LiveEngine
from .harness import Table, register


def _chain_database(n_rows: int) -> Database:
    """Overlapping integer chains so the path query has answers at every
    scale (row count = n_rows, one binary relation ``e``)."""
    db = Database()
    for i in range(n_rows):
        db.add_fact("e", i % (n_rows // 2 + 1), (i + 1) % (n_rows // 2 + 1))
    return db


@register("E23", "Streaming semijoin locality: work tracks the delta, "
          "not the database", "§1.1 / incremental subsystem")
def e23_streaming_locality() -> list[Table]:
    query = path_query(3)
    head = tuple(sorted(query.variables, key=lambda v: v.name)[:2])
    query = query.with_head(head)
    assert all(isinstance(v, Variable) for v in head)

    sizes = [400, 1600, 6400]
    n_batches = 12
    table = Table(
        "Identical single-tuple streams over growing databases",
        ("db_rows", "batches", "touched/batch", "recompute tuples/batch",
         "ratio", "answers"),
    )
    touched_per_size: list[float] = []
    for n_rows in sizes:
        db = _chain_database(n_rows)
        stream = update_workload(
            db, n_batches, batch_size=1, delete_ratio=0.4,
            reinsert_ratio=0.5, seed=23,
        )
        live = LiveEngine(db=db)
        handle = live.register(query)
        loaded = handle.stats.notes["touched_rows"]

        fresh = Engine()
        recompute_tuples = 0
        for delta in stream:
            live.apply(delta)
            result = fresh.execute(query, live.db)
            recompute_tuples += result.stats.total_tuples_produced
            assert handle.answers().rows == result.answer.rows

        touched = handle.stats.notes["touched_rows"] - loaded
        touched_avg = touched / n_batches
        recompute_avg = recompute_tuples / n_batches
        touched_per_size.append(touched_avg)
        table.add(
            db_rows=db.tuple_count(),
            batches=n_batches,
            **{
                "touched/batch": round(touched_avg, 1),
                "recompute tuples/batch": round(recompute_avg, 1),
                "ratio": round(recompute_avg / max(touched_avg, 1e-9), 1),
            },
            answers=len(handle.answers()),
        )

    # The claim: maintenance work per single-tuple batch does not scale
    # with the database (recomputation does).  The 16x larger database
    # must not cost even 4x the touched tuples.
    assert touched_per_size[-1] < 4 * max(touched_per_size[0], 1.0), (
        touched_per_size
    )
    table.note(
        "maintained answers equal Engine.execute recomputation after "
        "every batch; touched/batch stays flat while recompute tuples "
        "grow with the database"
    )
    return [table]
