"""Experiments E10, E18: the hw ≤ k recognisers.

E10 — the Appendix-B Datalog program (well-founded semantics) agrees with
det-k-decomp on a corpus of (query, k) pairs; its base-relation sizes grow
polynomially (the deterministic shadow of the LOGCFL bound).
E18 — ablation of the det-k-decomp candidate-pool strategy: the complete
``all`` enumeration and the pruned ``relevant`` pool give identical
verdicts, with the pruned pool exploring fewer candidates.
"""

from __future__ import annotations

from ..core.detkdecomp import SearchStats, decompose_k
from ..datalog.hw_program import build_hw_program
from ..generators.families import (
    book_query,
    cycle_query,
    path_query,
    random_query,
)
from ..generators.paper_queries import all_named_queries, qn
from .harness import Table, register


def _corpus() -> dict[str, object]:
    corpus: dict[str, object] = dict(all_named_queries())
    corpus["cycle_4"] = cycle_query(4)
    corpus["cycle_5"] = cycle_query(5)
    corpus["path_4"] = path_query(4)
    corpus["book_2"] = book_query(2)
    corpus["Q_2"] = qn(2)
    for seed in range(6):
        q = random_query(n_atoms=5, n_variables=6, seed=300 + seed)
        corpus[q.name] = q
    return corpus


@register("E10", "Appendix-B Datalog recogniser ⟺ k-decomp", "App. B, Thm. 5.14")
def e10_datalog() -> list[Table]:
    table = Table(
        "Agreement on the corpus (k = 1, 2, 3)",
        ("query", "k", "datalog", "k_decomp", "agree", "k_vertices", "meets_rows"),
    )
    for name, q in _corpus().items():
        for k in (1, 2, 3):
            inst = build_hw_program(q, k)
            datalog = inst.decide()
            direct = decompose_k(q, k) is not None
            assert datalog == direct, (name, k)
            table.add(
                query=name,
                k=k,
                datalog=datalog,
                k_decomp=direct,
                agree=True,
                k_vertices=len(inst.edb["k_vertex"]),
                meets_rows=len(inst.edb["meets_condition"]),
            )
    table.note(
        "base relations grow as O(m^k) k-vertices — the polynomial witness "
        "of the LOGCFL upper bound realised deterministically"
    )
    return [table]


@register("E18", "Candidate-pool ablation: 'all' vs 'relevant'", "§5.2 (implementation)")
def e18_ablation() -> list[Table]:
    table = Table(
        "det-k-decomp strategies on the corpus",
        (
            "query",
            "k",
            "verdict",
            "agree",
            "cand_all",
            "cand_relevant",
            "saving",
        ),
    )
    for name, q in _corpus().items():
        for k in (1, 2, 3):
            stats_all, stats_rel = SearchStats(), SearchStats()
            r_all = decompose_k(q, k, strategy="all", stats=stats_all)
            r_rel = decompose_k(q, k, strategy="relevant", stats=stats_rel)
            assert (r_all is None) == (r_rel is None), (name, k)
            if r_all is not None:
                assert r_all.is_valid and r_rel.is_valid
            saving = (
                1 - stats_rel.candidates_tried / stats_all.candidates_tried
                if stats_all.candidates_tried
                else 0.0
            )
            table.add(
                query=name,
                k=k,
                verdict=r_all is not None,
                agree=True,
                cand_all=stats_all.candidates_tried,
                cand_relevant=stats_rel.candidates_tried,
                saving=f"{saving:.0%}",
            )
    table.note("identical verdicts everywhere; 'relevant' prunes the candidate space")

    scaling = Table(
        "Deterministic certificate growth on n-cycles at k = 2 "
        "(the polynomial shadow of the LOGCFL tree-size bound, Lemma 5.15)",
        ("n", "subproblems", "candidates", "subproblems_per_n"),
    )
    previous = None
    for n in (4, 6, 8, 10, 12, 14):
        stats = SearchStats()
        result = decompose_k(cycle_query(n), 2, stats=stats)
        assert result is not None
        scaling.add(
            n=n,
            subproblems=stats.subproblems,
            candidates=stats.candidates_tried,
            subproblems_per_n=round(stats.subproblems / n, 2),
        )
        if previous is not None:
            # polynomial, not exponential: doubling-ish n must not square
            # the certificate count by more than a small power.
            assert stats.subproblems <= 16 * previous
        previous = stats.subproblems
    scaling.note(
        "subproblems grow polynomially with n (linear-ish per-n ratio), "
        "matching the ≤ poly accepting-tree-size bound"
    )
    return [table, scaling]
