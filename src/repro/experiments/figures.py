"""Experiments E01–E07, E09: the paper's worked figures.

Each experiment recomputes a figure's object with the library's algorithms
(rather than transcribing the figure) and validates it, then renders it in
the figure's style.  Width values are asserted against the paper's claims.
"""

from __future__ import annotations

from ..core.acyclicity import is_acyclic, join_tree
from ..core.detkdecomp import hypertree_width
from ..core.hypertree import HypertreeDecomposition
from ..core.normalform import normalize
from ..core.qwsearch import decompose_qw, query_width
from ..generators.paper_queries import all_named_queries, q1, q2, q3, q4, q5
from ..generators.families import random_query
from .harness import Table, register


@register("E01", "Join trees of the acyclic queries Q2 and Q3", "Figs. 1, 3")
def e01_join_trees() -> list[Table]:
    table = Table(
        "GYO join trees",
        ("query", "acyclic", "nodes", "valid"),
    )
    trees = []
    for q in (q2(), q3()):
        jt = join_tree(q)
        assert jt is not None, f"{q.name} must be acyclic"
        table.add(
            query=q.name, acyclic=is_acyclic(q), nodes=len(jt), valid=jt.is_valid
        )
        trees.append(f"{q.name}:\n{jt.render()}")
    table.note("paper: Q2 and Q3 are acyclic; Q1 is cyclic and has no join tree")
    assert join_tree(q1()) is None
    table.note("verified: join_tree(Q1) is None")
    for t in trees:
        table.note(t.replace("\n", "\n    "))
    return [table]


@register("E02", "Width-2 query decompositions of Q1 and Q4", "Figs. 2, 4")
def e02_qw_q1_q4() -> list[Table]:
    table = Table(
        "Exact query-width of the small cyclic examples",
        ("query", "qw", "paper", "valid", "pure", "nodes"),
    )
    for q, expected in ((q1(), 2), (q4(), 2)):
        width, qd = query_width(q)
        assert width == expected, (q.name, width)
        assert decompose_qw(q, expected - 1) is None
        table.add(
            query=q.name,
            qw=width,
            paper=expected,
            valid=qd.is_valid,
            pure=qd.is_pure,
            nodes=len(qd),
        )
        table.note(f"{q.name} decomposition:\n    " + qd.render().replace("\n", "\n    "))
    table.note("lower bounds certified by exhaustive search at k−1")
    return [table]


@register("E05", "qw(Q5) = 3: no width-2 decomposition exists", "Ex. 3.5, Fig. 5, §3.3")
def e05_qw_q5() -> list[Table]:
    q = q5()
    table = Table("Query-width of the running example Q5", ("k", "decomposable"))
    assert decompose_qw(q, 2) is None
    table.add(k=2, decomposable=False)
    qd = decompose_qw(q, 3)
    assert qd is not None and qd.is_valid
    table.add(k=3, decomposable=True)
    table.note("paper §3.3: Q5 has no query decomposition of width 2")
    table.note("width-3 witness:\n    " + qd.render().replace("\n", "\n    "))
    return [table]


@register("E06", "hw of the paper queries; acyclic ⟺ hw = 1", "Ex. 4.3, Fig. 6, Thm. 4.5")
def e06_hw() -> list[Table]:
    table = Table(
        "Hypertree widths (det-k-decomp)",
        ("query", "hw", "paper", "valid", "normal_form", "nodes"),
    )
    expected = {"Q1": 2, "Q2": 1, "Q3": 1, "Q4": 2, "Q5": 2}
    for name, q in all_named_queries().items():
        width, hd = hypertree_width(q)
        assert width == expected[name], (name, width)
        table.add(
            query=name,
            hw=width,
            paper=expected[name],
            valid=hd.is_valid,
            normal_form=hd.is_normal_form,
            nodes=len(hd),
        )
    theorem = Table(
        "Theorem 4.5 on random queries: acyclic ⟺ hw = 1",
        ("seed", "atoms", "acyclic", "hw", "agree"),
    )
    for seed in range(12):
        q = random_query(n_atoms=5 + seed % 3, n_variables=6, seed=seed)
        acyclic = is_acyclic(q)
        width, _ = hypertree_width(q)
        theorem.add(
            seed=seed,
            atoms=len(q.atoms),
            acyclic=acyclic,
            hw=width,
            agree=acyclic == (width == 1),
        )
        assert acyclic == (width == 1)
    return [table, theorem]


@register("E07", "Atom representation of HD5", "Fig. 7")
def e07_atom_representation() -> list[Table]:
    q = q5()
    width, hd = hypertree_width(q)
    assert width == 2
    table = Table("Atom representation (anonymous '_' variables)", ("property", "value"))
    table.add(property="width", value=width)
    table.add(property="complete", value=hd.complete().is_complete)
    table.note("HD5 rendered as in Fig. 7:\n    " + hd.render_atoms().replace("\n", "\n    "))
    return [table]


@register("E09", "Normal-form transformation", "Fig. 9, Thm. 5.4, Lemma 5.7")
def e09_normal_form() -> list[Table]:
    table = Table(
        "normalize() on deliberately non-NF decompositions",
        ("query", "width_in", "width_out", "nf_in", "nf_out", "nodes_in", "nodes_out", "bound"),
    )
    cases = []
    for name, q in all_named_queries().items():
        width, hd = hypertree_width(q)
        bloated = _bloat(hd)
        cases.append((q, bloated))
    for seed in range(6):
        q = random_query(n_atoms=6, n_variables=7, seed=100 + seed)
        _, hd = hypertree_width(q)
        cases.append((q, _bloat(hd)))
    for q, hd in cases:
        assert hd.is_valid, hd.validate()
        out = normalize(hd)
        assert out.is_valid
        assert out.is_normal_form, out.normal_form_violations()
        assert out.width <= hd.width
        assert len(out) <= max(1, len(q.variables))
        table.add(
            query=q.name,
            width_in=hd.width,
            width_out=out.width,
            nf_in=hd.is_normal_form,
            nf_out=True,
            nodes_in=len(hd),
            nodes_out=len(out),
            bound=f"≤{len(q.variables)} vars",
        )
    table.note("Lemma 5.7: NF decompositions have ≤ |var(Q)| vertices — holds in every row")
    return [table]


def _bloat(hd: HypertreeDecomposition) -> HypertreeDecomposition:
    """Make a valid decomposition non-NF by duplicating the root above
    itself (the redundancy Fig. 9 eliminates)."""
    from ..core.hypertree import HTNode

    copy = hd.root.copy_tree()
    new_root = HTNode(copy.chi, copy.lam, (copy,))
    return HypertreeDecomposition(hd.query, new_root)
