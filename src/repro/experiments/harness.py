"""Experiment registry and table rendering.

Every reproduced figure/claim of the paper is an :class:`Experiment` that
produces one or more :class:`Table` objects (plus optional rendered trees).
``python -m repro.experiments <id>`` runs one; ``all`` runs the suite and
prints the paper-vs-measured summary recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable


@dataclass
class Table:
    """A printable experiment result: aligned columns plus free-form notes."""

    title: str
    columns: tuple[str, ...]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **values) -> None:
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = {c: len(c) for c in self.columns}
        rendered_rows: list[list[str]] = []
        for row in self.rows:
            cells = []
            for c in self.columns:
                value = row.get(c, "")
                text = f"{value:.4g}" if isinstance(value, float) else str(value)
                widths[c] = max(widths[c], len(text))
                cells.append(text)
            rendered_rows.append(cells)
        header = " | ".join(c.ljust(widths[c]) for c in self.columns)
        rule = "-+-".join("-" * widths[c] for c in self.columns)
        lines = [self.title, header, rule]
        for cells in rendered_rows:
            lines.append(
                " | ".join(
                    cell.ljust(widths[c]) for cell, c in zip(cells, self.columns)
                )
            )
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)


@dataclass
class Experiment:
    """One reproduced artifact of the paper."""

    exp_id: str
    title: str
    paper_ref: str
    runner: Callable[[], list[Table]]

    def run(self) -> list[Table]:
        return self.runner()

    def render(self) -> str:
        tables = self.run()
        head = f"== {self.exp_id}: {self.title}  [{self.paper_ref}] =="
        return "\n\n".join([head] + [t.render() for t in tables])


REGISTRY: dict[str, Experiment] = {}


def register(exp_id: str, title: str, paper_ref: str):
    """Decorator registering an experiment runner under *exp_id*."""

    def wrap(fn: Callable[[], list[Table]]) -> Callable[[], list[Table]]:
        REGISTRY[exp_id] = Experiment(exp_id, title, paper_ref, fn)
        return fn

    return wrap


def run(exp_id: str) -> str:
    """Render one experiment by id (``KeyError`` lists valid ids)."""
    if exp_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(REGISTRY)}"
        )
    return REGISTRY[exp_id].render()


def run_all(ids: Iterable[str] | None = None) -> str:
    chosen = sorted(REGISTRY) if ids is None else list(ids)
    return "\n\n\n".join(run(i) for i in chosen)
