"""Experiment E22: amortised throughput of the plan-caching engine.

The serving regime the engine targets: many queries, few structural
shapes.  A workload of renamed variants is pushed through the
:class:`repro.engine.Engine` twice — the cold pass pays one portfolio
decomposition per *shape*, the warm pass none at all (asserted via the
cache counters) — and through a cache-disabled engine that decomposes
every query from scratch, the hand-wired per-query pipeline the repo had
before the engine existed.  Answers are cross-checked against the naive
join baseline on every request.
"""

from __future__ import annotations

import time

from ..db.naive import naive_join_eval
from ..engine import Engine, fingerprint
from ..generators.workloads import query_workload, random_database
from .harness import Table, register


@register("E22", "Plan cache amortisation: decompose once, execute many",
          "Lemma 4.6 + engine")
def e22_engine_amortization() -> list[Table]:
    n_queries, n_shapes = 60, 6
    workload = query_workload(n_queries, n_shapes, seed=5)
    requests = [
        (q, random_database(q, domain_size=7, tuples_per_relation=14,
                            seed=300 + i, plant_answer=True))
        for i, q in enumerate(workload)
    ]
    shapes = len({fingerprint(q) for q in workload})
    assert shapes <= n_shapes, (shapes, n_shapes)

    engine = Engine(cache_size=64)
    started = time.monotonic()
    # workers=1 keeps the cold pass deterministic: concurrent misses of
    # one shape would each (benignly) decompose it, blurring the counter.
    cold = engine.execute_many(requests, workers=1)
    cold_seconds = time.monotonic() - started
    decompositions_cold = engine.decompositions
    assert decompositions_cold == shapes, (decompositions_cold, shapes)

    started = time.monotonic()
    warm = engine.execute_many(requests)
    warm_seconds = time.monotonic() - started
    # The tentpole claim: a warm second pass performs ZERO decomposition
    # searches — every plan is a certified cache transport.
    assert engine.decompositions == decompositions_cold
    assert warm.cache_hits == n_queries and warm.cache_misses == 0

    uncached = Engine(cache_size=0)
    started = time.monotonic()
    baseline = uncached.execute_many(requests)
    baseline_seconds = time.monotonic() - started
    assert uncached.decompositions == n_queries

    for (q, db), result in zip(requests, warm.results):
        naive = naive_join_eval(q, db)
        assert result.answer.rows == naive.rows, q.name

    table = Table(
        "Two passes over one workload: engine vs per-query decomposition",
        ("pass", "queries", "shapes", "decompositions", "hits", "hit_rate",
         "seconds", "qps"),
    )
    for label, batch, seconds, decomps in (
        ("cold (cache empty)", cold, cold_seconds, decompositions_cold),
        ("warm (cache full)", warm, warm_seconds, 0),
        ("no cache (baseline)", baseline, baseline_seconds, n_queries),
    ):
        table.add(
            **{"pass": label},
            queries=len(batch),
            shapes=shapes,
            decompositions=decomps,
            hits=batch.cache_hits,
            hit_rate=round(batch.cache_hits / len(batch), 3),
            seconds=round(seconds, 4),
            qps=round(len(batch) / seconds, 1) if seconds > 0 else float("inf"),
        )
    table.note(
        f"warm pass answered all {n_queries} queries from {shapes} cached "
        "plans; answers verified against the naive join on every request"
    )
    table.note(
        "merged warm-pass stats: " + str(warm.stats.as_row())
    )
    return [table]
