"""Experiments E19, E20: the paper's equivalent problems and the game
characterisation.

E19 — §1.1/§1.4: query containment ``Q1 ⊑ Q2`` through the decomposition
pipeline (tractable for bounded hw(Q2)), cross-validated against naive
evaluation, plus the tuple-of-query problem.
E20 — §1.4 / [23]: the monotone robber-and-marshals game number equals
hw(Q), and the Tarjan–Yannakakis MCS acyclicity test agrees with GYO.
"""

from __future__ import annotations

from ..core.acyclicity import is_acyclic
from ..core.containment import contains, homomorphism, is_homomorphism
from ..core.detkdecomp import hypertree_width
from ..core.games import (
    marshals_have_winning_strategy,
    marshals_width,
    strategy_to_decomposition,
)
from ..core.mcs import is_acyclic_mcs
from ..core.parser import parse_query
from ..generators.families import book_query, cycle_query, random_query
from ..generators.paper_queries import all_named_queries, qn
from .harness import Table, register


@register("E19", "Query containment via bounded hypertree-width", "§1.1, §1.4")
def e19_containment() -> list[Table]:
    table = Table(
        "Containment pairs (Q1 ⊑ Q2 decided over the canonical database)",
        ("pair", "hw_q2", "decomposition", "naive", "agree"),
    )
    triangle = parse_query("e(X, Y), e(Y, Z), e(Z, X)", name="C3")
    path2 = parse_query("e(A, B), e(B, C)", name="P2")
    c6 = cycle_query(6)
    pairs = [
        ("C3 ⊑ P2", path2, triangle, True),
        ("P2 ⊑ C3", triangle, path2, False),
        ("C6 ⊑ C3", triangle, c6, False),
        ("C3 ⊑ C6", c6, triangle, True),
    ]
    for label, q2, q1, expected in pairs:
        hw2, _ = hypertree_width(q2)
        via_decomp = contains(q2, q1, method="decomposition")
        via_naive = contains(q2, q1, method="naive")
        assert via_decomp == via_naive == expected, label
        table.add(
            pair=label,
            hw_q2=hw2,
            decomposition=via_decomp,
            naive=via_naive,
            agree=True,
        )
    table.note("C3 ⊑ C6 via the wrap-around homomorphism C6 → C3")
    witness = homomorphism(path2, triangle)
    assert witness is not None and is_homomorphism(witness, path2, triangle)
    table.note(
        "homomorphism P2 → C3 witness: "
        + ", ".join(f"{k.name}↦{v}" for k, v in sorted(witness.items(), key=lambda i: i[0].name))
    )

    dropped = Table(
        "Random relax-one-atom pairs: Q ⊑ relaxed(Q) always holds",
        ("seed", "atoms", "holds_decomp", "holds_naive"),
    )
    from ..core.query import ConjunctiveQuery

    for seed in range(6):
        q = random_query(n_atoms=4, n_variables=5, seed=400 + seed)
        relaxed = ConjunctiveQuery(q.body[:-1], (), "relaxed")
        a = contains(relaxed, q, method="decomposition")
        b = contains(relaxed, q, method="naive")
        assert a and b
        dropped.add(seed=seed, atoms=len(q.atoms), holds_decomp=a, holds_naive=b)
    return [table, dropped]


@register("E20", "Robber-and-marshals game + MCS acyclicity", "§1.4, [23], [39]")
def e20_games_mcs() -> list[Table]:
    game = Table(
        "Monotone marshal number vs hw (must coincide, [23])",
        ("query", "marshals", "hw", "agree", "strategy_positions", "hd_valid"),
    )
    corpus = dict(all_named_queries())
    corpus["cycle_5"] = cycle_query(5)
    corpus["book_3"] = book_query(3)
    corpus["Q_3"] = qn(3)
    for seed in range(4):
        q = random_query(n_atoms=5, n_variables=6, seed=500 + seed)
        corpus[q.name] = q
    for name, q in corpus.items():
        mw = marshals_width(q)
        hw, _ = hypertree_width(q)
        assert mw == hw, name
        strategy = marshals_have_winning_strategy(q, mw)
        hd = strategy_to_decomposition(q, strategy)
        assert hd.is_valid
        game.add(
            query=name,
            marshals=mw,
            hw=hw,
            agree=True,
            strategy_positions=strategy.positions(),
            hd_valid=True,
        )

    mcs = Table(
        "MCS (chordality + conformality) vs GYO acyclicity",
        ("query", "mcs", "gyo", "agree"),
    )
    for name, q in corpus.items():
        a, b = is_acyclic_mcs(q), is_acyclic(q)
        assert a == b, name
        mcs.add(query=name, mcs=a, gyo=b, agree=True)
    mcs.note("two independent §2.1 acyclicity algorithms agree everywhere")
    return [game, mcs]
