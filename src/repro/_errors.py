"""Exception hierarchy for the ``repro`` package.

All exceptions raised by library code derive from :class:`ReproError`, so
applications can catch a single base class.  Subclasses are fine-grained
enough that tests can assert on the exact failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class ParseError(ReproError):
    """Raised when a conjunctive query / datalog string cannot be parsed."""

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if position is not None:
            message = f"{message} (at position {position} in {text!r})"
        super().__init__(message)


class SchemaError(ReproError):
    """Raised on arity/attribute mismatches in the relational engine."""


class UnknownAttributeError(SchemaError):
    """Raised when an operation names an attribute a schema lacks.

    A :class:`SchemaError` specialisation so the CLI can turn a typo'd
    attribute name into a readable exit-1 message instead of letting a
    lookup failure escape as a traceback.
    """




class DecompositionError(ReproError):
    """Raised when a decomposition object is structurally ill-formed.

    Note that a decomposition which is well-formed but *invalid* (violates
    one of the paper's conditions) is not an error: validity is reported by
    ``validate()`` methods returning a list of violations.
    """


class BudgetExceeded(ReproError):
    """Raised when a decomposition search runs past its time budget.

    The message names the interrupted search phase, so callers (the
    portfolio, the CLI) can report what gave up before falling back to a
    heuristic result.
    """


class EvaluationError(ReproError):
    """Raised when query evaluation is invoked with inconsistent inputs."""


class UnknownRelationError(SchemaError, EvaluationError):
    """Raised when a query or lookup references a relation the database
    lacks.

    Inherits both :class:`SchemaError` (it is a schema-level lookup
    failure, raised by :meth:`repro.db.database.Database.relation` and
    friends) and :class:`EvaluationError` (it aborts evaluation, raised
    by :func:`repro.db.binding.bind_atom`), so pre-existing handlers of
    either base keep catching it; the CLI's ``run``/``watch`` report it
    as a readable "no such relation" exit-1 message.
    """


class DatalogError(ReproError):
    """Raised for ill-formed datalog programs (unsafe rules, bad arity)."""
