"""Graph substrate: rooted trees, primal/incidence graphs, treewidth."""

from . import trees

__all__ = ["trees"]
