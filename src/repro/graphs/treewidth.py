"""Treewidth: exact subset dynamic programming plus classic heuristics.

The paper compares hypertree-width against the treewidth of the query's
primal graph and of its variable-atom incidence graph (§6, Theorem 6.2).
We implement treewidth from scratch:

* :func:`exact_treewidth` — the Bodlaender–Fomin–Koster–Kratsch–Thilikos
  subset DP over elimination prefixes: for a prefix set ``S`` already
  eliminated, ``tw(S) = min_{v∈S} max(tw(S−v), q(S−v, v))`` where
  ``q(S', v)`` counts the vertices outside ``S' ∪ {v}`` reachable from
  ``v`` through ``S'`` (the degree of ``v`` at its elimination point).
  Exponential in ``|V|``; guarded to ≤ 22 vertices.
* :func:`greedy_order` / :func:`width_of_order` — min-fill and min-degree
  elimination heuristics giving upper bounds (and the triangulations used
  by the tree-clustering baseline in :mod:`repro.csp.methods`).
* :func:`degeneracy_lower_bound` — the maximum-minimum-degree bound.

All functions treat each connected component independently where valid.
"""

from __future__ import annotations

from typing import Hashable, Literal, Sequence

from .primal import Graph, connected_components, subgraph

HeuristicName = Literal["min_fill", "min_degree"]


def _index_graph(graph: Graph) -> tuple[list[Hashable], list[int]]:
    """Vertices in fixed order plus bitmask adjacency."""
    vertices = sorted(graph, key=repr)
    index = {v: i for i, v in enumerate(vertices)}
    masks = [0] * len(vertices)
    for v, nbrs in graph.items():
        for w in nbrs:
            masks[index[v]] |= 1 << index[w]
    return vertices, masks


def _reachable_through(
    masks: list[int], n: int, eliminated: int, v: int
) -> int:
    """Bitmask of vertices outside ``eliminated ∪ {v}`` reachable from *v*
    via paths whose interior lies in *eliminated* (``q(S', v)``)."""
    seen = 1 << v
    frontier = masks[v] & ~seen
    result = 0
    while frontier:
        bit = frontier & -frontier
        frontier ^= bit
        if seen & bit:
            continue
        seen |= bit
        i = bit.bit_length() - 1
        if eliminated >> i & 1:
            frontier |= masks[i] & ~seen
        else:
            result |= bit
    return result


def exact_treewidth(graph: Graph, max_vertices: int = 22) -> int:
    """Exact treewidth by subset DP (O(2ⁿ·n²·poly)); n ≤ *max_vertices*.

    The treewidth of a graph is the maximum over its connected components,
    each solved independently.
    """
    if not graph:
        return 0
    best = 0
    for comp in connected_components(graph):
        best = max(best, _exact_component(subgraph(graph, comp), max_vertices))
    return best


def _exact_component(graph: Graph, max_vertices: int) -> int:
    n = len(graph)
    if n > max_vertices:
        raise ValueError(
            f"exact treewidth limited to {max_vertices} vertices "
            f"(got {n}); use greedy_order for an upper bound"
        )
    if n <= 1:
        return 0
    _, masks = _index_graph(graph)
    full = (1 << n) - 1

    # dp[S] = best achievable "max elimination degree" when eliminating the
    # vertices of S first (in some internal order).
    dp = {0: 0}
    for popcount in range(1, n + 1):
        next_dp: dict[int, int] = {}
        for s, width in dp.items():
            remaining = full & ~s
            bits = remaining
            while bits:
                bit = bits & -bits
                bits ^= bit
                v = bit.bit_length() - 1
                degree = bin(_reachable_through(masks, n, s, v)).count("1")
                new_width = max(width, degree)
                t = s | bit
                old = next_dp.get(t)
                if old is None or new_width < old:
                    next_dp[t] = new_width
        dp = next_dp
        # Prune dominated states lazily: keep as-is (states already minimal
        # per subset by the min() above).
    return dp[full]


def eliminate_vertex(
    work: dict[Hashable, set[Hashable]], v: Hashable
) -> list[Hashable]:
    """Eliminate *v* from the working adjacency *work* in place: turn its
    neighbourhood into a clique (fill), then remove *v*.  Returns the
    neighbours of *v* at elimination time (its elimination bag minus *v*).

    Shared by the greedy treewidth heuristics here and the ordering→bag
    pipeline of :mod:`repro.heuristics.ordering_decomp`.
    """
    nbrs = list(work[v])
    for i, a in enumerate(nbrs):
        for b in nbrs[i + 1 :]:
            work[a].add(b)
            work[b].add(a)
    for a in nbrs:
        work[a].discard(v)
    del work[v]
    return nbrs


def greedy_order(
    graph: Graph, heuristic: HeuristicName = "min_fill"
) -> list[Hashable]:
    """A full elimination order by the min-fill or min-degree heuristic."""
    work: dict[Hashable, set[Hashable]] = {
        v: set(nbrs) for v, nbrs in graph.items()
    }
    order: list[Hashable] = []
    while work:
        if heuristic == "min_degree":
            chosen = min(work, key=lambda v: (len(work[v]), repr(v)))
        elif heuristic == "min_fill":

            def fill(v: Hashable) -> int:
                nbrs = list(work[v])
                missing = 0
                for i, a in enumerate(nbrs):
                    for b in nbrs[i + 1 :]:
                        if b not in work[a]:
                            missing += 1
                return missing

            chosen = min(work, key=lambda v: (fill(v), len(work[v]), repr(v)))
        else:  # pragma: no cover - guarded by Literal type
            raise ValueError(f"unknown heuristic {heuristic!r}")
        eliminate_vertex(work, chosen)
        order.append(chosen)
    return order


def width_of_order(graph: Graph, order: Sequence[Hashable]) -> int:
    """The width of an elimination order (an upper bound on treewidth)."""
    work: dict[Hashable, set[Hashable]] = {
        v: set(nbrs) for v, nbrs in graph.items()
    }
    width = 0
    for v in order:
        width = max(width, len(eliminate_vertex(work, v)))
    return width


def treewidth_upper_bound(graph: Graph) -> int:
    """Best of the min-fill and min-degree heuristic widths."""
    if not graph:
        return 0
    return min(
        width_of_order(graph, greedy_order(graph, "min_fill")),
        width_of_order(graph, greedy_order(graph, "min_degree")),
    )


def degeneracy_lower_bound(graph: Graph) -> int:
    """Maximum-minimum-degree (degeneracy) lower bound on treewidth."""
    work: dict[Hashable, set[Hashable]] = {
        v: set(nbrs) for v, nbrs in graph.items()
    }
    best = 0
    while work:
        v = min(work, key=lambda u: (len(work[u]), repr(u)))
        best = max(best, len(work[v]))
        for a in work[v]:
            work[a].discard(v)
        del work[v]
    return best


def treewidth(graph: Graph, exact_limit: int = 18) -> int:
    """Treewidth — exact when every component is small enough, otherwise
    the best heuristic upper bound (flagged by comparing with
    :func:`degeneracy_lower_bound` in callers that need certainty)."""
    if not graph:
        return 0
    total = 0
    for comp in connected_components(graph):
        sub = subgraph(graph, comp)
        if len(sub) <= exact_limit:
            total = max(total, _exact_component(sub, exact_limit))
        else:
            total = max(total, treewidth_upper_bound(sub))
    return total


def triangulated_clique_number(graph: Graph) -> int:
    """Max clique size of the min-fill triangulation = tree-clustering
    width (Dechter–Pearl [12]); equals heuristic width + 1."""
    if not graph:
        return 0
    return width_of_order(graph, greedy_order(graph, "min_fill")) + 1
