"""Derived graphs of a query: primal (Gaifman) graph and VAIG (paper §6).

Two graphs give two notions of query treewidth:

* the *primal graph* ``G(Q)`` joins two variables iff they co-occur in an
  atom;
* the *variable-atom incidence graph* ``VAIG(Q)`` is bipartite between
  variables and atoms, joined by occurrence.  The treewidth used by
  Chekuri–Rajaraman (and by Theorem 6.2) is ``tw(VAIG(Q))``.

Graphs are represented as adjacency dictionaries ``node → set of nodes``;
nodes are arbitrary hashables (the VAIG uses tagged pairs to keep the two
sides distinct).
"""

from __future__ import annotations

from typing import Hashable

from ..core.query import ConjunctiveQuery

Graph = dict[Hashable, set[Hashable]]


def graph_from_edges(edges, vertices=()) -> Graph:
    """Build an adjacency dict from an edge iterable (plus isolated
    vertices)."""
    g: Graph = {v: set() for v in vertices}
    for u, v in edges:
        if u == v:
            g.setdefault(u, set())
            continue
        g.setdefault(u, set()).add(v)
        g.setdefault(v, set()).add(u)
    return g


def primal_graph(query: ConjunctiveQuery) -> Graph:
    """``G(Q)``: variables joined iff they co-occur in some atom (§6)."""
    g: Graph = {v.name: set() for v in query.variables}
    for atom in query.atoms:
        names = sorted(v.name for v in atom.variables)
        for i, u in enumerate(names):
            for w in names[i + 1 :]:
                g[u].add(w)
                g[w].add(u)
    return g


def variable_atom_incidence_graph(query: ConjunctiveQuery) -> Graph:
    """``VAIG(Q)``: the bipartite variable/atom incidence graph (§6).

    Variable nodes are ``("var", name)``; atom nodes ``("atom", index)``
    (indices disambiguate repeated atoms in rendering; the query body is a
    set, so indices are stable positions in ``query.atoms``).
    """
    g: Graph = {("var", v.name): set() for v in query.variables}
    for index, atom in enumerate(query.atoms):
        node = ("atom", index)
        g[node] = set()
        for v in atom.variables:
            vn = ("var", v.name)
            g[node].add(vn)
            g[vn].add(node)
    return g


def subgraph(graph: Graph, vertices) -> Graph:
    keep = set(vertices)
    return {
        v: {w for w in nbrs if w in keep}
        for v, nbrs in graph.items()
        if v in keep
    }


def connected_components(graph: Graph) -> list[set[Hashable]]:
    seen: set[Hashable] = set()
    result: list[set[Hashable]] = []
    for start in graph:
        if start in seen:
            continue
        comp = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nbr in graph[node]:
                if nbr not in comp:
                    comp.add(nbr)
                    stack.append(nbr)
        seen |= comp
        result.append(comp)
    return result


def is_clique(graph: Graph, vertices) -> bool:
    members = list(vertices)
    return all(
        v in graph and set(members) - {v} <= graph[v] for v in members
    )
