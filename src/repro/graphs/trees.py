"""Generic rooted-tree helpers shared by join trees and decompositions.

All decomposition objects in this library (join trees, query decompositions,
hypertree decompositions) are rooted labelled trees.  Rather than each class
re-implementing traversal, connectivity checks and ASCII rendering, they
delegate to the generic functions here, parameterised by a ``children``
callback.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator, TypeVar

N = TypeVar("N")


def preorder(root: N, children: Callable[[N], Iterable[N]]) -> Iterator[N]:
    """Depth-first preorder traversal (parent before children)."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        kids = list(children(node))
        stack.extend(reversed(kids))


def postorder(root: N, children: Callable[[N], Iterable[N]]) -> Iterator[N]:
    """Depth-first postorder traversal (children before parent)."""
    stack: list[tuple[N, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        stack.append((node, True))
        for child in reversed(list(children(node))):
            stack.append((child, False))


def tree_edges(
    root: N, children: Callable[[N], Iterable[N]]
) -> Iterator[tuple[N, N]]:
    """All (parent, child) pairs of the tree."""
    for node in preorder(root, children):
        for child in children(node):
            yield node, child


def parent_map(root: N, children: Callable[[N], Iterable[N]]) -> dict[N, N]:
    """Map each non-root node to its parent."""
    return {child: parent for parent, child in tree_edges(root, children)}


def depth_map(root: N, children: Callable[[N], Iterable[N]]) -> dict[N, int]:
    """Map each node to its depth (root = 0)."""
    depths = {root: 0}
    for parent, child in tree_edges(root, children):
        depths[child] = depths[parent] + 1
    return depths


def subtree_nodes(root: N, children: Callable[[N], Iterable[N]]) -> set[N]:
    """The node set of the subtree rooted at *root*."""
    return set(preorder(root, children))


def induces_connected_subtree(
    root: N, children: Callable[[N], Iterable[N]], marked: Iterable[N]
) -> bool:
    """True iff the *marked* nodes induce a connected subtree.

    This is the check behind every Connectedness Condition in the paper:
    the marked set is connected in the tree iff it is empty or, rooting the
    tree anywhere, exactly one marked node has no marked ancestor-side
    neighbour.  We check it directly: BFS inside the marked set starting
    from one marked node must reach all of them, where two marked nodes are
    neighbours iff one is the tree-parent of the other.
    """
    marked_set = set(marked)
    if len(marked_set) <= 1:
        return True
    parents = parent_map(root, children)
    start = next(iter(marked_set))
    seen = {start}
    queue: deque[N] = deque([start])
    while queue:
        node = queue.popleft()
        neighbours: list[N] = list(children(node))
        if node in parents:
            neighbours.append(parents[node])
        for other in neighbours:
            if other in marked_set and other not in seen:
                seen.add(other)
                queue.append(other)
    return seen == marked_set


def render_tree(
    root: N,
    children: Callable[[N], Iterable[N]],
    label: Callable[[N], str],
) -> str:
    """Render a rooted tree as indented ASCII art.

    >>> print(render_tree(1, lambda n: [2, 3] if n == 1 else [], str))
    1
    ├── 2
    └── 3
    """
    lines: list[str] = [label(root)]

    def walk(node: N, prefix: str) -> None:
        kids = list(children(node))
        for index, child in enumerate(kids):
            last = index == len(kids) - 1
            connector = "└── " if last else "├── "
            lines.append(prefix + connector + label(child))
            walk(child, prefix + ("    " if last else "│   "))

    walk(root, "")
    return "\n".join(lines)


def count_nodes(root: N, children: Callable[[N], Iterable[N]]) -> int:
    """Number of nodes in the tree."""
    return sum(1 for _ in preorder(root, children))


def tree_path(
    root: N, children: Callable[[N], Iterable[N]], source: N, target: N
) -> list[N]:
    """The unique path between two nodes of the tree (inclusive)."""
    parents = parent_map(root, children)

    def ancestors(node: N) -> list[N]:
        chain = [node]
        while chain[-1] in parents:
            chain.append(parents[chain[-1]])
        return chain

    up_source = ancestors(source)
    up_target = ancestors(target)
    target_index = {node: i for i, node in enumerate(up_target)}
    for i, node in enumerate(up_source):
        if node in target_index:
            j = target_index[node]
            return up_source[: i + 1] + list(reversed(up_target[:j]))
    raise ValueError("nodes are not in the same tree")
