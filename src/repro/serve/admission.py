"""Admission control: bounded queues over the shared execution pool.

A server that accepts every request eventually queues without bound and
blows every deadline at once; the serving tier instead gates admission
*before* work starts, in three layers:

1. **cost gate** — a :class:`~repro.db.stats.CardinalityEstimator`
   estimate of the query's input volume against the tenant's own
   database.  Requests estimated beyond ``max_estimated_rows`` are
   rejected outright with :class:`~repro.serve.protocol.QueryRejected`
   (not retryable: the same query meets the same gate tomorrow).
2. **bounded queue** — at most ``max_inflight`` requests execute on the
   worker pool and at most ``max_queue`` wait behind them.  A request
   arriving past both bounds is *shed* immediately with
   :class:`~repro.serve.protocol.ServerOverloaded`, whose
   ``retry_after`` hint is the EWMA service time scaled by the current
   queue depth — a ``Retry-After`` header in exception form.
3. **queue-wait timeout** — a queued request whose ``queue_timeout``
   elapses before a slot frees is shed *without ever executing* (the
   PR 4 budget semantics anchor execution deadlines at execution start;
   the queue timeout is the complementary bound on time spent waiting
   to start).

The controller is asyncio-native (acquire awaits a slot on the event
loop) but thread-safe to release from executor callbacks.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from ..core.query import ConjunctiveQuery
from ..db.database import Database
from ..db.stats import CardinalityEstimator
from ..obs import get_registry
from .protocol import QueryRejected, ServerOverloaded

#: Fallback service-time estimate before any request completes (seeds
#: the retry-after hint; EWMA takes over from the first completion).
INITIAL_SERVICE_SECONDS = 0.05

#: EWMA smoothing factor for observed service times.
EWMA_ALPHA = 0.2


def estimate_cost(query: ConjunctiveQuery, db: Database | None) -> float:
    """The admission-time cost proxy: estimated input rows summed over
    the query's atoms (System-R selectivities, memoised per estimator).

    Deliberately the *same* estimate the planner uses for join orders
    and shard counts — the gate and the plan never disagree about what
    "expensive" means.
    """
    estimator = CardinalityEstimator(db)
    return float(sum(estimator.atom_rows(atom) for atom in query.atoms))


class AdmissionController:
    """Bounded inflight + bounded queue + cost gate over one worker pool.

    Parameters
    ----------
    max_inflight:
        Requests executing concurrently (the executor pool width).
    max_queue:
        Requests allowed to wait for a slot; past this, shed.
    max_estimated_rows:
        Cost-gate ceiling on :func:`estimate_cost` (``None`` disables).
    """

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 64,
        max_estimated_rows: float | None = None,
    ):
        self.max_inflight = max(1, int(max_inflight))
        self.max_queue = max(0, int(max_queue))
        self.max_estimated_rows = max_estimated_rows
        self._slots = asyncio.Semaphore(self.max_inflight)
        self._lock = threading.Lock()
        self.inflight = 0
        self.queued = 0
        self.max_queued = 0
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_timeout = 0
        self.rejected_cost = 0
        self.ewma_service = INITIAL_SERVICE_SECONDS
        self._metrics = get_registry().scoped("serve.admission")

    # -- gates -------------------------------------------------------------
    def check_cost(
        self, query: ConjunctiveQuery, db: Database | None
    ) -> float:
        """Apply the cost gate; returns the estimate for observability."""
        cost = estimate_cost(query, db)
        if (
            self.max_estimated_rows is not None
            and cost > self.max_estimated_rows
        ):
            with self._lock:
                self.rejected_cost += 1
            self._metrics.counter("rejected_cost").inc()
            raise QueryRejected(
                f"query {query.name} estimated at {cost:.0f} input rows, "
                f"over the server's {self.max_estimated_rows:.0f}-row "
                "admission ceiling"
            )
        return cost

    def _retry_after(self) -> float:
        """How long until capacity plausibly returns: the smoothed
        service time scaled by how many service periods of work are
        already committed ahead of a new arrival."""
        with self._lock:
            backlog = self.inflight + self.queued
            service = self.ewma_service
        return max(0.001, service * (backlog + 1) / self.max_inflight)

    async def acquire(self, queue_timeout: float | None = None) -> None:
        """Wait for an execution slot, shedding instead of queueing
        without bound.

        Raises :class:`ServerOverloaded` immediately when the queue is
        full, or after *queue_timeout* seconds of waiting (the request
        never executes — its deadline was going to be blown anyway).
        """
        with self._lock:
            if self.inflight >= self.max_inflight and (
                self.queued >= self.max_queue
            ):
                self.shed_queue_full += 1
                self._metrics.counter("shed_queue_full").inc()
                raise ServerOverloaded(
                    f"server saturated ({self.inflight} inflight, "
                    f"{self.queued} queued of {self.max_queue})",
                    retry_after=self._retry_after_locked(),
                )
            self.queued += 1
            if self.queued > self.max_queued:
                self.max_queued = self.queued
        self._metrics.gauge("queued").set(self.queued)
        try:
            try:
                await asyncio.wait_for(
                    self._slots.acquire(), timeout=queue_timeout
                )
            except (asyncio.TimeoutError, TimeoutError):
                with self._lock:
                    self.shed_timeout += 1
                self._metrics.counter("shed_timeout").inc()
                raise ServerOverloaded(
                    f"queued past the {queue_timeout:.3f}s queue timeout; "
                    "request shed before execution",
                    retry_after=self._retry_after(),
                ) from None
        finally:
            with self._lock:
                self.queued -= 1
            self._metrics.gauge("queued").set(self.queued)
        with self._lock:
            self.inflight += 1
            self.admitted += 1
        self._metrics.counter("admitted").inc()
        self._metrics.gauge("inflight").set(self.inflight)

    def _retry_after_locked(self) -> float:
        backlog = self.inflight + self.queued
        return max(
            0.001, self.ewma_service * (backlog + 1) / self.max_inflight
        )

    def release(self, service_seconds: float | None = None) -> None:
        """Return a slot, feeding the observed service time into the
        retry-after EWMA.  Must run on the event loop
        (:class:`asyncio.Semaphore` is not thread-safe); the server
        releases after ``await``-ing the executor future, which is
        exactly there."""
        with self._lock:
            self.inflight -= 1
            if service_seconds is not None and service_seconds >= 0:
                self.ewma_service += EWMA_ALPHA * (
                    service_seconds - self.ewma_service
                )
        self._metrics.gauge("inflight").set(self.inflight)
        self._slots.release()

    # -- observability -----------------------------------------------------
    @property
    def shed(self) -> int:
        with self._lock:
            return self.shed_queue_full + self.shed_timeout

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "inflight": self.inflight,
                "queued": self.queued,
                "max_queued": self.max_queued,
                "admitted": self.admitted,
                "shed_queue_full": self.shed_queue_full,
                "shed_timeout": self.shed_timeout,
                "rejected_cost": self.rejected_cost,
                "ewma_service_seconds": round(self.ewma_service, 6),
                "max_estimated_rows": self.max_estimated_rows,
            }
