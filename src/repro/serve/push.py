"""Push subscriptions: answer deltas streamed to connections.

A ``subscribe`` op registers the tenant's query as a
:class:`~repro.incremental.view.MaterializedView` through the tenant's
:class:`~repro.incremental.live.LiveEngine` (sharing the server's plan
cache) and wires the view's answer-delta callback into the
connection's outgoing message queue.  The delivery path crosses two
domains:

* the *callback* fires on whatever executor thread applied the delta,
  while the ``LiveEngine`` lock is held — it must be quick and must not
  touch asyncio objects directly;
* the *connection* writes from its writer task on the event loop.

So deliveries are staged: the callback folds the delta into a pending
signed-row buffer under the subscription's own lock (insert-then-delete
of the same row cancels — coalescing is exact, not lossy sampling) and
schedules a flush onto the loop with ``call_soon_threadsafe``.  The
flush moves one coalesced push message into the connection queue.

**Backpressure.**  A subscriber that stops reading fills its connection
queue.  A flush that cannot enqueue merges its taken buffer back into
the pending buffer, where further deltas keep coalescing — the client
eventually receives one message carrying the *net* change, which is
semantically exactly what it missed.  If the pending buffer itself outgrows ``max_pending_rows``
the subscriber is declared lapsed: the subscription detaches from the
view and the connection is dropped with a typed
:class:`~repro.serve.protocol.SubscriptionLapsed` error (a client that
cannot keep up with its own subscriptions must reconnect and re-read,
not silently miss state).
"""

from __future__ import annotations

import asyncio
import threading
from typing import TYPE_CHECKING, Any, Callable

from ..incremental.view import AnswerDelta
from ..obs import get_registry
from .protocol import SubscriptionLapsed, push_message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..incremental.live import ViewHandle
    from .tenant import Tenant


class PushSubscription:
    """One live subscription: a view handle bridged onto a connection.

    Parameters
    ----------
    sub_id:
        Server-assigned identifier echoed on every push message.
    handle:
        The registered :class:`~repro.incremental.live.ViewHandle`.
    loop:
        The server's event loop (flushes are scheduled onto it).
    send:
        Loop-side delivery: ``send(message) -> bool``; ``False`` means
        the connection queue is full (keep coalescing and retry).
    drop:
        Loop-side connection teardown for lapsed subscribers.
    max_pending_rows:
        Coalesced-buffer bound before the subscriber is dropped.
    owner:
        The :class:`~repro.serve.tenant.Tenant` whose ``LiveEngine``
        holds the view.  Unregistration (explicit ``unsubscribe`` or
        connection teardown) must target *this* tenant — view ids are
        per-engine counters, so unregistering against whatever tenant
        the connection is currently bound to could remove somebody
        else's view.
    """

    #: Retry delay for a flush that found the connection queue full.
    RETRY_SECONDS = 0.05

    def __init__(
        self,
        sub_id: int,
        handle: "ViewHandle",
        loop: asyncio.AbstractEventLoop,
        send: Callable[[dict[str, Any]], bool],
        drop: Callable[[Exception], None],
        max_pending_rows: int = 100_000,
        owner: "Tenant | None" = None,
    ):
        self.sub_id = sub_id
        self.handle = handle
        self.owner = owner
        self._loop = loop
        self._send = send
        self._drop = drop
        self.max_pending_rows = max_pending_rows
        self._lock = threading.Lock()
        #: Net pending change: row -> +1 (to insert) / -1 (to delete).
        self._pending: dict[tuple, int] = {}
        self._batches = 0
        self._lapsed = False
        self._closed = False
        self.delivered = 0
        self.coalesced = 0
        self._unsubscribe = handle.subscribe(self._on_delta)
        self._metrics = get_registry().scoped("serve.push")

    # -- view-side (any thread, LiveEngine lock held) ----------------------
    def _on_delta(self, delta: AnswerDelta) -> None:
        if not delta:
            return
        with self._lock:
            if self._closed or self._lapsed:
                return
            for row in delta.inserted:
                sign = self._pending.get(row, 0) + 1
                if sign:
                    self._pending[row] = sign
                else:
                    del self._pending[row]
            for row in delta.deleted:
                sign = self._pending.get(row, 0) - 1
                if sign:
                    self._pending[row] = sign
                else:
                    del self._pending[row]
            self._batches += 1
            lapsed = len(self._pending) > self.max_pending_rows
            if lapsed:
                self._lapsed = True
        if lapsed:
            self._metrics.counter("lapsed").inc()
            self._loop.call_soon_threadsafe(self._drop_lapsed)
            return
        self._loop.call_soon_threadsafe(self._flush)

    # -- loop-side ---------------------------------------------------------
    def _flush(self) -> None:
        with self._lock:
            if self._closed or self._lapsed or not self._pending:
                return
            # Move semantics: take the whole pending buffer, so a delta
            # racing in while the send is in flight starts a *fresh*
            # entry that the next flush delivers.  (Clearing snapshotted
            # rows after the send instead would let a racing cancellation
            # coalesce against the snapshot and vanish — the subscriber
            # would keep a phantom row forever.)
            taken, self._pending = self._pending, {}
            batches, self._batches = self._batches, 0
        inserted = sorted((r for r, s in taken.items() if s > 0), key=repr)
        deleted = sorted((r for r, s in taken.items() if s < 0), key=repr)
        message = push_message(
            "delta",
            sub=self.sub_id,
            insert=[list(r) for r in inserted],
            delete=[list(r) for r in deleted],
            batches=batches,
        )
        if self._send(message):
            self.delivered += 1
            if batches > 1:
                self.coalesced += batches - 1
                self._metrics.counter("coalesced_batches").inc(batches - 1)
            self._metrics.counter("deliveries").inc()
        else:
            # Connection queue full: merge the taken buffer back (deltas
            # may have raced in since the take), keep coalescing, retry.
            with self._lock:
                if self._closed or self._lapsed:
                    return
                for row, sign in taken.items():
                    net = self._pending.get(row, 0) + sign
                    if net:
                        self._pending[row] = net
                    else:
                        del self._pending[row]
                self._batches += batches
                lapsed = len(self._pending) > self.max_pending_rows
                if lapsed:
                    self._lapsed = True
            if lapsed:
                self._metrics.counter("lapsed").inc()
                self._drop_lapsed()
                return
            self._metrics.counter("flush_backoff").inc()
            self._loop.call_later(self.RETRY_SECONDS, self._flush)

    def _drop_lapsed(self) -> None:
        self.close()
        self._drop(
            SubscriptionLapsed(
                f"subscription {self.sub_id} fell more than "
                f"{self.max_pending_rows} rows behind and was dropped"
            )
        )

    def close(self) -> None:
        """Detach from the view (idempotent, any thread)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._pending.clear()
        self._unsubscribe()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "sub": self.sub_id,
                "query": self.handle.query.name,
                "pending_rows": len(self._pending),
                "delivered": self.delivered,
                "coalesced": self.coalesced,
                "lapsed": self._lapsed,
            }
