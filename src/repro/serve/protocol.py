"""Wire protocol of the ``repro.serve`` query service.

Newline-delimited JSON over a byte stream (TCP).  Every line is one
message; every message is a JSON object carrying the protocol version.
Three message kinds flow:

* **requests** (client → server): ``{"v": 1, "id": <caller token>,
  "op": "query", ...params}``.  ``id`` is echoed verbatim on the
  response, so a client may pipeline requests and match replies.
* **responses** (server → client): ``{"v": 1, "id": ..., "ok": true,
  "result": {...}}`` on success, or ``{"v": 1, "id": ..., "ok": false,
  "error": {...}}`` on failure.
* **pushes** (server → client, unsolicited): ``{"v": 1, "push":
  "delta", "sub": <subscription id>, ...}`` — answer deltas streamed to
  ``subscribe`` callers, carrying no ``id`` (nothing asked for them).

Error payloads are *typed*: ``{"type": <exception class name>,
"message": ..., "retryable": bool}`` plus ``retry_after_ms`` when the
server can estimate when capacity returns.  The types ride the existing
:class:`~repro._errors.EvaluationError` hierarchy — a
``BudgetExceeded`` raised deep inside plan execution crosses the wire
under the same name a library caller would catch — extended here with
the service-level failure modes (rate limits, load shedding, protocol
violations).  :func:`raise_remote` rebuilds the closest local exception
on the client side, so ``except BudgetExceeded`` works identically
in-process and over a socket.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from .._errors import (
    BudgetExceeded,
    EvaluationError,
    ParseError,
    ReproError,
    SchemaError,
)

#: Version stamped on (and required of) every message.
PROTOCOL_VERSION = 1

#: Hard cap on one serialized message line; a client sending more is
#: protocol-violating (guards the server against unbounded buffering).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Evaluation modes a ``query``/``query_many`` envelope may name:
#: ``"set"`` (the default, plain set semantics) or one of the semiring
#: modes of :mod:`repro.db.semiring` — ``"count"`` (derivation counts),
#: ``"top_k"``/``"mincost"`` (tropical, cheapest witnesses; ``top_k``
#: also reads a positive-int ``k``), ``"provenance"`` (why-provenance
#: witness sets) and ``"prob"`` (probabilities).
MODES = frozenset({"set", "count", "top_k", "mincost", "provenance", "prob"})

#: The operations a request may name.
OPS = frozenset(
    {
        "hello",
        "declare",
        "load",
        "apply",
        "query",
        "query_many",
        "subscribe",
        "unsubscribe",
        "stats",
        "ping",
    }
)


class ServeError(EvaluationError):
    """Base class of service-level failures (rides ``EvaluationError``
    so one ``except`` clause covers engine and service faults alike)."""

    #: Whether a client should retry the same request later.
    retryable = False


class ProtocolError(ServeError):
    """The peer sent something that is not a well-formed request."""


class UnknownTenantError(ServeError):
    """An operation arrived before ``hello`` bound the connection."""


class RateLimited(ServeError):
    """The tenant's token bucket is empty; retry after the hinted delay."""

    retryable = True

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class ServerOverloaded(ServeError):
    """Admission control shed the request (queue full or queue-wait
    timeout); retry after the hinted delay."""

    retryable = True

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class QueryRejected(ServeError):
    """The admission cost gate refused the query outright (estimated
    size beyond the server's ceiling) — not retryable: the same query
    will be rejected again."""


class SubscriptionLapsed(ServeError):
    """A push subscriber fell too far behind and was disconnected."""


class ResponseTooLarge(ServeError):
    """A response or push serialized past :data:`MAX_LINE_BYTES`.  The
    payload was withheld to preserve line framing — narrow the query, or
    (for a push) reconnect and re-subscribe; not retryable as-is."""


class InternalError(ServeError):
    """An unexpected server-side failure (a bug, not a bad request).
    The connection stays usable; the request that hit it failed."""


class RemoteError(ReproError):
    """Client-side stand-in for a server error with no local class.

    Carries the typed payload so callers can still branch on
    :attr:`kind` / :attr:`retryable` / :attr:`retry_after`.
    """

    def __init__(self, payload: Mapping[str, Any]):
        self.kind = str(payload.get("type", "ServeError"))
        self.retryable = bool(payload.get("retryable", False))
        self.retry_after = float(payload.get("retry_after_ms", 0)) / 1e3
        super().__init__(f"{self.kind}: {payload.get('message', '')}")


#: Server-side classes a typed payload may name, for client rebuilds.
_WIRE_TYPES: dict[str, type[ReproError]] = {
    cls.__name__: cls
    for cls in (
        BudgetExceeded,
        EvaluationError,
        InternalError,
        ParseError,
        ProtocolError,
        QueryRejected,
        RateLimited,
        ResponseTooLarge,
        SchemaError,
        ServeError,
        ServerOverloaded,
        SubscriptionLapsed,
        UnknownTenantError,
    )
}


def error_payload(error: BaseException) -> dict[str, Any]:
    """The typed wire form of one exception."""
    payload: dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
        "retryable": bool(getattr(error, "retryable", False)),
    }
    retry_after = getattr(error, "retry_after", None)
    if retry_after:
        payload["retry_after_ms"] = round(float(retry_after) * 1e3, 3)
    return payload


def raise_remote(payload: Mapping[str, Any]) -> None:
    """Re-raise a typed error payload as the closest local exception.

    ``BudgetExceeded`` crossing the wire raises ``BudgetExceeded``
    client-side; unknown types raise :class:`RemoteError` carrying the
    payload.  (``TenantBudgetExceeded`` subclasses ``BudgetExceeded``
    server-side and maps onto it here.)
    """
    kind = str(payload.get("type", ""))
    cls = _WIRE_TYPES.get(kind)
    if cls is None and kind.endswith("BudgetExceeded"):
        cls = BudgetExceeded
    if cls is None:
        raise RemoteError(payload)
    if cls in (RateLimited, ServerOverloaded):
        raise cls(
            str(payload.get("message", "")),
            retry_after=float(payload.get("retry_after_ms", 0)) / 1e3,
        )
    raise cls(str(payload.get("message", "")))


# -- envelopes -------------------------------------------------------------
def request(op: str, request_id: Any, **params: Any) -> dict[str, Any]:
    """A request envelope (client side)."""
    return {"v": PROTOCOL_VERSION, "id": request_id, "op": op, **params}


def ok_response(request_id: Any, result: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "result": dict(result),
    }


def error_response(request_id: Any, error: BaseException) -> dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": error_payload(error),
    }


def push_message(kind: str, **fields: Any) -> dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "push": kind, **fields}


def encode(message: Mapping[str, Any]) -> bytes:
    """One wire line: compact JSON + newline."""
    return (
        json.dumps(message, separators=(",", ":"), default=str) + "\n"
    ).encode("utf-8")


def decode_request(line: bytes) -> dict[str, Any]:
    """Parse and validate one request line (server side).

    Raises :class:`ProtocolError` on anything other than a well-formed,
    version-matching request naming a known op.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message is not a JSON object")
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} != {PROTOCOL_VERSION}"
        )
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}")
    if "id" not in message:
        raise ProtocolError("request carries no id")
    return message
