"""The asyncio query service: many tenants, one plan cache.

:class:`QueryServer` is a long-lived process serving the newline-
delimited JSON protocol of :mod:`repro.serve.protocol` over TCP.  The
event loop owns connections, admission, and push delivery; the actual
engine calls — which are synchronous, CPU-bound Python — run on a
bounded :class:`~concurrent.futures.ThreadPoolExecutor` whose width
equals the admission controller's ``max_inflight``, so the executor can
never accumulate hidden backlog behind the controller's back.

The sharing structure is the whole point:

* **one** :class:`~repro.engine.Engine` (and plan cache) serves every
  tenant — renamed-isomorphic queries across tenants cost a transport,
  not a decomposition search (and the engine's single-flight gate
  collapses concurrent first-misses of one shape into one search);
* **per-tenant** :class:`~repro.serve.tenant.Tenant` state isolates
  data, budgets, and rate limits — a tenant blowing its cumulative
  budget gets typed :class:`~repro.serve.tenant.TenantBudgetExceeded`
  errors while its neighbours keep executing;
* **admission first**: rate limit → cumulative budget → cost gate →
  bounded queue, all *before* a request touches the executor, so an
  overloaded server degrades to cheap typed ``ServerOverloaded``
  responses instead of queueing without bound.

Request budgets are anchored at execution start (``Engine.execute``
computes the deadline when the executor picks the request up — PR 4
semantics), while ``queue_timeout_ms`` bounds the wait *before* that
anchor; a request that outwaits it is shed, never executed.

:func:`serve_in_thread` runs a server on a background thread with its
own event loop — how the benchmark, the tests, and the quickstart
example embed a server in one process.
"""

from __future__ import annotations

import asyncio
import heapq
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from .. import __version__ as _version
from .._errors import ReproError
from ..core.parser import parse_query
from ..core.query import ConjunctiveQuery
from ..db.database import Database
from ..engine.executor import Engine
from ..incremental.delta import Delta
from ..obs import get_registry
from .admission import AdmissionController
from .protocol import (
    MAX_LINE_BYTES,
    MODES,
    InternalError,
    ProtocolError,
    ResponseTooLarge,
    UnknownTenantError,
    decode_request,
    encode,
    error_response,
    ok_response,
    push_message,
)
from .push import PushSubscription
from .tenant import Tenant

_log = logging.getLogger(__name__)


class _Connection:
    """One client connection: reader state + a writer task draining an
    outgoing queue, so responses and push messages interleave whole-line
    atomically no matter which coroutine produced them."""

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        queue_size: int,
    ):
        self.writer = writer
        self.queue: asyncio.Queue[bytes | None] = asyncio.Queue(
            maxsize=max(8, queue_size)
        )
        self.tenant: Tenant | None = None
        self.subs: dict[int, PushSubscription] = {}
        self.closing = False

    async def send(self, message: dict[str, Any]) -> None:
        """Enqueue a response (awaits when the queue is full — request/
        response traffic is flow-controlled by the client's reads).

        A response that serializes past ``MAX_LINE_BYTES`` would desync
        the client's line framing; it is replaced with a typed
        :class:`~repro.serve.protocol.ResponseTooLarge` error carrying
        the same request id."""
        if self.closing:
            return
        data = encode(message)
        if len(data) > MAX_LINE_BYTES:
            data = encode(
                error_response(
                    message.get("id"),
                    ResponseTooLarge(
                        f"response serialized to {len(data)} bytes, past "
                        f"the {MAX_LINE_BYTES}-byte line limit; narrow "
                        "the query or load in smaller batches"
                    ),
                )
            )
        await self.queue.put(data)

    def try_send(self, message: dict[str, Any]) -> bool:
        """Enqueue a push without waiting; ``False`` = queue full.

        A push too large for one line can never be delivered whole, so
        the subscriber is treated like a lapsed one: dropped with a
        typed error (returns ``True`` — the payload is consumed, the
        connection is going down)."""
        if self.closing:
            return False
        data = encode(message)
        if len(data) > MAX_LINE_BYTES:
            self.drop(
                ResponseTooLarge(
                    "coalesced push delta exceeds the line limit; "
                    "reconnect and re-subscribe"
                )
            )
            return True
        try:
            self.queue.put_nowait(data)
            return True
        except asyncio.QueueFull:
            return False

    def drop(self, error: Exception) -> None:
        """Terminate the connection after a best-effort typed notice
        (lapsed subscribers land here)."""
        if self.closing:
            return
        self.closing = True
        try:
            self.queue.put_nowait(
                encode(push_message("error", error=str(error), type=type(error).__name__))
            )
        except asyncio.QueueFull:
            pass
        try:
            self.queue.put_nowait(None)  # writer-task sentinel: close
        except asyncio.QueueFull:
            # Writer will notice `closing` once the queue drains.
            pass

    def close_subs(self) -> None:
        """Detach every subscription AND unregister its view from the
        owning tenant's ``LiveEngine`` — otherwise each disconnect
        leaves a dead client's view maintained forever."""
        for sub in self.subs.values():
            sub.close()
            if sub.owner is not None:
                sub.owner.live.unregister(sub.handle)
        self.subs.clear()

    async def write_loop(self) -> None:
        try:
            while True:
                item = await self.queue.get()
                if item is None:
                    break
                self.writer.write(item)
                await self.writer.drain()
                if self.closing and self.queue.empty():
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.closing = True
            try:
                self.writer.close()
            except Exception:
                pass


class QueryServer:
    """A multi-tenant conjunctive-query service over one shared engine.

    Parameters
    ----------
    engine:
        The shared planning/execution engine.  A private one (``mode``/
        ``backend`` forwarded) is created — and closed with the server —
        when omitted.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port, readable from
        :attr:`port` after :meth:`start`.
    seed_db:
        Template database copied into every new tenant.
    max_inflight / max_queue / max_estimated_rows:
        Admission-control bounds (see
        :class:`~repro.serve.admission.AdmissionController`).
    request_budget / tenant_budget / rate / burst:
        Defaults for new tenants (per-request seconds, cumulative
        seconds, token-bucket rate/burst).
    push_queue / push_max_pending:
        Per-connection outgoing queue depth, and the coalesced-delta
        bound past which a slow subscriber is disconnected.
    """

    def __init__(
        self,
        engine: Engine | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        seed_db: Database | None = None,
        max_inflight: int = 8,
        max_queue: int = 64,
        max_estimated_rows: float | None = None,
        request_budget: float | None = None,
        tenant_budget: float | None = None,
        rate: float | None = None,
        burst: float | None = None,
        push_queue: int = 256,
        push_max_pending: int = 100_000,
        mode: str = "auto",
        backend: str | None = None,
        slow_query_ms: float | None = None,
        flight_dump: str | None = None,
    ):
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else Engine(
            mode=mode,
            backend=backend,
            slow_query_ms=slow_query_ms,
            flight_dump=flight_dump,
        )
        self.host = host
        self.port = port
        self.seed_db = seed_db
        self.request_budget = request_budget
        self.tenant_budget = tenant_budget
        self.rate = rate
        self.burst = burst
        self.push_queue = push_queue
        self.push_max_pending = push_max_pending
        self.admission = AdmissionController(
            max_inflight=max_inflight,
            max_queue=max_queue,
            max_estimated_rows=max_estimated_rows,
        )
        self.tenants: dict[str, Tenant] = {}
        self._tenants_lock = threading.Lock()
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._next_sub = 0
        self._started = time.monotonic()
        self._metrics = get_registry().scoped("serve")

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind and begin accepting connections (non-blocking)."""
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.admission.max_inflight,
            thread_name_prefix="serve-exec",
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES + 1024,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, close tenants/executor, release the engine
        (when server-owned).  Idempotent."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)
        with self._tenants_lock:
            tenants, self.tenants = list(self.tenants.values()), {}
        for tenant in tenants:
            tenant.close()
        if self._owns_engine:
            self.engine.close()

    # -- tenancy -----------------------------------------------------------
    def _tenant(self, tenant_id: str) -> Tenant:
        with self._tenants_lock:
            tenant = self.tenants.get(tenant_id)
            if tenant is None:
                tenant = Tenant(
                    tenant_id,
                    self.engine,
                    seed_db=self.seed_db,
                    request_budget=self.request_budget,
                    total_budget=self.tenant_budget,
                    rate=self.rate,
                    burst=self.burst,
                )
                self.tenants[tenant_id] = tenant
                self._metrics.counter("tenants_created").inc()
            return tenant

    @staticmethod
    def _bound_tenant(conn: _Connection) -> Tenant:
        if conn.tenant is None:
            raise UnknownTenantError(
                "no tenant bound; send a 'hello' op first"
            )
        return conn.tenant

    # -- connection handling ----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer, self.push_queue)
        writer_task = asyncio.ensure_future(conn.write_loop())
        self._metrics.counter("connections").inc()
        try:
            while not conn.closing:
                try:
                    line = await reader.readline()
                except (
                    ValueError,
                    asyncio.LimitOverrunError,
                ):  # oversized line: unrecoverable framing loss
                    await conn.send(
                        error_response(
                            None,
                            ProtocolError("message exceeds the line limit"),
                        )
                    )
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_line(conn, line)
        finally:
            conn.close_subs()
            if not conn.closing:
                conn.closing = True
                try:
                    conn.queue.put_nowait(None)
                except asyncio.QueueFull:
                    writer_task.cancel()
            try:
                await asyncio.wait_for(writer_task, timeout=5.0)
            except (asyncio.TimeoutError, asyncio.CancelledError, TimeoutError):
                writer_task.cancel()

    async def _handle_line(self, conn: _Connection, line: bytes) -> None:
        request_id: Any = None
        try:
            message = decode_request(line)
            request_id = message.get("id")
            result = await self._dispatch(conn, message)
            await conn.send(ok_response(request_id, result))
        except ReproError as error:
            self._metrics.counter("errors").inc()
            await conn.send(error_response(request_id, error))
        except Exception as error:  # noqa: BLE001 - keep failures in-protocol
            # A handler bug must fail the *request*, not the connection:
            # answer with a typed internal error and keep reading.
            self._metrics.counter("internal_errors").inc()
            _log.exception("unhandled error serving request %r", request_id)
            await conn.send(
                error_response(
                    request_id,
                    InternalError(
                        f"internal server error: "
                        f"{type(error).__name__}: {error}"
                    ),
                )
            )

    async def _dispatch(
        self, conn: _Connection, message: dict[str, Any]
    ) -> dict[str, Any]:
        op = message["op"]
        if op == "ping":
            return {"pong": True}
        if op == "hello":
            return self._op_hello(conn, message)
        if op == "stats":
            return self.stats()
        tenant = self._bound_tenant(conn)
        if op == "declare":
            return await self._op_declare(tenant, message)
        if op == "load":
            return await self._op_load(tenant, message)
        if op == "apply":
            return await self._op_apply(tenant, message)
        if op == "query":
            return await self._op_query(tenant, message)
        if op == "query_many":
            return await self._op_query_many(tenant, message)
        if op == "subscribe":
            return await self._op_subscribe(conn, tenant, message)
        if op == "unsubscribe":
            return self._op_unsubscribe(conn, message)
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    # -- ops ---------------------------------------------------------------
    def _op_hello(
        self, conn: _Connection, message: dict[str, Any]
    ) -> dict[str, Any]:
        tenant_id = message.get("tenant")
        if not isinstance(tenant_id, str) or not tenant_id:
            raise ProtocolError("hello needs a non-empty 'tenant' string")
        conn.tenant = self._tenant(tenant_id)
        return {
            "tenant": tenant_id,
            "server": _version,
            "limits": {
                "max_inflight": self.admission.max_inflight,
                "max_queue": self.admission.max_queue,
                "request_budget": conn.tenant.request_budget,
                "total_budget": conn.tenant.total_budget,
                "rate": self.rate,
            },
        }

    async def _op_declare(
        self, tenant: Tenant, message: dict[str, Any]
    ) -> dict[str, Any]:
        predicate = message.get("predicate")
        arity = message.get("arity")
        if not isinstance(predicate, str) or not isinstance(arity, int):
            raise ProtocolError("declare needs 'predicate' and int 'arity'")

        def work() -> dict[str, Any]:
            with tenant.rw.write():
                tenant.live.declare(predicate, arity)
            return {"predicate": predicate, "arity": arity}

        return await self._run(work)

    async def _op_load(
        self, tenant: Tenant, message: dict[str, Any]
    ) -> dict[str, Any]:
        predicate = message.get("predicate")
        rows = message.get("rows")
        if not isinstance(predicate, str) or not isinstance(rows, list):
            raise ProtocolError("load needs 'predicate' and a 'rows' list")
        delta = Delta.inserts(predicate, [tuple(row) for row in rows])
        return await self._apply_delta(tenant, delta)

    async def _op_apply(
        self, tenant: Tenant, message: dict[str, Any]
    ) -> dict[str, Any]:
        changes = message.get("changes")
        if not isinstance(changes, dict):
            raise ProtocolError(
                "apply needs 'changes': {predicate: [[row, sign], ...]}"
            )
        parsed: dict[str, dict[tuple, int]] = {}
        for predicate, entries in changes.items():
            if not isinstance(entries, list):
                raise ProtocolError(f"changes[{predicate!r}] is not a list")
            rows: dict[tuple, int] = {}
            for entry in entries:
                try:
                    row, sign = entry
                    rows[tuple(row)] = int(sign)
                except (TypeError, ValueError):
                    raise ProtocolError(
                        f"changes[{predicate!r}] entries must be "
                        "[row, sign] pairs"
                    ) from None
            parsed[predicate] = rows
        return await self._apply_delta(tenant, Delta(parsed))

    async def _apply_delta(
        self, tenant: Tenant, delta: Delta
    ) -> dict[str, Any]:
        """Fold one delta into the tenant (admitted: mutations occupy an
        executor slot like queries do — a load storm must not starve the
        pool invisibly)."""
        await self.admission.acquire()
        started = time.perf_counter()
        try:

            def work() -> dict[str, Any]:
                before = tenant.db.tuple_count()
                with tenant.rw.write():
                    changes = tenant.live.apply(delta)
                return {
                    "applied": len(delta),
                    "effective": tenant.db.tuple_count() - before,
                    "db_tuples": tenant.db.tuple_count(),
                    "db_version": tenant.db.version,
                    "changed_views": sum(1 for d in changes.values() if d),
                }

            return await self._run(work)
        finally:
            self.admission.release(time.perf_counter() - started)

    def _parse_query(self, text: Any, name: str = "Q") -> ConjunctiveQuery:
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError("missing query text 'q'")
        return parse_query(text, name=name)

    #: Envelope mode → engine semiring tag (``top_k`` is the tropical
    #: semiring plus a k-smallest cut on the annotations).
    _MODE_SEMIRING = {
        "count": "count",
        "top_k": "mincost",
        "mincost": "mincost",
        "provenance": "provenance",
        "prob": "prob",
    }

    def _parse_mode(
        self, message: dict[str, Any]
    ) -> tuple[str, str | None, int]:
        """Validate the envelope's evaluation mode; returns
        ``(mode, semiring tag or None, k)``."""
        mode = message.get("mode", "set")
        if mode not in MODES:
            raise ProtocolError(
                f"unknown mode {mode!r}; expected one of {sorted(MODES)}"
            )
        k = message.get("k", 1)
        if mode == "top_k" and (not isinstance(k, int) or k < 1):
            raise ProtocolError("mode 'top_k' needs a positive int 'k'")
        return mode, self._MODE_SEMIRING.get(mode), k

    @staticmethod
    def _wire_value(tag: str, value: Any) -> Any:
        """One annotation as JSON-representable data (tuples → lists,
        witness sets ordered deterministically)."""
        if tag == "mincost":
            cost, witness = value
            return [cost, [[p, list(r)] for p, r in witness]]
        if tag == "provenance":
            return [
                sorted(([p, list(r)] for p, r in ws), key=repr)
                for ws in sorted(value, key=repr)
            ]
        return value

    async def _op_query(
        self, tenant: Tenant, message: dict[str, Any]
    ) -> dict[str, Any]:
        query = self._parse_query(message.get("q"))
        mode, semiring, k = self._parse_mode(message)
        tenant.admit()
        self.admission.check_cost(query, tenant.db)
        budget = tenant.effective_budget(_ms(message.get("budget_ms")))
        queue_timeout = _ms(message.get("queue_timeout_ms"))
        await self.admission.acquire(queue_timeout)
        self._metrics.counter("requests").inc()
        started = time.perf_counter()
        try:

            def work() -> dict[str, Any]:
                with tenant.rw.read():
                    # Engine.execute anchors the budget deadline *here*,
                    # on the executor thread, at execution start.
                    result = self.engine.execute(
                        query, tenant.db, budget=budget, semiring=semiring
                    )
                tenant.charge(result.elapsed)
                payload = {
                    "rows": [list(r) for r in sorted(
                        result.answer.rows, key=repr
                    )],
                    "attributes": list(result.answer.attributes),
                    "boolean": result.boolean,
                    "cache_hit": result.cache_hit,
                    "width": result.width,
                    "method": result.method,
                    "mode": mode,
                    "elapsed_ms": round(result.elapsed * 1e3, 3),
                }
                if semiring is not None:
                    annotations = result.annotations or {}
                    if mode == "top_k":
                        top = heapq.nsmallest(
                            k,
                            annotations.items(),
                            key=lambda item: (item[1][0], repr(item[0])),
                        )
                        payload["top"] = [
                            {
                                "row": list(row),
                                "cost": cost,
                                "witness": [[p, list(r)] for p, r in witness],
                            }
                            for row, (cost, witness) in top
                        ]
                    else:
                        payload["annotations"] = [
                            [list(row), self._wire_value(semiring, value)]
                            for row, value in sorted(
                                annotations.items(), key=lambda kv: repr(kv[0])
                            )
                        ]
                        payload["total"] = self._wire_value(
                            semiring, result.answer.total()
                        )
                return payload

            try:
                response = await self._run(work)
            except ReproError:
                tenant.charge(time.perf_counter() - started, ok=False)
                raise
            self._metrics.histogram("request_seconds").observe(
                time.perf_counter() - started
            )
            return response
        finally:
            self.admission.release(time.perf_counter() - started)

    async def _op_query_many(
        self, tenant: Tenant, message: dict[str, Any]
    ) -> dict[str, Any]:
        texts = message.get("qs")
        if not isinstance(texts, list) or not texts:
            raise ProtocolError("query_many needs a non-empty 'qs' list")
        queries = [
            self._parse_query(text, name=f"Q{i}")
            for i, text in enumerate(texts)
        ]
        mode, semiring, _ = self._parse_mode(message)
        if mode == "top_k":
            raise ProtocolError(
                "query_many does not support mode 'top_k'; "
                "use 'query' (or mode 'mincost')"
            )
        tenant.admit()
        for query in queries:
            self.admission.check_cost(query, tenant.db)
        budget = tenant.effective_budget(_ms(message.get("budget_ms")))
        queue_timeout = _ms(message.get("queue_timeout_ms"))
        await self.admission.acquire(queue_timeout)
        self._metrics.counter("requests").inc()
        started = time.perf_counter()
        try:

            def work() -> dict[str, Any]:
                with tenant.rw.read():
                    batch = self.engine.execute_many(
                        queries, db=tenant.db, budget=budget,
                        workers=1,  # the batch already owns one slot
                        semiring=semiring,
                    )
                tenant.charge(
                    sum(r.elapsed for r in batch),
                    ok=batch.failures == 0,
                )
                results = []
                for item in batch:
                    if item.ok:
                        entry = {
                            "ok": True,
                            "rows": [
                                list(r)
                                for r in sorted(
                                    item.answer.rows, key=repr
                                )
                            ],
                            "cache_hit": item.cache_hit,
                            "elapsed_ms": round(item.elapsed * 1e3, 3),
                        }
                        if semiring is not None:
                            entry["total"] = self._wire_value(
                                semiring, item.answer.total()
                            )
                        results.append(entry)
                    else:
                        results.append(
                            {
                                "ok": False,
                                "error": {
                                    "type": (
                                        "BudgetExceeded"
                                        if item.method == "budget"
                                        else "EvaluationError"
                                    ),
                                    "message": item.error,
                                    "retryable": False,
                                },
                            }
                        )
                return {
                    "results": results,
                    "cache_hits": batch.cache_hits,
                    "failures": batch.failures,
                    "mode": mode,
                    "elapsed_ms": round(batch.elapsed * 1e3, 3),
                }

            return await self._run(work)
        finally:
            self.admission.release(time.perf_counter() - started)

    async def _op_subscribe(
        self, conn: _Connection, tenant: Tenant, message: dict[str, Any]
    ) -> dict[str, Any]:
        query = self._parse_query(message.get("q"))
        tenant.admit()
        self.admission.check_cost(query, tenant.db)
        await self.admission.acquire()
        started = time.perf_counter()
        try:

            def work():
                # LiveEngine.register serialises against apply through
                # the live lock; initial materialisation reads the db
                # under it.
                return tenant.live.register(query)

            handle = await self._run(work)
        finally:
            self.admission.release(time.perf_counter() - started)
        self._next_sub += 1
        sub = PushSubscription(
            self._next_sub,
            handle,
            self._loop,
            conn.try_send,
            conn.drop,
            max_pending_rows=self.push_max_pending,
            owner=tenant,
        )
        conn.subs[sub.sub_id] = sub
        tenant.metrics.counter("subscriptions").inc()
        answers = handle.answers()
        return {
            "sub": sub.sub_id,
            "rows": [list(r) for r in sorted(answers.rows, key=repr)],
            "attributes": list(answers.attributes),
            "width": handle.width,
            "method": handle.method,
            "cache_hit": handle.cache_hit,
        }

    def _op_unsubscribe(
        self, conn: _Connection, message: dict[str, Any]
    ) -> dict[str, Any]:
        sub_id = message.get("sub")
        sub = conn.subs.pop(sub_id, None)
        if sub is None:
            raise ProtocolError(f"unknown subscription {sub_id!r}")
        sub.close()
        # Unregister against the tenant that owned the view at subscribe
        # time — NOT the currently bound tenant: a re-'hello' may have
        # rebound the connection, and view ids are per-engine counters,
        # so the wrong engine could hold an unrelated view under this id.
        if sub.owner is not None:
            sub.owner.live.unregister(sub.handle)
        return {"sub": sub_id, "unsubscribed": True}

    # -- helpers -----------------------------------------------------------
    async def _run(self, fn):
        """Run a synchronous engine call on the bounded executor."""
        return await self._loop.run_in_executor(self._executor, fn)

    def stats(self) -> dict[str, Any]:
        """The ``stats`` op: cache/admission/tenant state in one view."""
        with self._tenants_lock:
            tenants = {
                tid: t.snapshot() for tid, t in sorted(self.tenants.items())
            }
        return {
            "server": _version,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "plan_cache": self.engine.cache.info(),
            "decompositions": self.engine.decompositions,
            "admission": self.admission.snapshot(),
            "tenants": tenants,
        }


def _ms(value: Any) -> float | None:
    """Milliseconds-on-the-wire to seconds (None passes through)."""
    if value is None:
        return None
    try:
        return max(0.0, float(value)) / 1e3
    except (TypeError, ValueError):
        raise ProtocolError(f"bad millisecond value {value!r}") from None


class ServerThread:
    """A :class:`QueryServer` running on a dedicated thread + loop.

    ``with serve_in_thread(...) as st:`` gives tests, benchmarks, and
    examples an in-process server whose ``host``/``port`` are bound by
    the time the constructor returns; :meth:`stop` (or the context exit)
    shuts the loop down and joins the thread.
    """

    def __init__(self, server: QueryServer):
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error

    def _main(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def boot() -> None:
            try:
                await self.server.start()
            except BaseException as error:  # noqa: BLE001 - reported to caller
                self._startup_error = error
            finally:
                self._ready.set()

        self._loop.run_until_complete(boot())
        if self._startup_error is None:
            try:
                self._loop.run_forever()
            finally:
                self._loop.run_until_complete(self.server.stop())
                # Connection handlers blocked on reads are cancelled so
                # the loop closes clean (clients see the socket drop).
                pending = [
                    t for t in asyncio.all_tasks(self._loop) if not t.done()
                ]
                for task in pending:
                    task.cancel()
                if pending:
                    self._loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
        self._loop.close()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(**kwargs: Any) -> ServerThread:
    """Start a :class:`QueryServer` on a background thread; returns once
    the port is bound."""
    return ServerThread(QueryServer(**kwargs))
