"""Open- and closed-loop load generation against a query server.

Two canonical load models, because they measure different things:

* **closed loop** — *workers* clients each issue the next request the
  moment the previous response lands.  Offered load adapts to the
  server: this measures best-case service latency and per-connection
  throughput, and at low worker counts a healthy server should shed
  nothing.
* **open loop** — arrivals fire on a fixed schedule (``rate``/s) whether
  or not earlier requests finished, the model that actually exposes
  queueing collapse: latency here is measured **from the scheduled
  arrival time**, so coordinated omission cannot hide queue delay.

Both produce a :class:`LoadReport` carrying the full latency sample set
(p50/p95/p99 by exact rank, not estimation) and the typed outcome counts
— ok / shed / rate-limited / budget-exceeded — plus :meth:`records` in
the unified bench-record schema, so ``repro bench diff`` tracks serving
latency the same way it tracks planner latency.

The generator is deliberately thread-per-connection over the blocking
:class:`~repro.serve.client.ServeClient`: the load pattern stays honest
(each worker is an independent closed/open-loop arrival process) and the
generator shares no event loop with the server under test.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from .._errors import BudgetExceeded, ReproError
from ..obs.history import record
from .client import ServeClient
from .protocol import RateLimited, ServerOverloaded


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str
    duration: float
    offered: int
    ok: int = 0
    shed: int = 0
    rate_limited: int = 0
    budget_exceeded: int = 0
    errors: int = 0
    cache_hits: int = 0
    #: Per-request latency samples in seconds (ok requests only).
    latencies: list[float] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.ok + self.budget_exceeded + self.errors

    @property
    def throughput(self) -> float:
        """Successful requests per second of run wall-clock."""
        return self.ok / self.duration if self.duration > 0 else 0.0

    def percentile(self, p: float) -> float:
        """Exact nearest-rank percentile over the ok-request samples
        (seconds); ``nan`` with no samples."""
        if not self.latencies:
            return float("nan")
        ordered = sorted(self.latencies)
        rank = max(1, round(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "duration_seconds": round(self.duration, 3),
            "offered": self.offered,
            "ok": self.ok,
            "shed": self.shed,
            "rate_limited": self.rate_limited,
            "budget_exceeded": self.budget_exceeded,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "throughput_qps": round(self.throughput, 2),
            "p50_ms": round(self.percentile(50) * 1e3, 3),
            "p95_ms": round(self.percentile(95) * 1e3, 3),
            "p99_ms": round(self.percentile(99) * 1e3, 3),
        }

    def records(self, prefix: str | None = None) -> list[dict]:
        """The run in the unified bench-record schema (``repro bench``).

        Latency/throughput records carry env-bound units (skipped across
        differing environment fingerprints); the shed count is exact and
        compares everywhere.
        """
        tag = f"{prefix or self.mode}"
        recs = [
            record(f"{tag}.p50", self.percentile(50) * 1e3, "ms",
                   better="lower", tolerance=1.0),
            record(f"{tag}.p99", self.percentile(99) * 1e3, "ms",
                   better="lower", tolerance=1.0),
            record(f"{tag}.throughput", self.throughput, "qps",
                   better="higher", tolerance=1.0),
            record(f"{tag}.shed", self.shed, "requests",
                   better="lower", tolerance=0.0),
        ]
        return recs

    def histogram(self) -> dict[str, Any]:
        """A JSON-ready latency histogram (log-spaced ms buckets) for
        artifact upload."""
        bounds_ms = [
            b * s for s in (0.1, 1.0, 10.0, 100.0, 1000.0) for b in (1, 2, 5)
        ]
        counts = [0] * (len(bounds_ms) + 1)
        for sample in self.latencies:
            ms = sample * 1e3
            for index, bound in enumerate(bounds_ms):
                if ms <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
        return {
            "unit": "ms",
            "le": bounds_ms + [None],
            "counts": counts,
            "samples": len(self.latencies),
            **self.summary(),
        }


def _issue(
    client: ServeClient,
    report: LoadReport,
    lock: threading.Lock,
    q: str,
    budget_ms: float | None,
    queue_timeout_ms: float | None,
    started: float,
) -> None:
    """One request: classify its outcome into the report."""
    try:
        result = client.query(
            q, budget_ms=budget_ms, queue_timeout_ms=queue_timeout_ms
        )
        elapsed = time.perf_counter() - started
        with lock:
            report.ok += 1
            report.latencies.append(elapsed)
            if result.get("cache_hit"):
                report.cache_hits += 1
    except ServerOverloaded:
        with lock:
            report.shed += 1
    except RateLimited:
        with lock:
            report.rate_limited += 1
    except BudgetExceeded:
        with lock:
            report.budget_exceeded += 1
    except ReproError:
        with lock:
            report.errors += 1


def run_closed_loop(
    host: str,
    port: int,
    tenant: str,
    queries: Sequence[str],
    workers: int = 4,
    requests_per_worker: int = 25,
    budget_ms: float | None = None,
    queue_timeout_ms: float | None = None,
) -> LoadReport:
    """*workers* synchronous clients, each firing its next request as
    soon as the previous one completes."""
    if not queries:
        raise ValueError("closed loop needs at least one query")
    report = LoadReport(
        mode="closed", duration=0.0,
        offered=workers * requests_per_worker,
    )
    lock = threading.Lock()

    def worker(index: int) -> None:
        with ServeClient(host, port, tenant=tenant) as client:
            for turn in range(requests_per_worker):
                q = queries[(index + turn) % len(queries)]
                _issue(
                    client, report, lock, q, budget_ms, queue_timeout_ms,
                    time.perf_counter(),
                )

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"loadgen-{i}")
        for i in range(workers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration = time.perf_counter() - started
    return report


def run_open_loop(
    host: str,
    port: int,
    tenant: str,
    queries: Sequence[str],
    rate: float = 50.0,
    duration: float = 2.0,
    concurrency: int = 16,
    budget_ms: float | None = None,
    queue_timeout_ms: float | None = None,
) -> LoadReport:
    """Fixed-rate arrivals for *duration* seconds, served by a pool of
    *concurrency* connections.

    Latency is measured from each request's **scheduled** arrival time.
    When every pool connection is busy the wait counts against latency
    (that *is* the queueing delay an open-loop client observes); an
    arrival whose turn never comes before the run drains is counted as
    offered-but-not-completed rather than silently dropped from the
    sample set.
    """
    if not queries:
        raise ValueError("open loop needs at least one query")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    offered = max(1, int(rate * duration))
    report = LoadReport(mode="open", duration=0.0, offered=offered)
    lock = threading.Lock()
    arrivals: queue.Queue[tuple[int, float] | None] = queue.Queue()

    started = time.perf_counter()

    def worker() -> None:
        with ServeClient(host, port, tenant=tenant) as client:
            while True:
                item = arrivals.get()
                if item is None:
                    return
                index, scheduled = item
                now = time.perf_counter()
                if now < scheduled:
                    time.sleep(scheduled - now)
                _issue(
                    client, report, lock,
                    queries[index % len(queries)],
                    budget_ms, queue_timeout_ms,
                    scheduled,  # latency from *scheduled* arrival
                )

    threads = [
        threading.Thread(target=worker, name=f"loadgen-open-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    interarrival = 1.0 / rate
    for index in range(offered):
        arrivals.put((index, started + index * interarrival))
    for _ in threads:
        arrivals.put(None)
    for thread in threads:
        thread.join()
    report.duration = time.perf_counter() - started
    return report
