"""A blocking client for the ``repro.serve`` protocol.

:class:`ServeClient` is deliberately synchronous — plain sockets, no
event loop — because its callers are tests, the load generator's worker
threads, and example scripts, all of which want straight-line code.  One
client instance is one connection and one tenant binding; it is **not**
thread-safe (the load generator opens one client per worker).

Typed errors cross the wire intact: a server-side ``BudgetExceeded``
raises ``BudgetExceeded`` here, a shed request raises
:class:`~repro.serve.protocol.ServerOverloaded` with its ``retry_after``
hint, so client code handles remote failures with the same ``except``
clauses it would use in-process (see
:func:`~repro.serve.protocol.raise_remote`).

Push messages arriving while a response is awaited are buffered and
surfaced through :meth:`pushes` / :meth:`wait_push` — the transport
interleaves them between responses, the client keeps the two streams
apart.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Iterable, Mapping

from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    encode,
    raise_remote,
    request,
)


class ServeClient:
    """One connection to a :class:`~repro.serve.server.QueryServer`.

    Parameters
    ----------
    host / port:
        The server address.
    tenant:
        Tenant to bind with ``hello`` on connect (``None`` skips the
        handshake; only ``ping``/``stats`` will work).
    timeout:
        Socket timeout in seconds for connect and each response wait.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str | None = None,
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        self._pushes: list[dict[str, Any]] = []
        self.hello_info: dict[str, Any] | None = None
        if tenant is not None:
            self.hello_info = self.call("hello", tenant=tenant)

    # -- transport ---------------------------------------------------------
    def call(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one request; block for its response; raise typed errors."""
        self._next_id += 1
        request_id = self._next_id
        self._sock.sendall(encode(request(op, request_id, **params)))
        while True:
            message = self._read_message()
            if "push" in message:
                self._pushes.append(message)
                continue
            if message.get("id") != request_id:
                raise ProtocolError(
                    f"response id {message.get('id')!r} does not match "
                    f"request id {request_id!r}"
                )
            if message.get("ok"):
                return message.get("result", {})
            raise_remote(message.get("error", {}))

    def _read_message(self) -> dict[str, Any]:
        line = self._file.readline(MAX_LINE_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        if not line.endswith(b"\n"):
            # readline() hit its byte cap mid-message: the line framing
            # is lost and every later read would start mid-JSON.  Fail
            # clearly instead of surfacing a confusing decode error.
            if len(line) > MAX_LINE_BYTES:
                raise ProtocolError(
                    f"oversized message from server (over {MAX_LINE_BYTES}"
                    " bytes); framing lost — close this connection"
                )
            raise ConnectionError("server closed the connection mid-message")
        message = json.loads(line)
        if not isinstance(message, dict) or message.get("v") != PROTOCOL_VERSION:
            raise ProtocolError(f"bad message from server: {message!r}")
        return message

    # -- ops ---------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def declare(self, predicate: str, arity: int) -> dict[str, Any]:
        return self.call("declare", predicate=predicate, arity=arity)

    def load(
        self, predicate: str, rows: Iterable[Iterable[Any]]
    ) -> dict[str, Any]:
        return self.call(
            "load", predicate=predicate, rows=[list(r) for r in rows]
        )

    def apply(
        self, changes: Mapping[str, Iterable[tuple[Iterable[Any], int]]]
    ) -> dict[str, Any]:
        """Apply a signed delta: ``{predicate: [(row, ±1), ...]}``."""
        wire = {
            predicate: [[list(row), sign] for row, sign in entries]
            for predicate, entries in changes.items()
        }
        return self.call("apply", changes=wire)

    def query(
        self,
        q: str,
        budget_ms: float | None = None,
        queue_timeout_ms: float | None = None,
        mode: str | None = None,
        k: int | None = None,
    ) -> dict[str, Any]:
        """Evaluate one query; *mode* selects a semiring evaluation
        (``count``/``top_k``/``mincost``/``provenance``/``prob``; the
        default is plain set semantics), *k* bounds ``top_k``."""
        params: dict[str, Any] = {"q": q}
        if budget_ms is not None:
            params["budget_ms"] = budget_ms
        if queue_timeout_ms is not None:
            params["queue_timeout_ms"] = queue_timeout_ms
        if mode is not None:
            params["mode"] = mode
        if k is not None:
            params["k"] = k
        return self.call("query", **params)

    def query_many(
        self,
        qs: Iterable[str],
        budget_ms: float | None = None,
        queue_timeout_ms: float | None = None,
        mode: str | None = None,
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"qs": list(qs)}
        if budget_ms is not None:
            params["budget_ms"] = budget_ms
        if queue_timeout_ms is not None:
            params["queue_timeout_ms"] = queue_timeout_ms
        if mode is not None:
            params["mode"] = mode
        return self.call("query_many", **params)

    # Semiring-mode conveniences (see repro.db.semiring for semantics).
    def count(self, q: str, **kwargs: Any) -> int:
        """Total number of derivations of *q* (ℕ semiring)."""
        return int(self.query(q, mode="count", **kwargs)["total"])

    def top_k(self, q: str, k: int = 1, **kwargs: Any) -> list[dict[str, Any]]:
        """The *k* cheapest answers with their costs and witnesses."""
        return self.query(q, mode="top_k", k=k, **kwargs)["top"]

    def provenance(self, q: str, **kwargs: Any) -> list[list[Any]]:
        """``[row, witness sets]`` pairs for every answer of *q*."""
        return self.query(q, mode="provenance", **kwargs)["annotations"]

    def subscribe(self, q: str) -> dict[str, Any]:
        return self.call("subscribe", q=q)

    def unsubscribe(self, sub: int) -> dict[str, Any]:
        return self.call("unsubscribe", sub=sub)

    def stats(self) -> dict[str, Any]:
        return self.call("stats")

    # -- pushes ------------------------------------------------------------
    def pushes(self) -> list[dict[str, Any]]:
        """Drain the buffered push messages received so far."""
        drained, self._pushes = self._pushes, []
        return drained

    def wait_push(
        self, timeout: float = 5.0, sub: int | None = None
    ) -> dict[str, Any] | None:
        """Block until one push message arrives (optionally for *sub*).

        Returns ``None`` on timeout.  Buffered pushes are consumed
        first; otherwise the socket is read (responses cannot interleave
        here — the client is synchronous, so no request is outstanding).
        """
        deadline = time.monotonic() + timeout
        while True:
            for index, message in enumerate(self._pushes):
                if sub is None or message.get("sub") == sub:
                    return self._pushes.pop(index)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            self._sock.settimeout(remaining)
            try:
                message = self._read_message()
            except (socket.timeout, TimeoutError):
                return None
            finally:
                self._sock.settimeout(self.timeout)
            if "push" in message:
                self._pushes.append(message)
            # A stray response here would be a pipelining bug; ignore it
            # rather than corrupt the push stream.

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        except Exception:
            pass
        try:
            self._sock.close()
        except Exception:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
