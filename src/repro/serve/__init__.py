"""``repro.serve`` — an async multi-tenant query service.

The serving tier over the engine stack: one
:class:`~repro.serve.server.QueryServer` multiplexes many tenants onto
one shared planning :class:`~repro.engine.Engine` (and thus one
fingerprint-keyed plan cache — isomorphic queries across tenants cost a
transport, not a decomposition search), with per-tenant databases,
token-bucket rate limits, and cumulative execution budgets; admission
control bounds the request queue and sheds load with typed, retryable
errors; ``subscribe`` turns any conjunctive query into a push stream fed
by the incremental :class:`~repro.incremental.MaterializedView`
answer-delta machinery.

Entry points::

    from repro.serve import serve_in_thread, ServeClient

    with serve_in_thread(rate=100.0) as server:
        with ServeClient(server.host, server.port, tenant="acme") as c:
            c.load("e", [(1, 2), (2, 3)])
            c.query("ans(x, z) :- e(x, y), e(y, z)")

or from the command line: ``repro serve`` / ``repro loadgen``.
"""

from .admission import AdmissionController, estimate_cost
from .client import ServeClient
from .loadgen import LoadReport, run_closed_loop, run_open_loop
from .protocol import (
    PROTOCOL_VERSION,
    InternalError,
    ProtocolError,
    QueryRejected,
    RateLimited,
    RemoteError,
    ResponseTooLarge,
    ServeError,
    ServerOverloaded,
    SubscriptionLapsed,
    UnknownTenantError,
)
from .push import PushSubscription
from .server import QueryServer, ServerThread, serve_in_thread
from .tenant import ReadWriteLock, Tenant, TenantBudgetExceeded, TokenBucket

__all__ = [
    "AdmissionController",
    "InternalError",
    "LoadReport",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "PushSubscription",
    "QueryRejected",
    "QueryServer",
    "RateLimited",
    "ReadWriteLock",
    "RemoteError",
    "ResponseTooLarge",
    "ServeClient",
    "ServeError",
    "ServerOverloaded",
    "ServerThread",
    "SubscriptionLapsed",
    "Tenant",
    "TenantBudgetExceeded",
    "TokenBucket",
    "UnknownTenantError",
    "estimate_cost",
    "run_closed_loop",
    "run_open_loop",
    "serve_in_thread",
]
