"""Per-tenant state: database, rate limits, and inference budgets.

Each tenant of a :class:`~repro.serve.server.QueryServer` owns an
isolated :class:`~repro.db.database.Database` (loaded and mutated only
through that tenant's connection ops) wrapped in a
:class:`~repro.incremental.live.LiveEngine` so push subscriptions ride
the existing :class:`~repro.incremental.view.MaterializedView`
answer-delta machinery.  What tenants *share* is the server's single
planning :class:`~repro.engine.Engine` — and with it the
fingerprint-keyed plan cache, so two tenants submitting renamed-
isomorphic queries cost one decomposition search plus one transport.

Budgets are first-class, mapped onto the existing
:class:`~repro._errors.BudgetExceeded` machinery:

* **per-request budget** — wall-clock seconds forwarded to
  ``Engine.execute(budget=...)``; the deadline is anchored at execution
  start (PR 4 semantics), never at queue entry;
* **cumulative budget** — total execution seconds a tenant may consume
  over its lifetime.  Each finished request is charged its measured
  latency; once spent, further requests raise
  :class:`TenantBudgetExceeded` *before* touching the engine, so an
  over-budget tenant degrades to cheap typed errors instead of
  consuming shared pool capacity.
* **token-bucket rate limit** — requests per second with a burst
  allowance; an empty bucket raises
  :class:`~repro.serve.protocol.RateLimited` carrying the exact
  ``retry_after`` until the next token.

Per-tenant metrics land in the process-global registry under
``tenant.<id>.*`` via :meth:`~repro.obs.metrics.MetricsRegistry.scoped`
(``repro stats --json`` groups them back per tenant).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any

from .._errors import BudgetExceeded
from ..db.database import Database
from ..engine.executor import Engine
from ..incremental.live import LiveEngine
from ..obs import get_registry
from .protocol import RateLimited


class TenantBudgetExceeded(BudgetExceeded):
    """A tenant's *cumulative* execution budget is spent.

    Subclasses :class:`BudgetExceeded`, so every existing handler of
    blown budgets (``execute_many`` fault isolation, the CLI, the
    flight recorder's auto-dump) treats it identically; the wire payload
    still names the subclass, letting clients distinguish "this request
    was too slow" from "this tenant is out of quota".
    """


class ReadWriteLock:
    """A writer-preferring read-write lock for tenant databases.

    Queries evaluate concurrently (shared), while mutations — ``load`` /
    ``apply`` / ``declare``, which fold deltas into the tenant's
    database and views — take the lock exclusively.  The engine reads
    :class:`~repro.db.database.Database` row sets outside any lock, so
    without this a delta landing mid-query could mutate a set another
    thread is iterating.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class TokenBucket:
    """A thread-safe token bucket: *rate* tokens/second, *burst* deep.

    ``try_acquire`` never blocks — it either takes a token and returns
    0.0, or returns the seconds until one becomes available (the
    ``Retry-After`` hint for :class:`RateLimited`).
    """

    def __init__(self, rate: float, burst: float | None = None):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, rate)
        self._tokens = self.burst
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take *tokens* now if available (return 0.0), else the wait."""
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate

    @property
    def available(self) -> float:
        with self._lock:
            now = time.monotonic()
            return min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )


class Tenant:
    """One tenant's isolated state inside a shared server.

    Parameters
    ----------
    tenant_id:
        The name the ``hello`` op bound.  Also the metric label:
        counters land under ``tenant.<id>.*``.
    engine:
        The server's shared planning engine (plan cache included).
    seed_db:
        Optional template database copied into this tenant at creation
        (``repro serve FACTS`` preloads every tenant with the file).
    request_budget:
        Default per-request execution budget in seconds (``None`` =
        unbounded); individual requests may pass a smaller one.
    total_budget:
        Cumulative execution-seconds quota (``None`` = unmetered).
    rate / burst:
        Token-bucket admission rate (requests/second) and depth;
        ``rate=None`` disables rate limiting.
    """

    def __init__(
        self,
        tenant_id: str,
        engine: Engine,
        seed_db: Database | None = None,
        request_budget: float | None = None,
        total_budget: float | None = None,
        rate: float | None = None,
        burst: float | None = None,
    ):
        self.tenant_id = tenant_id
        db = Database()
        if seed_db is not None:
            for predicate in seed_db.predicates():
                db.declare(predicate, seed_db.arity(predicate))
                for row in seed_db.rows(predicate):
                    db.add_fact(predicate, *row)
        self.live = LiveEngine(db=db, engine=engine)
        self.rw = ReadWriteLock()
        self.request_budget = request_budget
        self.total_budget = total_budget
        self.bucket = TokenBucket(rate, burst) if rate is not None else None
        self.consumed = 0.0
        self.requests = 0
        self.failures = 0
        self.shed = 0
        self._lock = threading.Lock()
        self.metrics = get_registry().scoped(f"tenant.{tenant_id}")

    @property
    def db(self) -> Database:
        return self.live.db

    # -- admission hooks ---------------------------------------------------
    def admit(self) -> None:
        """Rate-limit and quota gate, called before a request queues.

        Raises :class:`RateLimited` (retryable, with the bucket's exact
        refill time) or :class:`TenantBudgetExceeded` (terminal until an
        operator raises the quota).  Passing costs one token.
        """
        self.check_budget()
        if self.bucket is not None:
            wait = self.bucket.try_acquire()
            if wait > 0.0:
                self.metrics.counter("rate_limited").inc()
                with self._lock:
                    self.shed += 1
                raise RateLimited(
                    f"tenant {self.tenant_id!r} over {self.bucket.rate:g} "
                    f"req/s; retry in {wait:.3f}s",
                    retry_after=wait,
                )

    def check_budget(self) -> None:
        """Raise :class:`TenantBudgetExceeded` once the quota is spent."""
        if self.total_budget is None:
            return
        with self._lock:
            spent = self.consumed
        if spent >= self.total_budget:
            self.metrics.counter("budget_rejected").inc()
            raise TenantBudgetExceeded(
                f"tenant {self.tenant_id!r} spent {spent:.3f}s of its "
                f"{self.total_budget:g}s cumulative budget"
            )

    def effective_budget(self, requested: float | None) -> float | None:
        """The per-request budget to hand the engine: the smaller of the
        request's own ask, the tenant default, and — under a cumulative
        quota — whatever quota remains (a request can never be granted
        more runtime than the tenant has left)."""
        candidates = [
            b for b in (requested, self.request_budget) if b is not None
        ]
        if self.total_budget is not None:
            with self._lock:
                candidates.append(
                    max(0.0, self.total_budget - self.consumed)
                )
        return min(candidates) if candidates else None

    # -- accounting --------------------------------------------------------
    def charge(self, seconds: float, ok: bool = True) -> None:
        """Account one finished request against the cumulative budget."""
        with self._lock:
            self.consumed += seconds
            self.requests += 1
            if not ok:
                self.failures += 1
        self.metrics.counter("requests").inc()
        if not ok:
            self.metrics.counter("failures").inc()
        self.metrics.counter("execute_seconds").inc(max(0.0, seconds))
        self.metrics.histogram("request_seconds").observe(max(0.0, seconds))

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "tenant": self.tenant_id,
                "requests": self.requests,
                "failures": self.failures,
                "shed": self.shed,
                "consumed_seconds": round(self.consumed, 6),
                "total_budget": self.total_budget,
                "request_budget": self.request_budget,
                "rate": self.bucket.rate if self.bucket else None,
                "db_tuples": self.db.tuple_count(),
                "views": len(self.live),
            }

    def close(self) -> None:
        """Release the tenant's view fan-out pool (the shared planning
        engine is owned — and closed — by the server)."""
        self.live.close()

    def __repr__(self) -> str:
        return (
            f"<Tenant {self.tenant_id!r}: {self.db.tuple_count()} tuples, "
            f"{len(self.live)} views>"
        )
