"""Physical plans: a decomposition compiled against a concrete database.

A cached (or freshly computed) hypertree decomposition fixes only the
*structure* of evaluation.  This module adds the database-dependent
choices — cheap, polynomial-time, recomputed per request — on top of the
Lemma 4.6 pipeline:

* **per-node join order** — each node's bag relation joins its λ atoms
  smallest-estimate first, preferring atoms sharing variables with the
  part already joined (System-R-style greedy, driven by
  :class:`repro.db.stats.CardinalityEstimator`);
* **root choice** — the join tree over the materialised bags is re-rooted
  at the bag with the largest estimated cardinality, so the full
  reducer's bottom-up sweep filters the biggest relation with every
  child before enumeration starts.  (Join trees, unlike hypertree
  decompositions, may be re-rooted freely: the connectedness condition
  is symmetric.)
* **per-node shard counts** — with a parallel backend selected, each
  node whose estimated bag cardinality reaches
  :data:`SHARD_MIN_ROWS` is assigned ``workers`` hash partitions;
  smaller bags stay unsharded (below ~1k rows the partitioning overhead
  dominates any shard-task win).  This replaces the PR-4 global
  ``parallelism`` knob: the shard decision is per relation, from the
  same cardinality estimates that order the joins.
* **per-node layout** — ``layout="columnar"`` materialises every bag as
  a :class:`~repro.db.columnar.ColumnarRelation` (contiguous buffers,
  vectorised semijoin/join kernels, shared-memory scatter under the
  process backend); ``"auto"`` flips only the nodes whose estimated
  cardinality reaches :data:`~repro.db.columnar.COLUMNAR_MIN_ROWS`,
  reusing the shard policy's estimates — small bags keep the row path,
  whose per-call overhead is lower.  Annotated (semiring) requests
  always stay row: the per-row annotation maps are the point.

Execution materialises the bags in plan order, then runs the Yannakakis
passes — sequentially, or over the selected execution backend
(:mod:`repro.db.backend`) with the plan's shard assignment.  A deadline
is checked between operators so per-request budgets interrupt long plans
with :class:`repro._errors.BudgetExceeded` (under the process backend
the check sits between operators on the coordinating side; an individual
shard task is never interrupted mid-flight).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .._errors import BudgetExceeded
from ..core.atoms import Atom, Variable
from ..core.hypertree import HTNode, HypertreeDecomposition
from ..core.jointree import JoinTree, join_tree_from_edges
from ..core.query import ConjunctiveQuery
from ..db.annotated import (
    AnnotatedRelation,
    assign_annotated_atoms,
    bind_atom_annotated,
    naive_annotated_eval,
)
from ..db.backend import BACKEND_KINDS, ExecutionContext, make_backend
from ..db.binding import bind_atom
from ..db.columnar import (
    COLUMNAR_MIN_ROWS,
    LAYOUTS,
    ColumnarRelation,
    to_columnar,
)
from ..db.database import Database
from ..db.parallel import (
    parallel_boolean_eval,
    parallel_enumerate_answers,
)
from ..db.relation import Relation
from ..db.semiring import Semiring
from ..db.stats import CardinalityEstimator, EvalStats
from ..db.yannakakis import boolean_eval, enumerate_answers
from ..obs import Tracer, current_tracer, get_registry

#: Estimated bag cardinality below which a node is never sharded: the
#: ROADMAP's "partition overhead dominates below ~1k rows" observation,
#: applied per relation by the cost-based policy.
SHARD_MIN_ROWS = 1000


def _check_deadline(deadline: float | None, phase: str) -> None:
    if deadline is not None and time.monotonic() > deadline:
        raise BudgetExceeded(f"engine budget exhausted during {phase}")


@dataclass(frozen=True)
class NodePlan:
    """Compiled evaluation of one decomposition node's bag relation."""

    bag: Atom
    chi_names: tuple[str, ...]
    join_order: tuple[Atom, ...]
    estimated_rows: float
    atom_estimates: tuple[float, ...]
    n_shards: int = 1
    layout: str = "row"

    def describe(self) -> str:
        steps = " ⋈ ".join(
            f"{a}[≈{int(est)}]"
            for a, est in zip(self.join_order, self.atom_estimates)
        )
        chi = ", ".join(self.chi_names)
        shards = f" ×{self.n_shards} shards" if self.n_shards > 1 else ""
        layout = " [columnar]" if self.layout == "columnar" else ""
        return (
            f"{self.bag.predicate}: π[{chi}]({steps or 'unit'}) "
            f"≈{int(self.estimated_rows)} rows{shards}{layout}"
        )


@dataclass(frozen=True)
class QueryPlan:
    """A fully compiled physical plan for one (query, database) pair."""

    query: ConjunctiveQuery
    decomposition: HypertreeDecomposition
    node_plans: tuple[NodePlan, ...]
    join_tree: JoinTree
    output: tuple[str, ...]
    width: int
    provenance: str = "exact"
    cache_hit: bool = field(default=False)
    backend: str = field(default="sequential")
    workers: int = field(default=1)
    layout: str = field(default="row")

    @property
    def shard_counts(self) -> dict[Atom, int]:
        """Per-node shard assignment for the Yannakakis passes."""
        return {np.bag: np.n_shards for np in self.node_plans}

    def digest(self) -> str:
        """A short stable hash of the plan's *structure* — provenance,
        width, backend, per-node pipelines, join tree.  Two requests
        with the same digest executed the same physical plan, which is
        how the flight recorder's slow-query log groups outliers."""
        import hashlib

        payload = "\n".join(
            [
                str(self.query),
                self.provenance,
                str(self.width),
                f"{self.backend}x{self.workers}",
                self.layout,
                ",".join(self.output),
                *(np.describe() for np in self.node_plans),
                self.join_tree.render(),
            ]
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    def render(self) -> str:
        """The ``explain`` rendering: provenance, per-node pipelines, and
        the rooted join tree the Yannakakis passes will run over."""
        sharded = sum(1 for np in self.node_plans if np.n_shards > 1)
        backend_tag = (
            f", {self.backend} backend × {self.workers} "
            f"({sharded}/{len(self.node_plans)} nodes sharded)"
            if self.backend != "sequential"
            else ""
        )
        columnar = sum(1 for np in self.node_plans if np.layout == "columnar")
        layout_tag = (
            f", layout {self.layout} "
            f"({columnar}/{len(self.node_plans)} nodes columnar)"
            if self.layout != "row"
            else ""
        )
        lines = [
            f"plan for {self.query.name}: width {self.width} "
            f"[{self.provenance}{', cached' if self.cache_hit else ''}"
            + backend_tag
            + layout_tag
            + "]",
            f"output: ({', '.join(self.output)})" if self.output else "output: boolean",
            "bag materialisation (cardinality-ascending joins):",
        ]
        for np in self.node_plans:
            marker = " <- root" if np.bag == self.join_tree.root else ""
            lines.append(f"  {np.describe()}{marker}")
        lines.append("join tree (semijoin + enumeration passes):")
        lines.append(self.join_tree.render())
        return "\n".join(lines)

    def render_analyzed(
        self, tracer: Tracer, elapsed: float, answer_rows: int
    ) -> str:
        """The ``EXPLAIN ANALYZE`` rendering: the static plan annotated
        with what one traced execution actually did.

        Per node: estimated vs actual bag cardinality (exposing the
        misestimates the cost-based shard policy silently acts on),
        materialisation wall time, and the node's share of the sweep
        (semijoin/join operator time attributed by relation name).
        Worker-resident shard tasks — whose time is recorded *inside*
        the process-backend workers and shipped back at reply time —
        are totalled in the footer.
        """
        spans = tracer.spans()
        bag_spans: dict[object, list] = {}
        for span in spans:
            if span.name == "plan.bag" and "node" in span.attrs:
                bag_spans.setdefault(span.attrs["node"], []).append(span)
        sweep: dict[object, tuple[float, int]] = {}
        for span in spans:
            if span.name in ("sweep.semijoin", "sweep.join"):
                node = span.attrs.get("node")
                seconds, count = sweep.get(node, (0.0, 0))
                sweep[node] = (seconds + span.duration, count + 1)

        lines = [
            self.render(),
            f"analyze: executed in {elapsed * 1e3:.3f}ms, "
            f"{answer_rows} answer row(s)",
            "per-node actuals (estimated vs actual rows, wall time):",
        ]
        for np in self.node_plans:
            node = np.bag.predicate
            spans_here = bag_spans.get(node, [])
            actual = spans_here[-1].attrs.get("rows") if spans_here else None
            bag_ms = sum(s.duration for s in spans_here) * 1e3
            sweep_s, sweep_n = sweep.get(node, (0.0, 0))
            if actual is None:
                lines.append(f"  {node}: (no trace recorded)")
                continue
            if actual:
                factor = np.estimated_rows / actual
                misestimate = f"est/actual {factor:.2f}x"
            else:
                misestimate = f"est {int(np.estimated_rows)}, actual empty"
            lines.append(
                f"  {node}: ≈{int(np.estimated_rows)} est -> {actual} actual "
                f"rows ({misestimate}); bag {bag_ms:.3f}ms"
                + (
                    f", sweep {sweep_s * 1e3:.3f}ms over {sweep_n} op(s)"
                    if sweep_n
                    else ""
                )
            )
        shard_spans = [s for s in spans if s.name.startswith("shard:")]
        if shard_spans:
            workers = {(s.pid, s.tid) for s in shard_spans}
            busy = sum(s.duration for s in shard_spans)
            resident = sum(1 for s in shard_spans if s.pid != tracer.pid)
            lines.append(
                f"shard tasks: {len(shard_spans)} spans "
                f"({resident} worker-resident) across {len(workers)} "
                f"track(s), {busy * 1e3:.3f}ms busy"
            )
        return "\n".join(lines)


def _order_atoms(
    atoms: list[Atom], estimator: CardinalityEstimator
) -> tuple[list[Atom], list[float]]:
    """Greedy join order: start from the smallest estimated atom, then
    repeatedly take the atom sharing most variables with what is already
    joined (ties: smaller estimate, stable by rendering)."""
    remaining = sorted(atoms, key=lambda a: (estimator.atom_rows(a), str(a)))
    order: list[Atom] = []
    estimates: list[float] = []
    seen_vars: set[Variable] = set()
    while remaining:
        chosen = min(
            remaining,
            key=lambda a: (
                -len(a.variables & seen_vars),
                estimator.atom_rows(a),
                str(a),
            ),
        ) if order else remaining[0]
        remaining.remove(chosen)
        order.append(chosen)
        estimates.append(estimator.atom_rows(chosen))
        seen_vars.update(chosen.variables)
    return order, estimates


def compile_plan(
    query: ConjunctiveQuery,
    db: Database | None,
    hd: HypertreeDecomposition,
    provenance: str = "exact",
    cache_hit: bool = False,
    backend: str | None = None,
    workers: int | None = None,
    shard_threshold: int = SHARD_MIN_ROWS,
    layout: str = "row",
) -> QueryPlan:
    """Compile *hd* into a physical plan against *db*.

    The decomposition is completed (Lemma 4.4) if necessary, each node's
    bag pipeline is ordered by the database's cardinality estimates, and
    the mirrored join tree is re-rooted at the largest estimated bag.
    With ``db=None`` (an ``explain`` without facts) all estimates are 1
    and the plan falls back to deterministic syntactic order.

    *backend* selects the execution backend kind (``"sequential"``,
    ``"thread"``, ``"process"``) and *workers* its width; with a parallel
    backend each node whose estimated cardinality reaches
    *shard_threshold* is assigned ``workers`` shards, smaller nodes
    none.

    *layout* is the storage policy for materialised bags:
    ``"row"`` (frozenset-of-tuples, the default), ``"columnar"``
    (every node), or ``"auto"`` (nodes whose estimated cardinality
    reaches :data:`~repro.db.columnar.COLUMNAR_MIN_ROWS`).
    """
    if backend is None:
        backend = "sequential"
    if backend not in BACKEND_KINDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKEND_KINDS}"
        )
    if layout not in LAYOUTS:
        raise ValueError(
            f"unknown layout {layout!r}; expected one of {LAYOUTS}"
        )
    if workers is None:
        workers = 4
    if backend == "sequential":
        workers = 1
    workers = max(1, workers)

    with current_tracer().span(
        "plan.compile", query=query.name, backend=backend, workers=workers,
        layout=layout,
    ) as compile_span:
        plan = _compile_plan_traced(
            query, db, hd, provenance, cache_hit, backend, workers,
            shard_threshold, layout,
        )
        compile_span.set(
            nodes=len(plan.node_plans),
            sharded=sum(1 for np in plan.node_plans if np.n_shards > 1),
            columnar=sum(
                1 for np in plan.node_plans if np.layout == "columnar"
            ),
            width=plan.width,
        )
    return plan


def _compile_plan_traced(
    query: ConjunctiveQuery,
    db: Database | None,
    hd: HypertreeDecomposition,
    provenance: str,
    cache_hit: bool,
    backend: str,
    workers: int,
    shard_threshold: int,
    layout: str,
) -> QueryPlan:
    complete = hd if hd.is_complete else hd.complete()
    estimator = CardinalityEstimator(db)
    domain = estimator.domain_size

    nodes = complete.nodes
    node_ids = {id(n): i for i, n in enumerate(nodes)}
    fresh: dict[int, Atom] = {}
    plans: list[NodePlan] = []
    for i, p in enumerate(nodes):
        chi_names = tuple(sorted(v.name for v in p.chi))
        contributing = [
            a
            for a in p.lam
            if (a.variables & p.chi) or not a.variables
        ]
        order, estimates = _order_atoms(contributing, estimator)
        bag_rows = 1.0
        joined_vars: frozenset[Variable] = frozenset()
        for a, est in zip(order, estimates):
            bag_rows = estimator.join_rows(
                bag_rows, joined_vars, est, a.variables, domain
            )
            joined_vars = joined_vars | a.variables
        bag = Atom(f"n{i}", tuple(Variable(v) for v in chi_names))
        fresh[i] = bag
        n_shards = (
            workers
            if backend != "sequential"
            and workers > 1
            and bag_rows >= shard_threshold
            else 1
        )
        node_layout = (
            "columnar"
            if layout == "columnar"
            or (layout == "auto" and bag_rows >= COLUMNAR_MIN_ROWS)
            else "row"
        )
        plans.append(
            NodePlan(
                bag, chi_names, tuple(order), bag_rows, tuple(estimates),
                n_shards=n_shards, layout=node_layout,
            )
        )

    edges = [
        (fresh[i], fresh[node_ids[id(c)]])
        for i, p in enumerate(nodes)
        for c in p.children
    ]
    root = max(plans, key=lambda np: (np.estimated_rows, np.bag.predicate)).bag
    jt = join_tree_from_edges([fresh[i] for i in range(len(nodes))], edges, root)

    head = tuple(
        dict.fromkeys(
            t.name for t in query.head_terms if isinstance(t, Variable)
        )
    )
    return QueryPlan(
        query=query,
        decomposition=complete,
        node_plans=tuple(plans),
        join_tree=jt,
        output=head,
        width=hd.width,
        provenance=provenance,
        cache_hit=cache_hit,
        backend=backend,
        workers=workers,
        layout=layout,
    )


def _materialise_bag(
    np: NodePlan,
    p: HTNode,
    db: Database,
    stats: EvalStats,
    deadline: float | None,
    semiring: Semiring | None = None,
    carriers: frozenset[Atom] = frozenset(),
) -> Relation:
    """Materialise one decomposition node's bag relation.

    Under a *semiring*, the atoms in *carriers* (this node's share of
    the once-per-atom annotation assignment) bind annotated; the rest
    bind plain and act as filters.  Carriers always satisfy
    ``var(A) ⊆ χ(p)``, so they are never pre-projected.

    A node compiled with ``layout="columnar"`` converts the finished
    bag to :class:`~repro.db.columnar.ColumnarRelation` — the Yannakakis
    sweeps then dispatch into the vectorised kernels, and the process
    backend ships the bag over shared memory instead of the pickle
    codec.  Annotated bags are never converted (``to_columnar`` returns
    them unchanged); the ``plan.layout_columnar`` / ``plan.layout_row``
    counters record which path each bag actually took."""
    _check_deadline(deadline, f"bag materialisation of {np.bag.predicate}")
    with current_tracer().span(
        "plan.bag",
        node=np.bag.predicate,
        est=int(np.estimated_rows),
        shards=np.n_shards,
    ) as sp:
        if semiring is not None:
            rel: Relation = AnnotatedRelation.unit(semiring, np.bag.predicate)
        else:
            rel = Relation.trusted((), frozenset({()}), np.bag.predicate)
        for a in np.join_order:
            if a in carriers:
                part: Relation = bind_atom_annotated(a, db, semiring)
            else:
                part = bind_atom(a, db)
            if not a.variables <= p.chi:
                overlap = sorted(
                    (v.name for v in a.variables & p.chi)
                )
                part = part.project(overlap)
                stats.projections += 1
            rel = rel.join(part)
            stats.joins += 1
            stats.record(rel)
            _check_deadline(deadline, f"joins of {np.bag.predicate}")
        rel = stats.record(
            rel.project(list(np.chi_names), name=np.bag.predicate)
        )
        stats.projections += 1
        if np.layout == "columnar" and semiring is None:
            rel = to_columnar(rel)
        registry = get_registry()
        if isinstance(rel, ColumnarRelation):
            registry.counter("plan.layout_columnar").inc()
        else:
            registry.counter("plan.layout_row").inc()
        sp.set(rows=len(rel), layout=(
            "columnar" if isinstance(rel, ColumnarRelation) else "row"
        ))
    return rel


def execute_plan(
    plan: QueryPlan,
    db: Database,
    stats: EvalStats | None = None,
    deadline: float | None = None,
    backend: ExecutionContext | None = None,
    semiring: Semiring | None = None,
) -> Relation:
    """Run a compiled plan: materialise bags, then Yannakakis.

    Returns the answer relation; for a Boolean query the result has an
    empty schema and is non-empty iff the query is true.  Raises
    :class:`BudgetExceeded` when *deadline* (monotonic seconds) passes
    between operators.

    *backend* is a live :class:`~repro.db.backend.ExecutionContext` to
    run the plan's shard assignment on (typically engine-owned, so
    process workers persist across requests).  Without one, a plan
    compiled for a parallel backend creates a private context for the
    call and closes it afterwards.

    *semiring* switches the run to annotated semantics: the answer is an
    :class:`~repro.db.annotated.AnnotatedRelation` carrying one value
    per row (Boolean plans enumerate the 0-ary answer instead of
    short-circuiting, so the () row's annotation is the query total).
    """
    stats = stats if stats is not None else EvalStats()
    counts = plan.shard_counts
    own = False
    if backend is not None:
        ctx: ExecutionContext | None = backend
    elif plan.backend != "sequential" and any(
        n > 1 for n in counts.values()
    ):
        ctx = make_backend(plan.backend, plan.workers)
        own = True
    else:
        ctx = None
    try:
        with current_tracer().span(
            "plan.execute",
            query=plan.query.name,
            backend=plan.backend,
            nodes=len(plan.node_plans),
        ) as sp:
            answer = _execute_with_context(
                plan, db, stats, deadline, ctx, counts, semiring
            )
            sp.set(rows=len(answer))
        return answer
    finally:
        if own and ctx is not None:
            ctx.close()


def _execute_with_context(
    plan: QueryPlan,
    db: Database,
    stats: EvalStats,
    deadline: float | None,
    ctx: ExecutionContext | None,
    counts: dict[Atom, int],
    semiring: Semiring | None = None,
) -> Relation:
    node_pairs = list(zip(plan.node_plans, plan.decomposition.nodes))
    carriers_of: dict[int, frozenset[Atom]] = {}
    if semiring is not None:
        assignment = assign_annotated_atoms(
            [(np.join_order, p.chi) for np, p in node_pairs],
            plan.query.atoms,
        )
        if assignment is None:
            # No once-per-atom assignment over this plan's join orders;
            # annotated naive evaluation is always correct.
            return naive_annotated_eval(plan.query, db, semiring, stats)
        for atom, i in assignment.items():
            carriers_of[i] = carriers_of.get(i, frozenset()) | {atom}
    if (
        ctx is not None
        and ctx.kind == "thread"
        and ctx.workers > 1
        and len(node_pairs) > 1
    ):
        # One task per bag; each task keeps private stats (EvalStats is
        # not thread-safe) merged once the fan-out completes.  Only the
        # thread backend fans bags out: bag pipelines close over the
        # database, which must not cross a process boundary.
        def one(
            job: tuple[int, tuple[NodePlan, HTNode]],
        ) -> tuple[Relation, EvalStats]:
            i, (np, p) = job
            local = EvalStats()
            rel = _materialise_bag(
                np, p, db, local, deadline, semiring,
                carriers_of.get(i, frozenset()),
            )
            return rel, local

        produced = ctx.map_local(one, list(enumerate(node_pairs)))
        relations: dict[Atom, Relation] = {}
        for (np, _), (rel, local) in zip(node_pairs, produced):
            relations[np.bag] = rel
            stats.merge(local)
    else:
        relations = {
            np.bag: _materialise_bag(
                np, p, db, stats, deadline, semiring,
                carriers_of.get(i, frozenset()),
            )
            for i, (np, p) in enumerate(node_pairs)
        }

    _check_deadline(deadline, "Yannakakis passes")
    sharded = ctx is not None and any(counts[np.bag] > 1 for np, _ in node_pairs)
    if not plan.output:
        if semiring is not None:
            # Annotated Boolean queries enumerate the 0-ary answer: the
            # () row's annotation is the semiring total; boolean_eval's
            # short-circuit would drop it.
            if sharded:
                return parallel_enumerate_answers(
                    plan.join_tree, relations, (), stats,
                    backend=ctx, shard_counts=counts,
                )
            return enumerate_answers(plan.join_tree, relations, (), stats)
        if sharded:
            true = parallel_boolean_eval(
                plan.join_tree, relations, stats,
                backend=ctx, shard_counts=counts,
            )
        else:
            true = boolean_eval(plan.join_tree, relations, stats)
        return Relation.trusted((), frozenset({()} if true else ()), "ans")
    if sharded:
        return parallel_enumerate_answers(
            plan.join_tree,
            relations,
            plan.output,
            stats,
            backend=ctx,
            shard_counts=counts,
        )
    return enumerate_answers(plan.join_tree, relations, plan.output, stats)
