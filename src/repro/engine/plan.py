"""Physical plans: a decomposition compiled against a concrete database.

A cached (or freshly computed) hypertree decomposition fixes only the
*structure* of evaluation.  This module adds the database-dependent
choices — cheap, polynomial-time, recomputed per request — on top of the
Lemma 4.6 pipeline:

* **per-node join order** — each node's bag relation joins its λ atoms
  smallest-estimate first, preferring atoms sharing variables with the
  part already joined (System-R-style greedy, driven by
  :class:`repro.db.stats.CardinalityEstimator`);
* **root choice** — the join tree over the materialised bags is re-rooted
  at the bag with the largest estimated cardinality, so the full
  reducer's bottom-up sweep filters the biggest relation with every
  child before enumeration starts.  (Join trees, unlike hypertree
  decompositions, may be re-rooted freely: the connectedness condition
  is symmetric.)

Execution materialises the bags in plan order, then runs the Yannakakis
passes of :mod:`repro.db.yannakakis` — semijoin reduction for Boolean
queries, the output-polynomial enumeration for answer queries.  A
deadline is checked between operators so per-request budgets interrupt
long plans with :class:`repro._errors.BudgetExceeded`.

With ``parallelism > 1`` execution switches to the sharded kernel: bag
materialisation fans out node-per-task over a worker pool, and the
Yannakakis passes run over hash-partitioned relations
(:mod:`repro.db.parallel`), one shard per worker.  Semantics are
identical to the sequential path — the property suite cross-checks them.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass, field

from .._errors import BudgetExceeded
from ..core.atoms import Atom, Variable
from ..core.hypertree import HTNode, HypertreeDecomposition
from ..core.jointree import JoinTree, join_tree_from_edges
from ..core.query import ConjunctiveQuery
from ..db.binding import bind_atom
from ..db.database import Database
from ..db.parallel import parallel_boolean_eval, parallel_enumerate_answers
from ..db.relation import Relation
from ..db.sharded import pool_map
from ..db.stats import CardinalityEstimator, EvalStats
from ..db.yannakakis import boolean_eval, enumerate_answers


def _check_deadline(deadline: float | None, phase: str) -> None:
    if deadline is not None and time.monotonic() > deadline:
        raise BudgetExceeded(f"engine budget exhausted during {phase}")


@dataclass(frozen=True)
class NodePlan:
    """Compiled evaluation of one decomposition node's bag relation."""

    bag: Atom
    chi_names: tuple[str, ...]
    join_order: tuple[Atom, ...]
    estimated_rows: float
    atom_estimates: tuple[float, ...]

    def describe(self) -> str:
        steps = " ⋈ ".join(
            f"{a}[≈{int(est)}]"
            for a, est in zip(self.join_order, self.atom_estimates)
        )
        chi = ", ".join(self.chi_names)
        return f"{self.bag.predicate}: π[{chi}]({steps or 'unit'}) ≈{int(self.estimated_rows)} rows"


@dataclass(frozen=True)
class QueryPlan:
    """A fully compiled physical plan for one (query, database) pair."""

    query: ConjunctiveQuery
    decomposition: HypertreeDecomposition
    node_plans: tuple[NodePlan, ...]
    join_tree: JoinTree
    output: tuple[str, ...]
    width: int
    provenance: str = "exact"
    cache_hit: bool = field(default=False)
    parallelism: int = field(default=1)

    def render(self) -> str:
        """The ``explain`` rendering: provenance, per-node pipelines, and
        the rooted join tree the Yannakakis passes will run over."""
        lines = [
            f"plan for {self.query.name}: width {self.width} "
            f"[{self.provenance}{', cached' if self.cache_hit else ''}"
            + (
                f", {self.parallelism}-way sharded"
                if self.parallelism > 1
                else ""
            )
            + "]",
            f"output: ({', '.join(self.output)})" if self.output else "output: boolean",
            "bag materialisation (cardinality-ascending joins):",
        ]
        for np in self.node_plans:
            marker = " <- root" if np.bag == self.join_tree.root else ""
            lines.append(f"  {np.describe()}{marker}")
        lines.append("join tree (semijoin + enumeration passes):")
        lines.append(self.join_tree.render())
        return "\n".join(lines)


def _order_atoms(
    atoms: list[Atom], estimator: CardinalityEstimator
) -> tuple[list[Atom], list[float]]:
    """Greedy join order: start from the smallest estimated atom, then
    repeatedly take the atom sharing most variables with what is already
    joined (ties: smaller estimate, stable by rendering)."""
    remaining = sorted(atoms, key=lambda a: (estimator.atom_rows(a), str(a)))
    order: list[Atom] = []
    estimates: list[float] = []
    seen_vars: set[Variable] = set()
    while remaining:
        chosen = min(
            remaining,
            key=lambda a: (
                -len(a.variables & seen_vars),
                estimator.atom_rows(a),
                str(a),
            ),
        ) if order else remaining[0]
        remaining.remove(chosen)
        order.append(chosen)
        estimates.append(estimator.atom_rows(chosen))
        seen_vars.update(chosen.variables)
    return order, estimates


def compile_plan(
    query: ConjunctiveQuery,
    db: Database | None,
    hd: HypertreeDecomposition,
    provenance: str = "exact",
    cache_hit: bool = False,
    parallelism: int = 1,
) -> QueryPlan:
    """Compile *hd* into a physical plan against *db*.

    The decomposition is completed (Lemma 4.4) if necessary, each node's
    bag pipeline is ordered by the database's cardinality estimates, and
    the mirrored join tree is re-rooted at the largest estimated bag.
    With ``db=None`` (an ``explain`` without facts) all estimates are 1
    and the plan falls back to deterministic syntactic order.
    """
    complete = hd if hd.is_complete else hd.complete()
    estimator = CardinalityEstimator(db)
    domain = estimator.domain_size

    nodes = complete.nodes
    node_ids = {id(n): i for i, n in enumerate(nodes)}
    fresh: dict[int, Atom] = {}
    plans: list[NodePlan] = []
    for i, p in enumerate(nodes):
        chi_names = tuple(sorted(v.name for v in p.chi))
        contributing = [
            a
            for a in p.lam
            if (a.variables & p.chi) or not a.variables
        ]
        order, estimates = _order_atoms(contributing, estimator)
        bag_rows = 1.0
        joined_vars: frozenset[Variable] = frozenset()
        for a, est in zip(order, estimates):
            bag_rows = estimator.join_rows(
                bag_rows, joined_vars, est, a.variables, domain
            )
            joined_vars = joined_vars | a.variables
        bag = Atom(f"n{i}", tuple(Variable(v) for v in chi_names))
        fresh[i] = bag
        plans.append(
            NodePlan(bag, chi_names, tuple(order), bag_rows, tuple(estimates))
        )

    edges = [
        (fresh[i], fresh[node_ids[id(c)]])
        for i, p in enumerate(nodes)
        for c in p.children
    ]
    root = max(plans, key=lambda np: (np.estimated_rows, np.bag.predicate)).bag
    jt = join_tree_from_edges([fresh[i] for i in range(len(nodes))], edges, root)

    head = tuple(
        dict.fromkeys(
            t.name for t in query.head_terms if isinstance(t, Variable)
        )
    )
    return QueryPlan(
        query=query,
        decomposition=complete,
        node_plans=tuple(plans),
        join_tree=jt,
        output=head,
        width=hd.width,
        provenance=provenance,
        cache_hit=cache_hit,
        parallelism=max(1, parallelism),
    )


def _materialise_bag(
    np: NodePlan,
    p: HTNode,
    db: Database,
    stats: EvalStats,
    deadline: float | None,
) -> Relation:
    """Materialise one decomposition node's bag relation."""
    _check_deadline(deadline, f"bag materialisation of {np.bag.predicate}")
    rel = Relation.trusted((), frozenset({()}), np.bag.predicate)
    for a in np.join_order:
        part = bind_atom(a, db)
        if not a.variables <= p.chi:
            overlap = sorted(
                (v.name for v in a.variables & p.chi)
            )
            part = part.project(overlap)
            stats.projections += 1
        rel = rel.join(part)
        stats.joins += 1
        stats.record(rel)
        _check_deadline(deadline, f"joins of {np.bag.predicate}")
    rel = stats.record(rel.project(list(np.chi_names), name=np.bag.predicate))
    stats.projections += 1
    return rel


def execute_plan(
    plan: QueryPlan,
    db: Database,
    stats: EvalStats | None = None,
    deadline: float | None = None,
    parallelism: int | None = None,
    pool: Executor | None = None,
) -> Relation:
    """Run a compiled plan: materialise bags, then Yannakakis.

    Returns the answer relation; for a Boolean query the result has an
    empty schema and is non-empty iff the query is true.  Raises
    :class:`BudgetExceeded` when *deadline* (monotonic seconds) passes
    between operators.

    *parallelism* (default: the plan's own setting) > 1 runs the sharded
    kernel: one task per bag during materialisation, then
    hash-partitioned Yannakakis passes with *parallelism* shards over a
    worker pool (a private pool unless *pool* is given).
    """
    stats = stats if stats is not None else EvalStats()
    workers = plan.parallelism if parallelism is None else max(1, parallelism)
    if workers > 1 and pool is None:
        with ThreadPoolExecutor(max_workers=workers) as own_pool:
            return _execute_with_pool(plan, db, stats, deadline, workers, own_pool)
    return _execute_with_pool(plan, db, stats, deadline, workers, pool)


def _execute_with_pool(
    plan: QueryPlan,
    db: Database,
    stats: EvalStats,
    deadline: float | None,
    workers: int,
    pool: Executor | None,
) -> Relation:
    node_pairs = list(zip(plan.node_plans, plan.decomposition.nodes))
    if workers > 1:
        # One task per bag; each task keeps private stats (EvalStats is
        # not thread-safe) merged once the fan-out completes.
        def one(pair: tuple[NodePlan, HTNode]) -> tuple[Relation, EvalStats]:
            local = EvalStats()
            return _materialise_bag(pair[0], pair[1], db, local, deadline), local

        produced = pool_map(pool, one, node_pairs)
        relations: dict[Atom, Relation] = {}
        for (np, _), (rel, local) in zip(node_pairs, produced):
            relations[np.bag] = rel
            stats.merge(local)
    else:
        relations = {
            np.bag: _materialise_bag(np, p, db, stats, deadline)
            for np, p in node_pairs
        }

    _check_deadline(deadline, "Yannakakis passes")
    if not plan.output:
        if workers > 1:
            true = parallel_boolean_eval(
                plan.join_tree, relations, stats, n_shards=workers, pool=pool
            )
        else:
            true = boolean_eval(plan.join_tree, relations, stats)
        return Relation.trusted((), frozenset({()} if true else ()), "ans")
    if workers > 1:
        return parallel_enumerate_answers(
            plan.join_tree,
            relations,
            plan.output,
            stats,
            n_shards=workers,
            pool=pool,
        )
    return enumerate_answers(plan.join_tree, relations, plan.output, stats)
