"""The ``Engine`` facade: decompose once, execute many.

One object ties the repo's pieces into a pipeline callers no longer
hand-wire per query::

    fingerprint → plan cache → (portfolio decompose on miss) →
    physical plan (join orders, root, shard counts) → Yannakakis passes

* :meth:`Engine.execute` answers one query against one database,
  returning an :class:`EvalResult` with the answer relation, per-request
  :class:`~repro.db.stats.EvalStats`, and cache provenance.
* :meth:`Engine.execute_many` runs a batch over a thread pool (plan
  transport and bag joins release no locks; the cache itself is
  thread-safe), aggregating stats with ``EvalStats.merge``.
* :meth:`Engine.explain` renders the chosen physical plan without
  executing it.

**Execution backends.**  ``Engine(backend=...)`` selects where shard
tasks run: ``"sequential"`` (inline, the default), ``"thread"`` (the
PR-4 sharded thread pool — low latency, GIL-bound), or ``"process"``
(worker processes with resident shards — real multicore scaling for
large relations).  The engine owns one live
:class:`~repro.db.backend.ExecutionContext` per (kind, width), created
lazily on the first plan that actually shards something and reused
across requests, so process workers and their scatter caches persist;
:meth:`Engine.close` (or the context-manager exit) releases them.
Which nodes shard at all is the cost-based policy in
:func:`repro.engine.plan.compile_plan` — relations estimated under
:data:`~repro.engine.plan.SHARD_MIN_ROWS` stay unsharded.  The
``REPRO_BACKEND`` environment variable supplies the default kind when
none is given.

**Semiring evaluation.**  ``execute(..., semiring=...)`` switches a
request to annotated semantics (:mod:`repro.db.semiring`): the answer
relation carries one value per row and :attr:`EvalResult.annotations`
exposes the map.  :meth:`Engine.count`, :meth:`Engine.top_k`,
:meth:`Engine.provenance` and :meth:`Engine.probability` are the four
workload-family front doors built on it.  Plans are shared across
semirings: the cache keys on ``(fingerprint, semiring tag)`` and
promotes sibling-tag entries, so the first ``count`` of an
already-planned shape transports the stored decomposition instead of
searching again.

Per-request time *budgets* (wall-clock seconds) bound both the
decomposition search — via the portfolio's own budget handling, which
degrades to a certified heuristic plan in ``"auto"`` mode — and plan
execution, where the deadline is checked between operators and raises
:class:`repro._errors.BudgetExceeded`.  ``execute`` propagates the
exception; ``execute_many`` records it on the failed request's result
and keeps going.
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from .._errors import BudgetExceeded, EvaluationError, ReproError
from ..core.atoms import Variable
from ..core.hypertree import HypertreeDecomposition
from ..core.query import ConjunctiveQuery
from ..db.annotated import AnnotatedRelation
from ..db.backend import (
    BACKEND_KINDS,
    ExecutionContext,
    default_backend_kind,
    make_backend,
)
from ..db.columnar import LAYOUTS, default_layout
from ..db.database import Database
from ..db.relation import Relation, Row
from ..db.semiring import FactId, Semiring, resolve_semiring
from ..db.stats import EvalStats
from ..heuristics.portfolio import Mode, decompose
from ..obs import Tracer, current_tracer, get_registry, tracing
from ..obs.flight import FlightRecorder, get_flight_recorder, span_forest
from .cache import PlanCache
from .fingerprint import fingerprint
from .plan import SHARD_MIN_ROWS, QueryPlan, compile_plan, execute_plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (incremental imports engine)
    from ..incremental.live import LiveEngine


@dataclass
class EvalResult:
    """Outcome of one engine request."""

    query: ConjunctiveQuery
    answer: Relation | None
    stats: EvalStats
    cache_hit: bool
    width: int
    method: str
    elapsed: float
    error: str | None = None
    semiring: Semiring | None = None

    @property
    def boolean(self) -> bool:
        """The Boolean reading of the answer (non-empty = true)."""
        return bool(self.answer)

    @property
    def annotations(self) -> dict[Row, object] | None:
        """Row → semiring value for an annotated request; ``None`` under
        set semantics."""
        return getattr(self.answer, "annotations", None)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class BatchResult:
    """Outcome of :meth:`Engine.execute_many`, in request order."""

    results: list[EvalResult]
    stats: EvalStats
    elapsed: float
    cache_hits: int = 0
    cache_misses: int = 0
    failures: int = 0

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def throughput(self) -> float:
        """Completed requests per second of batch wall-clock."""
        return len(self.results) / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> dict[str, float | int]:
        return {
            "requests": len(self.results),
            "failures": self.failures,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "elapsed": round(self.elapsed, 6),
            "throughput_qps": round(self.throughput, 2),
            **self.stats.as_row(),
        }


class Engine:
    """A decompose-once, execute-many conjunctive-query engine.

    Parameters
    ----------
    cache_size:
        Maximum number of cached plans (0 disables the cache — every
        request decomposes from scratch, the baseline configuration the
        E22 experiment measures against).
    mode:
        Planner strategy forwarded to the heuristics portfolio
        (``"exact"``, ``"heuristic"``, or ``"auto"``).
    budget:
        Default per-request wall-clock budget in seconds (``None`` =
        unbounded); individual calls may override it.
    workers:
        Default thread-pool width for :meth:`execute_many`.
    backend:
        Execution backend kind for intra-query shard tasks:
        ``"sequential"`` | ``"thread"`` | ``"process"``.  Defaults to
        ``$REPRO_BACKEND`` when set, else ``"sequential"``.
    backend_workers:
        Shard-task width for a parallel backend (default 4).
    shard_threshold:
        Minimum estimated bag cardinality for a node to be sharded;
        forwarded to :func:`~repro.engine.plan.compile_plan`.
    layout:
        Storage layout for materialised bags: ``"row"`` |
        ``"columnar"`` | ``"auto"`` (columnar for nodes estimated at
        :data:`~repro.db.columnar.COLUMNAR_MIN_ROWS` rows or more).
        Columnar bags run the vectorised semijoin/join kernels and
        cross the process-backend boundary over shared memory.
        Defaults to ``$REPRO_LAYOUT`` when set, else ``"auto"``.
        Annotated (semiring) requests always execute on the row path.
    tracer:
        Default :class:`~repro.obs.Tracer` installed around each request
        when no ambient tracer is active (an enabled tracer installed
        via :func:`repro.obs.tracing` — e.g. by the CLI's ``--trace`` —
        always wins).  ``None`` (the default) leaves explicit tracing
        off; requests then record into the flight recorder's bounded
        span ring instead (see *flight*).
    slow_query_ms:
        Latency threshold for the flight recorder's slow-query log:
        requests at/above it get a ``slow_query`` event carrying the
        plan digest and an EXPLAIN ANALYZE rendering built from the
        spans the request *already* recorded (never re-executed).
        ``None`` (default) disables the log.
    flight:
        The always-on black box.  ``None``/``True`` (default) records
        into the process-global :func:`repro.obs.get_flight_recorder`;
        a :class:`repro.obs.FlightRecorder` instance records there;
        ``False`` switches flight recording off for this engine.  Every
        request appends one bounded ring event; ``EvaluationError`` /
        ``BudgetExceeded`` / worker death additionally capture the
        failing request's span tree and auto-dump to *flight_dump*.
    flight_dump:
        Where failure dumps are written: a JSON file path (last dump
        wins) or a directory (one file per dump).  Defaults to
        ``$REPRO_FLIGHT_DUMP``; with neither set the ring still records
        in memory but no files are written.
    """

    def __init__(
        self,
        cache_size: int = 256,
        mode: Mode = "auto",
        budget: float | None = None,
        workers: int = 4,
        backend: str | None = None,
        backend_workers: int | None = None,
        shard_threshold: int = SHARD_MIN_ROWS,
        layout: str | None = None,
        tracer: Tracer | None = None,
        slow_query_ms: float | None = None,
        flight: "FlightRecorder | bool | None" = None,
        flight_dump: str | None = None,
    ):
        self.cache = PlanCache(cache_size)
        self.tracer = tracer
        self.slow_query_ms = slow_query_ms
        self._flight_spec = flight
        self.flight_dump = flight_dump
        self.mode: Mode = mode
        self.budget = budget
        self.workers = workers
        if backend is None:
            backend = default_backend_kind()
        if backend not in BACKEND_KINDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKEND_KINDS}"
            )
        self.backend = backend
        self.backend_workers = max(
            1, backend_workers if backend_workers is not None else 4
        )
        self.shard_threshold = shard_threshold
        if layout is None:
            layout = default_layout()
        if layout not in LAYOUTS:
            raise ValueError(
                f"unknown layout {layout!r}; expected one of {LAYOUTS}"
            )
        self.layout = layout
        self.decompositions = 0  # fresh planner searches performed
        self._backends: dict[tuple[str, int], ExecutionContext] = {}
        self._backends_lock = threading.Lock()
        # Single-flight gates: (fingerprint, semiring tag) -> Event set
        # when the leader's search lands in the cache.  Concurrent first
        # requests of one shape (e.g. two tenants submitting isomorphic
        # queries at once) elect one decomposer; the rest wait and
        # re-read the cache.  Keys follow the cache's composite keys, so
        # a count and a set request of the same shape race at most once
        # each — the loser of either race is served by promotion.
        self._plan_gates: dict = {}
        self._plan_gates_lock = threading.Lock()

    @property
    def flight(self) -> FlightRecorder | None:
        """The flight recorder this engine records into (``None`` when
        disabled).  Resolved lazily so a swapped global recorder (tests,
        servers) takes effect without rebuilding engines."""
        spec = self._flight_spec
        if spec is False:
            return None
        if spec is None or spec is True:
            return get_flight_recorder()
        return spec

    # -- resource lifecycle ------------------------------------------------
    def _backend_for(self, kind: str, workers: int) -> ExecutionContext:
        """The engine-owned execution context for (kind, width), created
        once and reused across requests (spinning workers up per query
        would put process/thread start-up on the hot path this feature
        speeds up).  Contexts are thread-safe for concurrent requests:
        thread pools natively, the process backend by serialising each
        shard fan-out."""
        key = (kind, workers)
        with self._backends_lock:
            ctx = self._backends.get(key)
            if ctx is None or ctx.closed:
                # `closed` covers a process pool that tore itself down
                # after losing a worker: the next request gets a fresh
                # pool instead of a permanently bricked engine.
                ctx = make_backend(kind, workers)
                self._backends[key] = ctx
            return ctx

    def close(self) -> None:
        """Shut down the engine's execution backends (thread pools and
        process workers).  Idempotent; the engine remains usable
        afterwards (backends are recreated on demand)."""
        with self._backends_lock:
            contexts, self._backends = list(self._backends.values()), {}
        for ctx in contexts:
            ctx.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    # -- planning ---------------------------------------------------------
    def _decomposition_for(
        self,
        query: ConjunctiveQuery,
        deadline: float | None,
        semiring_tag: str = "set",
    ) -> tuple[HypertreeDecomposition, bool, str, int]:
        """Cached-or-fresh decomposition: (hd, cache_hit, method, width).

        Cache misses are *single-flight* per structural fingerprint: of N
        threads missing the same shape concurrently, one runs the
        portfolio search while the rest wait on a gate and then re-read
        the cache — the "exactly one decomposition for isomorphic
        queries" guarantee holds under concurrency, not just in
        sequential replays.  Waiters count as cache hits: they never
        searched.
        """
        with current_tracer().span(
            "plan.cache_lookup", query=query.name, semiring=semiring_tag
        ) as sp:
            hit = self.cache.lookup(query, semiring_tag)
            sp.set(hit=hit is not None)
        if hit is not None:
            return hit.decomposition, True, hit.method, hit.width
        key = (fingerprint(query), semiring_tag)
        while True:
            with self._plan_gates_lock:
                gate = self._plan_gates.get(key)
                if gate is None:
                    gate = threading.Event()
                    self._plan_gates[key] = gate
                    leader = True
                else:
                    leader = False
            if leader:
                break
            # Follower: wait out the leader's search, then re-read the
            # cache.  The deadline still applies to the wait — a blown
            # budget surfaces as BudgetExceeded, not an eternal block.
            remaining = (
                max(0.0, deadline - time.monotonic())
                if deadline is not None
                else None
            )
            gate.wait(timeout=remaining)
            hit = self.cache.lookup(query, semiring_tag)
            if hit is not None:
                get_registry().counter("engine.singleflight_waits").inc()
                return hit.decomposition, True, hit.method, hit.width
            if deadline is not None and time.monotonic() >= deadline:
                raise BudgetExceeded(
                    f"budget exhausted waiting for the in-flight "
                    f"decomposition of {query.name}"
                )
            # Leader failed (or the entry was evicted immediately): loop
            # and try to become the leader ourselves.
        try:
            remaining = (
                max(0.0, deadline - time.monotonic())
                if deadline is not None
                else None
            )
            result = decompose(query, mode=self.mode, budget=remaining)
            self.decompositions += 1
            self.cache.store(
                query, result.decomposition, result.width, result.method,
                semiring_tag=semiring_tag,
            )
        finally:
            with self._plan_gates_lock:
                self._plan_gates.pop(key, None)
            gate.set()
        return result.decomposition, False, result.method, result.width

    def _resolve_backend(self, backend: str | None) -> tuple[str, int]:
        """Per-call backend resolution: an explicit kind overrides the
        engine default; the width is always the engine's."""
        if backend is not None and backend not in BACKEND_KINDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKEND_KINDS}"
            )
        kind = backend if backend is not None else self.backend
        return kind, self.backend_workers

    def plan(
        self,
        query: ConjunctiveQuery,
        db: Database | None = None,
        backend: str | None = None,
    ) -> QueryPlan:
        """The physical plan the engine would execute (used by explain,
        and by live views registering through the shared cache)."""
        kind, width = self._resolve_backend(backend)
        hd, hit, method, width_hd = self._decomposition_for(query, None)
        return compile_plan(
            query, db, hd, provenance=method, cache_hit=hit,
            backend=kind, workers=width,
            shard_threshold=self.shard_threshold,
            layout=self.layout,
        )

    def live(
        self, db: Database | None = None, parallelism: int | None = None
    ) -> "LiveEngine":
        """A :class:`repro.incremental.LiveEngine` planning through this
        engine — registered views share this plan cache, so a view of an
        already-seen shape costs a transport, not a search.  The view
        fan-out *parallelism* defaults to this engine's shard width."""
        # Imported here: the incremental layer sits above the engine.
        from ..incremental.live import LiveEngine

        if parallelism is None:
            parallelism = (
                self.backend_workers if self.backend != "sequential" else 1
            )
        return LiveEngine(db=db, engine=self, parallelism=parallelism)

    def explain(
        self,
        query: ConjunctiveQuery,
        db: Database | None = None,
        analyze: bool = False,
        backend: str | None = None,
    ) -> str:
        """Render the chosen plan (cache provenance, join orders, root,
        shard assignment).

        With ``analyze=True`` (requires *db*) the query is executed once
        under a private tracer and the rendering is annotated with what
        actually happened: per-node actual row counts next to the
        estimator's predictions, bag/sweep wall times, and — under the
        process backend — the worker-resident shard-task spans shipped
        back from the pool.
        """
        if not analyze:
            return self.plan(query, db, backend=backend).render()
        if db is None:
            raise ValueError(
                "explain(analyze=True) executes the query and needs db="
            )
        # Reuse an ambient tracer (e.g. the CLI's --trace) so analyze
        # spans land in the exported trace too; otherwise capture into a
        # private one.
        ambient = current_tracer()
        capture = ambient if isinstance(ambient, Tracer) else Tracer()
        with tracing(capture):
            result = self.execute(query, db, backend=backend)
        plan = self.plan(query, db, backend=backend)
        return plan.render_analyzed(
            capture, result.elapsed, len(result.answer)
        )

    # -- execution --------------------------------------------------------
    def execute(
        self,
        query: ConjunctiveQuery,
        db: Database,
        budget: float | None = None,
        stats: EvalStats | None = None,
        backend: str | None = None,
        semiring: "Semiring | str | None" = None,
    ) -> EvalResult:
        """Evaluate one query, raising :class:`BudgetExceeded` on timeout.

        The budget deadline is anchored to *this call*, the moment the
        request actually starts executing — never to the submission time
        of a surrounding batch (see :meth:`execute_many`).

        *semiring* (a :class:`~repro.db.semiring.Semiring` or registry
        tag such as ``"count"``) switches the request to annotated
        semantics; the result's answer then carries one semiring value
        per row (see :attr:`EvalResult.annotations`).
        """
        budget = budget if budget is not None else self.budget
        started = time.monotonic()
        deadline = started + budget if budget is not None else None
        kind, width = self._resolve_backend(backend)
        semiring = resolve_semiring(semiring)
        stats = stats if stats is not None else EvalStats()
        flight = self.flight
        # An ambient tracer (CLI --trace, explain(analyze=True)) wins,
        # then the engine's own tracer; with neither, requests record
        # into the flight recorder's always-on bounded span ring (the
        # black box holds the spans leading up to a failure).
        ambient = current_tracer()
        if ambient.enabled:
            tracer = ambient
        elif self.tracer is not None:
            tracer = self.tracer
        elif flight is not None:
            tracer = flight.tracer
        else:
            tracer = ambient
        request_perf = time.perf_counter()
        plan_sink: list[QueryPlan] = []
        try:
            with tracing(tracer), tracer.span(
                "engine.execute", query=query.name, backend=kind,
                semiring=semiring.tag if semiring is not None else "set",
            ) as request_span:
                result = self._execute_request(
                    query, db, deadline, kind, width, stats, started,
                    plan_sink, semiring,
                )
                request_span.set(
                    cache_hit=result.cache_hit,
                    width=result.width,
                    method=result.method,
                    rows=len(result.answer),
                )
        except (EvaluationError, BudgetExceeded) as error:
            if flight is not None:
                self._flight_failure(
                    flight, query, error, kind, plan_sink, tracer,
                    request_perf,
                )
            raise
        self._record_request(result)
        if flight is not None:
            self._flight_request(
                flight, result, kind, plan_sink, tracer, request_perf
            )
        return result

    # -- workload families over semirings ----------------------------------
    def count(self, query: ConjunctiveQuery, db: Database, **kwargs) -> int:
        """The number of *derivations* of the query — answer multiplicity
        under bag semantics, summed over the head (ℕ semiring).  For a
        full-output query this equals the brute-force join's bag count;
        a projecting head sums the multiplicities the projection folds.
        """
        result = self.execute(query, db, semiring="count", **kwargs)
        return int(result.answer.total())

    def top_k(
        self,
        query: ConjunctiveQuery,
        db: Database,
        k: int = 1,
        **kwargs,
    ) -> list[tuple[Row, float, tuple[FactId, ...]]]:
        """The *k* cheapest answers under the min-cost (tropical)
        semiring: ``(row, cost, witness)`` triples, cost-ascending, where
        *witness* lists the ``(predicate, fact)`` pairs achieving the
        cost.  Fact costs come from :meth:`Database.set_weight`
        (``add_fact(..., weight=)``), defaulting to 1.0 per fact."""
        if k < 1:
            raise ValueError(f"top_k needs k >= 1, got {k}")
        result = self.execute(query, db, semiring="mincost", **kwargs)
        best = heapq.nsmallest(
            k,
            result.answer.annotations.items(),
            key=lambda item: (item[1][0], repr(item[0])),
        )
        return [(row, cost, witness) for row, (cost, witness) in best]

    def provenance(
        self, query: ConjunctiveQuery, db: Database, **kwargs
    ) -> dict[Row, frozenset]:
        """Why-provenance: row → set of witness sets, each witness a
        frozenset of ``(predicate, fact)`` pairs that jointly derive the
        row."""
        result = self.execute(query, db, semiring="provenance", **kwargs)
        return dict(result.answer.annotations)

    def probability(
        self, query: ConjunctiveQuery, db: Database, **kwargs
    ) -> dict[Row, float]:
        """Row probabilities over a tuple-independent database (fact
        weights read as marginal probabilities; derivations combined by
        noisy-or, an upper-bound approximation when derivations share
        facts)."""
        result = self.execute(query, db, semiring="prob", **kwargs)
        return dict(result.answer.annotations)

    def _execute_request(
        self,
        query: ConjunctiveQuery,
        db: Database,
        deadline: float | None,
        kind: str,
        width: int,
        stats: EvalStats,
        started: float,
        plan_sink: list | None = None,
        semiring: Semiring | None = None,
    ) -> EvalResult:
        tag = semiring.tag if semiring is not None else "set"
        with stats.timed():
            if not query.atoms:
                head = tuple(
                    dict.fromkeys(
                        t.name
                        for t in query.head_terms
                        if isinstance(t, Variable)
                    )
                )
                rows = frozenset({()} if not head else ())
                if semiring is not None:
                    answer: Relation = AnnotatedRelation.make(
                        head, rows, "ans", semiring,
                        dict.fromkeys(rows, semiring.one),
                    )
                else:
                    answer = Relation(head, rows, "ans")
                return EvalResult(
                    query, answer, stats, False, 0, "empty",
                    time.monotonic() - started, semiring=semiring,
                )
            hd, hit, method, hd_width = self._decomposition_for(
                query, deadline, tag
            )
            plan = compile_plan(
                query, db, hd, provenance=method, cache_hit=hit,
                backend=kind, workers=width,
                shard_threshold=self.shard_threshold,
                # Annotated bags carry per-row value maps the columnar
                # buffers cannot represent — semiring requests compile
                # (and render) as row plans rather than silently falling
                # back node by node.
                layout="row" if semiring is not None else self.layout,
            )
            if plan_sink is not None:
                # Threaded out so the flight recorder can attach the
                # plan digest even when execution fails below.
                plan_sink.append(plan)
            # The live context is only materialised when the plan's
            # cost-based policy actually sharded something — a process
            # pool is never spawned to evaluate small relations.
            ctx = (
                self._backend_for(kind, width)
                if kind != "sequential"
                and any(np.n_shards > 1 for np in plan.node_plans)
                else None
            )
            answer = execute_plan(
                plan, db, stats=stats, deadline=deadline, backend=ctx,
                semiring=semiring,
            )
            if semiring is not None and not isinstance(
                answer, AnnotatedRelation
            ):
                # An all-plain sharded pipeline (e.g. semijoin against an
                # empty partner) can coalesce to a plain relation; the
                # result contract is still annotated.
                answer = AnnotatedRelation.lift(answer, semiring)
        return EvalResult(
            query, answer, stats, hit, hd_width, method,
            time.monotonic() - started, semiring=semiring,
        )

    def _record_request(self, result: EvalResult) -> None:
        """Absorb one finished request into the process-global metrics
        registry (request count/latency, operator counters, and a
        lock-consistent plan-cache snapshot)."""
        registry = get_registry()
        registry.counter("engine.requests").inc()
        # Per-semiring request counters, label-in-name style (grouped by
        # ``repro stats`` via the "semiring" scope): set semantics is the
        # "set" family.
        tag = result.semiring.tag if result.semiring is not None else "set"
        registry.counter(f"semiring.{tag}.engine.requests").inc()
        registry.counter(
            "engine.cache_hits" if result.cache_hit else "engine.cache_misses"
        ).inc()
        registry.histogram("engine.request_seconds").observe(result.elapsed)
        registry.record_eval(result.stats)
        registry.record_cache(self.cache.snapshot())

    # -- flight recording -------------------------------------------------
    def _flight_request(
        self,
        flight: FlightRecorder,
        result: EvalResult,
        kind: str,
        plan_sink: list,
        tracer,
        request_perf: float,
    ) -> None:
        """One ring event per finished request (the metric delta the
        flight recorder keeps), plus the slow-query capture when the
        request crossed ``slow_query_ms``."""
        plan = plan_sink[0] if plan_sink else None
        digest = plan.digest() if plan is not None else None
        elapsed_ms = result.elapsed * 1e3
        flight.record(
            "request",
            query=result.query.name,
            elapsed_ms=round(elapsed_ms, 3),
            rows=len(result.answer) if result.answer is not None else None,
            cache_hit=result.cache_hit,
            method=result.method,
            width=result.width,
            backend=kind,
            digest=digest,
            stats=result.stats.as_row(),
        )
        if self.slow_query_ms is None or elapsed_ms < self.slow_query_ms:
            return
        # Slow-query capture: EXPLAIN ANALYZE rendered from the spans
        # this request already recorded — never re-executed.
        explain = None
        if plan is not None and isinstance(tracer, Tracer):
            explain = plan.render_analyzed(
                tracer.view_since(request_perf),
                result.elapsed,
                len(result.answer) if result.answer is not None else 0,
            )
        flight.record(
            "slow_query",
            query=result.query.name,
            elapsed_ms=round(elapsed_ms, 3),
            threshold_ms=self.slow_query_ms,
            digest=digest,
            explain=explain,
        )
        get_registry().counter("engine.slow_queries").inc()

    def _flight_failure(
        self,
        flight: FlightRecorder,
        query: ConjunctiveQuery,
        error: Exception,
        kind: str,
        plan_sink: list,
        tracer,
        request_perf: float,
    ) -> None:
        """Record the failing request (span tree + plan digest) and
        auto-dump the black box."""
        plan = plan_sink[0] if plan_sink else None
        spans = (
            tracer.spans_since(request_perf)
            if isinstance(tracer, Tracer)
            else []
        )
        flight.record(
            "error",
            query=query.name,
            error=type(error).__name__,
            message=str(error),
            backend=kind,
            digest=plan.digest() if plan is not None else None,
            spans=span_forest(spans),
        )
        flight.dump(
            reason=f"{type(error).__name__}: {query.name}",
            path=self.flight_dump,
        )

    def execute_many(
        self,
        requests: Iterable[tuple[ConjunctiveQuery, Database] | ConjunctiveQuery],
        db: Database | None = None,
        workers: int | None = None,
        budget: float | None = None,
        backend: str | None = None,
        semiring: "Semiring | str | None" = None,
    ) -> BatchResult:
        """Evaluate a batch of requests over a worker pool.

        *requests* is an iterable of ``(query, database)`` pairs, or of
        bare queries when a shared *db* is given.  Results come back in
        request order; a request whose budget runs out yields an
        :class:`EvalResult` with ``error`` set instead of aborting the
        batch.  The merged :class:`EvalStats` (including summed per-query
        wall times, which exceed batch wall-clock under parallelism) ride
        on the returned :class:`BatchResult`.  *backend* sets the
        per-request shard backend and *semiring* the per-request
        annotation algebra (see :meth:`execute`).

        Each request's *budget* clock starts when a pool worker begins
        executing it — time spent queued behind a saturated pool does not
        count against the request (deadlines are computed inside
        :meth:`execute`, per call, not here at submission).
        """
        pairs: list[tuple[ConjunctiveQuery, Database]] = []
        for request in requests:
            if isinstance(request, ConjunctiveQuery):
                if db is None:
                    raise ValueError(
                        "bare queries in execute_many need the shared "
                        "db= argument"
                    )
                pairs.append((request, db))
            else:
                query, request_db = request
                pairs.append((query, request_db))

        def run_one(pair: tuple[ConjunctiveQuery, Database]) -> EvalResult:
            query, request_db = pair
            try:
                # Runs on a pool worker: execute() anchors the budget
                # deadline here, when the request starts, so a request
                # queued behind a full pool keeps its whole budget.
                return self.execute(
                    query, request_db, budget=budget, backend=backend,
                    semiring=semiring,
                )
            except ReproError as error:
                # Per-request fault isolation: a blown budget, a schema
                # mismatch, or an undecomposable query fails that request
                # alone, not the batch.  Non-library exceptions still
                # propagate — those are bugs, not request outcomes.
                method = "budget" if isinstance(error, BudgetExceeded) else "error"
                return EvalResult(
                    query, None, EvalStats(), False, 0, method,
                    0.0, error=str(error),
                )

        started = time.monotonic()
        pool_width = workers if workers is not None else self.workers
        if pool_width <= 1 or len(pairs) <= 1:
            results = [run_one(p) for p in pairs]
        else:
            with ThreadPoolExecutor(max_workers=pool_width) as pool:
                results = list(pool.map(run_one, pairs))
        elapsed = time.monotonic() - started

        merged = EvalStats()
        for r in results:
            merged.merge(r.stats)
        return BatchResult(
            results=results,
            stats=merged,
            elapsed=elapsed,
            cache_hits=sum(1 for r in results if r.cache_hit),
            cache_misses=sum(1 for r in results if r.ok and not r.cache_hit),
            failures=sum(1 for r in results if not r.ok),
        )
