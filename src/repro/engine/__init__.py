"""``repro.engine`` — a decompose-once, execute-many query engine.

The subsystem layers the repo's existing pieces into one serving
pipeline (see the module docstrings for the theory each stage leans on):

* :mod:`~repro.engine.fingerprint` — canonical structural fingerprints
  of query hypergraphs (colour refinement), so isomorphic query shapes
  share one cache key regardless of variable/predicate renaming;
* :mod:`~repro.engine.cache` — a thread-safe LRU plan cache with
  hit/miss/eviction counters, transporting cached decompositions onto
  incoming queries through the Theorem A.7 relabelling maps;
* :mod:`~repro.engine.plan` — physical plans: cardinality-driven join
  orders and root choice compiled per database on top of Lemma 4.6;
* :mod:`~repro.engine.executor` — the :class:`Engine` facade with
  ``execute`` / ``execute_many`` / ``explain``, per-request budgets and
  aggregated :class:`~repro.db.stats.EvalStats`.

>>> from repro import Engine, parse_query
>>> from repro.db import Database
>>> engine = Engine()
>>> db = Database()
>>> db.add_fact("e", 1, 2); db.add_fact("e", 2, 3); db.add_fact("e", 3, 1)
>>> engine.execute(parse_query("e(X,Y), e(Y,Z), e(Z,X)"), db).boolean
True
>>> engine.execute(parse_query("f(A,B), f(B,C), f(C,A)"), db.__class__.from_relations({"f": [(1, 2), (2, 3), (3, 1)]})).cache_hit
True
"""

from .cache import CachedPlan, CacheHit, PlanCache, transport_plan
from .executor import BatchResult, Engine, EvalResult
from .fingerprint import fingerprint, shape_isomorphism
from .plan import NodePlan, QueryPlan, compile_plan, execute_plan

__all__ = [
    "BatchResult",
    "CacheHit",
    "CachedPlan",
    "Engine",
    "EvalResult",
    "NodePlan",
    "PlanCache",
    "QueryPlan",
    "compile_plan",
    "execute_plan",
    "fingerprint",
    "shape_isomorphism",
    "transport_plan",
]
