"""A thread-safe LRU plan cache keyed on structural fingerprints.

The cache stores hypertree decompositions under the fingerprint of the
query that produced them.  A lookup for a structurally identical query —
same hypergraph shape, arbitrary variable/predicate renaming — finds the
entry, certifies it with an explicit isomorphism, and *transports* the
decomposition onto the incoming query's atoms:

1. rename every χ variable and λ-atom through the isomorphism, giving a
   decomposition over the incoming query's variables;
2. swap each λ atom for a witness atom of the incoming query with the
   same variable set via the Theorem A.7 map
   (:func:`repro.core.canonical.hypergraph_decomposition_to_query`).

Validity is preserved because Definition 4.1's conditions see atoms only
through their variable sets; the independent GHTD checker re-certifies
every transported plan anyway, so a bug in the isomorphism search can
cost a cache miss but never a wrong answer.

Because 1-WL fingerprints can (rarely) collide for non-isomorphic
shapes, each fingerprint maps to a *bucket* of entries; lookups try each
entry's isomorphism in turn and fall through to a miss.

Buckets are keyed ``(fingerprint, semiring tag)`` — ``"set"`` for plain
set semantics — so per-semiring hit rates stay observable and eviction
treats each workload family independently.  Decompositions themselves
are *semiring-independent* (they fix evaluation structure, not the
algebra annotations are folded in), so a miss under one tag first tries
to **promote** a sibling tag's entry at the same fingerprint: the first
``Engine.count`` of a shape that set semantics already planned costs a
transport, not a decomposition.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..core.canonical import hypergraph_decomposition_to_query
from ..core.hypertree import HypertreeDecomposition
from ..core.query import ConjunctiveQuery
from ..heuristics.validate import check_decomposition
from .fingerprint import fingerprint, shape_isomorphism


@dataclass(frozen=True)
class CachedPlan:
    """One stored shape: the representative query it was planned for,
    its decomposition, and provenance from the planner."""

    query: ConjunctiveQuery
    decomposition: HypertreeDecomposition
    width: int
    method: str


@dataclass(frozen=True)
class CacheHit:
    """A successful lookup: the decomposition transported onto the
    incoming query, plus the stored provenance."""

    decomposition: HypertreeDecomposition
    width: int
    method: str


def transport_plan(
    entry: CachedPlan, query: ConjunctiveQuery
) -> HypertreeDecomposition | None:
    """Carry *entry*'s decomposition onto *query*, or ``None`` if the two
    are not actually isomorphic (fingerprint collision or step cap)."""
    varmap = shape_isomorphism(entry.query, query)
    if varmap is None:
        return None
    renamed = entry.decomposition.map_nodes(
        lambda n: (
            frozenset(varmap[v] for v in n.chi),
            frozenset(a.rename(varmap) for a in n.lam),
        )
    )
    transported = hypergraph_decomposition_to_query(
        query, HypertreeDecomposition(query, renamed.root)
    )
    # Independent certification: a transported plan must be a valid GHTD
    # of the *incoming* query, not just of the representative.
    if check_decomposition(transported):
        return None
    return transported


class PlanCache:
    """Thread-safe LRU cache: ``(fingerprint, semiring tag)`` → bucket of
    :class:`CachedPlan`.

    ``maxsize`` bounds the number of stored plans (0 disables caching
    entirely: every lookup is a miss and stores are dropped).  Counters:

    * :attr:`hits` — lookups answered from the cache;
    * :attr:`misses` — lookups that fell through (unknown fingerprint,
      failed certification, or caching disabled);
    * :attr:`promotions` — hits served by copying a sibling semiring
      tag's entry at the same fingerprint (decompositions are
      semiring-independent, so the structure is shared across tags);
    * :attr:`evictions` — plans dropped to respect ``maxsize``.
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self._lock = threading.RLock()
        self._buckets: OrderedDict[tuple[str, str], list[CachedPlan]] = (
            OrderedDict()
        )
        # fingerprint → tags holding a bucket for it, for promotion.
        self._tags_of: dict[str, set[str]] = {}
        self._size = 0
        self.hits = 0
        self.misses = 0
        self.promotions = 0
        self.evictions = 0

    def lookup(
        self, query: ConjunctiveQuery, semiring_tag: str = "set"
    ) -> CacheHit | None:
        """Find and transport a plan for *query*'s shape under the given
        semiring tag (None = miss).  A miss under this tag first tries
        the sibling tags at the same fingerprint and promotes a match."""
        fp = fingerprint(query)
        key = (fp, semiring_tag)
        with self._lock:
            bucket = list(self._buckets.get(key, ()))
            if bucket:
                self._buckets.move_to_end(key)
            sibling_tags = [
                t for t in self._tags_of.get(fp, ()) if t != semiring_tag
            ]
        # The isomorphism search and transport run outside the lock: they
        # only read immutable entries, so concurrent lookups proceed in
        # parallel and the lock guards bookkeeping alone.
        for entry in bucket:
            transported = transport_plan(entry, query)
            if transported is not None:
                with self._lock:
                    self.hits += 1
                return CacheHit(transported, entry.width, entry.method)
        for tag in sibling_tags:
            with self._lock:
                sibling = list(self._buckets.get((fp, tag), ()))
            for entry in sibling:
                transported = transport_plan(entry, query)
                if transported is not None:
                    with self._lock:
                        self.hits += 1
                        self.promotions += 1
                    # Copy the shape into this tag's bucket so the next
                    # lookup hits directly.
                    self.store(
                        query, transported, entry.width, entry.method,
                        semiring_tag=semiring_tag,
                    )
                    return CacheHit(transported, entry.width, entry.method)
        with self._lock:
            self.misses += 1
        return None

    def store(
        self,
        query: ConjunctiveQuery,
        decomposition: HypertreeDecomposition,
        width: int,
        method: str,
        semiring_tag: str = "set",
    ) -> None:
        """Insert a freshly computed plan under *query*'s fingerprint and
        semiring tag."""
        if self.maxsize <= 0:
            return
        fp = fingerprint(query)
        key = (fp, semiring_tag)
        entry = CachedPlan(query.as_boolean(), decomposition, width, method)
        with self._lock:
            # Concurrent misses of one shape race to store it; dedup
            # against isomorphic entries under the lock (check-then-act
            # must be atomic) so the bucket never accumulates copies.
            # Stores are rare — cold misses only — so holding the lock
            # through the small isomorphism search is fine.
            bucket = self._buckets.setdefault(key, [])
            if any(
                shape_isomorphism(e.query, entry.query) is not None
                for e in bucket
            ):
                return
            bucket.append(entry)
            self._buckets.move_to_end(key)
            self._tags_of.setdefault(fp, set()).add(semiring_tag)
            self._size += 1
            # Evict least-recently-used buckets, but never the one just
            # written: a single bucket of colliding shapes may therefore
            # exceed maxsize slightly rather than self-destruct.
            while self._size > self.maxsize and len(self._buckets) > 1:
                (evicted_fp, evicted_tag), evicted = self._buckets.popitem(
                    last=False
                )
                self._size -= len(evicted)
                self.evictions += len(evicted)
                tags = self._tags_of.get(evicted_fp)
                if tags is not None:
                    tags.discard(evicted_tag)
                    if not tags:
                        del self._tags_of[evicted_fp]

    def clear(self) -> None:
        with self._lock:
            self._buckets.clear()
            self._tags_of.clear()
            self._size = 0

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def snapshot(self) -> dict[str, int]:
        """Lock-consistent counter read: hits/misses/evictions/size
        captured under one lock acquisition, so a snapshot taken while
        other threads look plans up is a coherent point-in-time view
        (reading the bare attributes one by one can pair a pre-lookup
        hit count with a post-lookup miss count)."""
        with self._lock:
            return {
                "size": self._size,
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "promotions": self.promotions,
                "evictions": self.evictions,
            }

    def info(self) -> dict[str, int | float]:
        """Counter snapshot plus the derived hit rate."""
        counters = self.snapshot()
        lookups = counters["hits"] + counters["misses"]
        counters["hit_rate"] = (
            (counters["hits"] / lookups) if lookups else 0.0
        )
        return counters
