"""Structural fingerprints of query hypergraphs (the plan-cache key).

A hypertree decomposition depends on a query only through its hypergraph
``H(Q)`` (§2.1, Appendix A): atoms contribute their variable *sets*, and
neither variable names, predicate names, constants, nor atom order
matter.  Two queries whose hypergraphs are isomorphic can therefore share
one decomposition — the regime a plan cache exploits on repeated traffic.

:func:`fingerprint` computes a canonical key by colour refinement (1-WL)
on the variable–edge incidence structure: variables and edges exchange
colour multisets until the partition stabilises, and the key hashes the
stable colour histogram.  Isomorphic queries always collide; since 1-WL
is not a complete isomorphism test, *non*-isomorphic queries may rarely
collide too, which is why the cache certifies every hit with an explicit
isomorphism from :func:`shape_isomorphism` before transporting a plan.

:func:`shape_isomorphism` finds a variable bijection mapping one query's
edge multiset onto another's, by colour-guided backtracking over edges.
A step cap keeps pathological symmetric instances from stalling the
engine — exceeding it reports "no isomorphism found", which the cache
treats as a miss (correct, merely unamortised).
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Sequence

from ..core.atoms import Variable
from ..core.query import ConjunctiveQuery

#: Backtracking-step budget for :func:`shape_isomorphism`.  Queries are
#: small (tens of atoms) and colours prune hard, so real workloads use a
#: tiny fraction of this; the cap only guards adversarial symmetry.
_ISO_STEP_LIMIT = 200_000


def _edges_of(query: ConjunctiveQuery) -> list[frozenset[Variable]]:
    """The hypergraph edge multiset: one variable set per body atom."""
    return [a.variables for a in query.atoms]


def refine_colors(
    edges: Sequence[frozenset[Variable]],
) -> tuple[dict[Variable, int], list[int]]:
    """Stable colour refinement of the variable–edge incidence structure.

    Returns ``(variable → colour, edge colours by position)``.  Colours
    are canonical class ids — isomorphic inputs receive identical colour
    multisets — assigned by ranking each round's signatures, so they are
    comparable *across* queries.
    """
    variables = sorted({v for e in edges for v in e})
    incident: dict[Variable, list[int]] = {v: [] for v in variables}
    for i, e in enumerate(edges):
        for v in e:
            incident[v].append(i)

    var_color = {v: 0 for v in variables}
    edge_color = [len(e) for e in edges]

    for _ in range(len(variables) + len(edges) + 1):
        edge_sig = [
            (edge_color[i], tuple(sorted(var_color[v] for v in e)))
            for i, e in enumerate(edges)
        ]
        edge_rank = {sig: r for r, sig in enumerate(sorted(set(edge_sig)))}
        new_edge_color = [edge_rank[sig] for sig in edge_sig]

        var_sig = {
            v: (var_color[v], tuple(sorted(new_edge_color[i] for i in incident[v])))
            for v in variables
        }
        var_rank = {
            sig: r for r, sig in enumerate(sorted(set(var_sig.values())))
        }
        new_var_color = {v: var_rank[var_sig[v]] for v in variables}

        stable = (
            len(set(new_edge_color)) == len(set(edge_color))
            and len(set(new_var_color.values())) == len(set(var_color.values()))
        )
        var_color, edge_color = new_var_color, new_edge_color
        if stable:
            break
    return var_color, edge_color


def fingerprint(query: ConjunctiveQuery) -> str:
    """A canonical structural key: equal for isomorphic query shapes.

    Invariant under variable renaming, predicate renaming, constant
    changes, and atom permutation.  Stable across processes (keyed
    hashing via blake2b, not Python's salted ``hash``).
    """
    edges = _edges_of(query)
    var_color, edge_color = refine_colors(edges)
    payload = repr(
        (
            len(edges),
            sorted((edge_color[i], len(e)) for i, e in enumerate(edges)),
            sorted(var_color.values()),
        )
    )
    return hashlib.blake2b(payload.encode(), digest_size=12).hexdigest()


def shape_isomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> dict[Variable, Variable] | None:
    """A variable bijection carrying ``H(source)`` onto ``H(target)``.

    The returned map sends each source variable to a distinct target
    variable such that the source edge multiset maps exactly onto the
    target edge multiset.  Returns ``None`` when the shapes differ (or
    the step cap is hit — safe for the cache, which then just misses).
    """
    s_edges = _edges_of(source)
    t_edges = _edges_of(target)
    if len(s_edges) != len(t_edges):
        return None
    s_vc, s_ec = refine_colors(s_edges)
    t_vc, t_ec = refine_colors(t_edges)
    if sorted(s_ec) != sorted(t_ec) or sorted(s_vc.values()) != sorted(
        t_vc.values()
    ):
        return None

    # Candidate target edges per colour; source edges ordered by colour
    # rarity (most constrained first), then connectivity to already-placed
    # edges so the variable map fills in early.
    by_color: dict[int, list[int]] = {}
    for j, c in enumerate(t_ec):
        by_color.setdefault(c, []).append(j)
    rarity = {c: len(js) for c, js in by_color.items()}

    order: list[int] = []
    placed_vars: set[Variable] = set()
    remaining = set(range(len(s_edges)))
    while remaining:
        best = min(
            remaining,
            key=lambda i: (
                -len(s_edges[i] & placed_vars),
                rarity[s_ec[i]],
                -len(s_edges[i]),
                i,
            ),
        )
        order.append(best)
        placed_vars.update(s_edges[best])
        remaining.discard(best)

    steps = 0
    used = [False] * len(t_edges)
    varmap: dict[Variable, Variable] = {}
    inverse: dict[Variable, Variable] = {}

    def assign_edge(position: int) -> bool:
        nonlocal steps
        if position == len(order):
            return True
        i = order[position]
        edge = s_edges[i]
        for j in by_color[s_ec[i]]:
            if used[j] or t_ec[j] != s_ec[i] or len(t_edges[j]) != len(edge):
                continue
            steps += 1
            if steps > _ISO_STEP_LIMIT:
                return False
            for extension in _edge_matchings(edge, t_edges[j], varmap, inverse,
                                             s_vc, t_vc):
                for sv, tv in extension:
                    varmap[sv] = tv
                    inverse[tv] = sv
                used[j] = True
                if assign_edge(position + 1):
                    return True
                used[j] = False
                for sv, tv in extension:
                    del varmap[sv]
                    del inverse[tv]
                if steps > _ISO_STEP_LIMIT:
                    return False
        return False

    if assign_edge(0):
        return dict(varmap)
    return None


def _edge_matchings(edge, t_edge, varmap, inverse, s_vc, t_vc):
    """All consistent ways to extend *varmap* so that *edge* maps onto
    *t_edge*: mapped variables must land inside *t_edge*, and the
    unmapped ones pair off with *t_edge*'s unclaimed variables of equal
    colour (yielded as the list of new assignments)."""
    free_source = []
    claimed_targets = set()
    for v in edge:
        if v in varmap:
            if varmap[v] not in t_edge:
                return
            claimed_targets.add(varmap[v])
        else:
            free_source.append(v)
    free_target = [
        w for w in t_edge if w not in claimed_targets and w not in inverse
    ]
    if len(free_source) != len(free_target) or len(edge) != len(t_edge):
        return
    if not free_source:
        yield []
        return
    free_source.sort()
    for perm in itertools.permutations(free_target):
        if all(s_vc[sv] == t_vc[tv] for sv, tv in zip(free_source, perm)):
            yield list(zip(free_source, perm))
