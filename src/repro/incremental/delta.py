"""Signed delta batches over base relations.

A :class:`Delta` is one batch of tuple-level changes to a database
instance: ``+1`` inserts a row, ``-1`` deletes it.  It is the unit of
work for the incremental subsystem — :meth:`repro.db.database.Database.apply`
consumes one and returns the *effective* sub-delta (what actually changed
under set semantics), and :class:`repro.incremental.MaterializedView`
propagates that along the join tree.

Batches are normalised on construction: arbitrary signed counts collapse
to a single sign per row (base relations are sets, so within one batch
multiplicity carries no information) and zero-count rows disappear.
Sequencing two batches is *not* addition — the later change to a row wins
(:meth:`Delta.then`), matching insert/delete upsert semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterable, Iterator, Mapping

from .._errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..db.database import Database

Row = tuple
Value = Hashable


class Delta:
    """An immutable, normalised batch of signed tuple changes.

    Attributes
    ----------
    changes:
        ``predicate -> {row: sign}`` with sign ``+1`` (insert) or ``-1``
        (delete).  Rows of one predicate must agree on arity.
    """

    __slots__ = ("changes",)

    def __init__(self, changes: Mapping[str, Mapping[Row, int]]):
        normal: dict[str, dict[Row, int]] = {}
        for predicate, rows in changes.items():
            arity: int | None = None
            bucket: dict[Row, int] = {}
            for raw_row, count in rows.items():
                row = tuple(raw_row)
                if arity is None:
                    arity = len(row)
                elif len(row) != arity:
                    raise SchemaError(
                        f"delta rows for {predicate!r} mix arities "
                        f"{arity} and {len(row)}"
                    )
                if count > 0:
                    bucket[row] = 1
                elif count < 0:
                    bucket[row] = -1
            if bucket:
                normal[predicate] = bucket
        self.changes = normal

    # -- constructors -----------------------------------------------------
    @staticmethod
    def empty() -> "Delta":
        return Delta({})

    @staticmethod
    def inserts(predicate: str, rows: Iterable[Iterable[Value]]) -> "Delta":
        return Delta({predicate: {tuple(r): 1 for r in rows}})

    @staticmethod
    def deletes(predicate: str, rows: Iterable[Iterable[Value]]) -> "Delta":
        return Delta({predicate: {tuple(r): -1 for r in rows}})

    @staticmethod
    def from_changes(
        changes: Iterable[tuple[str, Iterable[Value], int]]
    ) -> "Delta":
        """Build from ``(predicate, row, sign)`` triples.

        Later triples for the same row win (upsert sequencing), so a
        recorded change log replays into the batch it denotes.
        """
        staged: dict[str, dict[Row, int]] = {}
        for predicate, row, sign in changes:
            staged.setdefault(predicate, {})[tuple(row)] = sign
        return Delta(staged)

    # -- views ------------------------------------------------------------
    @property
    def predicates(self) -> frozenset[str]:
        return frozenset(self.changes)

    @property
    def is_empty(self) -> bool:
        return not self.changes

    def __bool__(self) -> bool:
        return bool(self.changes)

    def __len__(self) -> int:
        """Total number of tuple-level changes in the batch."""
        return sum(len(rows) for rows in self.changes.values())

    def __iter__(self) -> Iterator[tuple[str, Row, int]]:
        """Deterministic ``(predicate, row, sign)`` stream."""
        for predicate in sorted(self.changes):
            rows = self.changes[predicate]
            for row in sorted(rows, key=repr):
                yield predicate, row, rows[row]

    def inserted(self, predicate: str) -> frozenset[Row]:
        rows = self.changes.get(predicate, {})
        return frozenset(r for r, s in rows.items() if s > 0)

    def deleted(self, predicate: str) -> frozenset[Row]:
        rows = self.changes.get(predicate, {})
        return frozenset(r for r, s in rows.items() if s < 0)

    # -- combinators ------------------------------------------------------
    def touches(self, predicates: Iterable[str]) -> bool:
        """Does this batch mention any of the given predicates?"""
        wanted = set(predicates)
        return any(p in wanted for p in self.changes)

    def restrict(self, predicates: Iterable[str]) -> "Delta":
        """The sub-batch over the given predicates only."""
        wanted = set(predicates)
        return Delta(
            {p: rows for p, rows in self.changes.items() if p in wanted}
        )

    def then(self, other: "Delta") -> "Delta":
        """Sequential composition: *other* happens after this batch.

        Per row the later change wins — inserting then deleting a row
        composes to deleting it (ensuring absence), not to "no change".
        """
        staged: dict[str, dict[Row, int]] = {
            p: dict(rows) for p, rows in self.changes.items()
        }
        for predicate, rows in other.changes.items():
            staged.setdefault(predicate, {}).update(rows)
        return Delta(staged)

    def inverse(self) -> "Delta":
        """The sign-flipped batch (undoes this one when it was effective)."""
        return Delta(
            {
                p: {row: -sign for row, sign in rows.items()}
                for p, rows in self.changes.items()
            }
        )

    # -- validation -------------------------------------------------------
    def check_schema(self, db: "Database") -> None:
        """Raise :class:`SchemaError` if any change contradicts *db*'s
        schema.  Predicates unknown to the database pass (an insert
        batch defines them on first use)."""
        for predicate, rows in self.changes.items():
            if not db.has_predicate(predicate):
                continue
            arity = db.arity(predicate)
            for row in rows:
                if len(row) != arity:
                    raise SchemaError(
                        f"delta row {predicate}{row!r} does not match "
                        f"arity {arity}"
                    )
                break  # construction already enforced one arity per predicate

    # -- rendering --------------------------------------------------------
    def __repr__(self) -> str:
        plus = sum(1 for _, _, s in self if s > 0)
        minus = len(self) - plus
        preds = ", ".join(sorted(self.changes)) or "∅"
        return f"Delta(+{plus}/-{minus} over {preds})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Delta):
            return NotImplemented
        return self.changes == other.changes

    def __hash__(self) -> int:
        return hash(
            tuple(
                (p, frozenset(rows.items()))
                for p, rows in sorted(self.changes.items())
            )
        )
