"""Support counting for delta propagation (the counting algorithm).

The classic counting algorithm for view maintenance (Gupta, Mumick &
Subrahmanian) keeps, for every derived tuple, the number of derivations
that *support* it.  An insertion surfaces exactly the tuples whose
support rises from zero; a deletion retracts exactly the tuples whose
support drops to zero; every other change is invisible one level up —
which is why propagation along a join tree touches only the paths a
delta actually affects.

Algebraically this is annotated evaluation over
:class:`repro.db.semiring.IntegerRing` — the ℕ counting semiring of
``Engine.count`` completed with additive inverses so deltas can
retract: a deletion is an insertion annotated ``negate(one)``, and all
weight folds below go through the ring's ``plus``/``times``.  The
machinery here is therefore the incremental face of the same instance
the batch evaluator runs, not a private arithmetic.

This module provides the three machine parts, all join-tree agnostic:

* :class:`SupportCounter` — a multiset of rows that folds signed weight
  updates and reports only the zero crossings (the set-level delta);
* :class:`JoinInput` — one operand of a join: a row set plus
  incrementally maintained hash indexes on the key attributes the delta
  rules need;
* :class:`DeltaJoin` — a compiled ``π_keep(I_0 ⋈ ... ⋈ I_k)`` operator
  maintained under per-input set deltas via the sequential delta rule
  ``Δ(I⋈J) = ΔI⋈J ∪ I'⋈ΔJ``, generalised to k inputs.

:class:`repro.incremental.view.MaterializedView` instantiates one
:class:`DeltaJoin` per join-tree node; the set-level output delta of a
child node is the input delta of its parent's child slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..db.semiring import INT_RING, IntegerRing
from ..db.stats import EvalStats

Row = tuple
#: row -> non-zero signed weight (a sparse delta of a counted relation).
#: Weights are :data:`repro.db.semiring.INT_RING` elements.
SignedRows = dict[Row, int]


class SupportCounter:
    """Rows with strictly positive derivation counts.

    :meth:`apply` folds a signed weight update into the counts with the
    ring's ``plus`` and returns the *set-level* delta: ``one`` for rows
    whose support rose from zero (appeared), ``negate(one)`` for rows
    whose support hit zero (vanished).  Support never goes negative — if
    it would, the caller fed a delta that was not effective against the
    maintained state, which is an internal invariant violation, not a
    user error.
    """

    __slots__ = ("counts", "ring")

    def __init__(self, ring: IntegerRing = INT_RING) -> None:
        self.counts: dict[Row, int] = {}
        self.ring = ring

    def __len__(self) -> int:
        return len(self.counts)

    def __contains__(self, row: Row) -> bool:
        return row in self.counts

    def support(self, row: Row) -> int:
        return self.counts.get(row, 0)

    def rows(self) -> frozenset[Row]:
        return frozenset(self.counts)

    def apply(self, signed: Mapping[Row, int]) -> SignedRows:
        out: SignedRows = {}
        counts = self.counts
        ring = self.ring
        zero, one = ring.zero, ring.one
        appeared, vanished = one, ring.negate(one)
        for row, weight in signed.items():
            if weight == zero:
                continue
            old = counts.get(row, zero)
            new = ring.plus(old, weight)
            if new < zero:
                raise RuntimeError(
                    f"support underflow for {row!r}: {old} + {weight} "
                    "(delta not effective against maintained state)"
                )
            if new == zero:
                del counts[row]
                out[row] = vanished
            else:
                counts[row] = new
                if old == zero:
                    out[row] = appeared
        return out


class JoinInput:
    """One operand of a :class:`DeltaJoin`: a row set plus key indexes.

    Indexes are created lazily the first time a key position tuple is
    requested (at plan compile time) and maintained incrementally on
    every :meth:`apply`, so a delta-rule probe never rescans the input.
    """

    __slots__ = ("attributes", "rows", "_indexes")

    def __init__(self, attributes: tuple[str, ...]):
        self.attributes = attributes
        self.rows: set[Row] = set()
        self._indexes: dict[tuple[int, ...], dict[Row, set[Row]]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def index_on(self, positions: tuple[int, ...]) -> dict[Row, set[Row]]:
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row in self.rows:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, set()).add(row)
            self._indexes[positions] = index
        return index

    def apply(self, set_delta: Mapping[Row, int]) -> None:
        for row, sign in set_delta.items():
            if sign > 0:
                self.rows.add(row)
                for positions, index in self._indexes.items():
                    key = tuple(row[p] for p in positions)
                    index.setdefault(key, set()).add(row)
            else:
                self.rows.discard(row)
                for positions, index in self._indexes.items():
                    key = tuple(row[p] for p in positions)
                    bucket = index.get(key)
                    if bucket is not None:
                        bucket.discard(row)
                        if not bucket:
                            del index[key]


@dataclass(frozen=True)
class _FoldStep:
    """One probe of the delta rule: join the accumulated rows with one
    stored input through its key index, appending the input's new
    attributes."""

    input_index: int
    acc_key_positions: tuple[int, ...]
    input_key_positions: tuple[int, ...]
    append_positions: tuple[int, ...]


class DeltaJoin:
    """``π_keep(I_0 ⋈ ... ⋈ I_k)`` maintained under per-input deltas.

    The fold order for each possible delta input is compiled once (greedy:
    prefer operands sharing attributes with what is already joined, as the
    batch planner does), and the required indexes are registered on the
    inputs up front.  :meth:`apply` implements the sequential k-way delta
    rule: inputs are updated in index order, and the contribution of
    ``ΔI_j`` joins the *new* state of inputs before ``j`` with the *old*
    state of inputs after ``j`` — summed and projected, that is exactly
    the delta of the projected join.  Weights combine through the ring:
    a joined row's weight is the delta weight ``times`` the stored
    row's unit annotation, and the projection ``plus``-folds collapsed
    rows.  The projection's derivation counts live in :attr:`result`,
    so only zero crossings escape to the caller.
    """

    def __init__(
        self,
        inputs: list[JoinInput],
        keep: tuple[str, ...],
        ring: IntegerRing = INT_RING,
    ):
        if not inputs:
            raise ValueError("DeltaJoin needs at least one input")
        self.inputs = inputs
        self.keep = keep
        self.ring = ring
        self.result = SupportCounter(ring)
        self._plans: list[tuple[tuple[_FoldStep, ...], tuple[int, ...]]] = [
            self._compile(j) for j in range(len(inputs))
        ]

    def _compile(
        self, j: int
    ) -> tuple[tuple[_FoldStep, ...], tuple[int, ...]]:
        acc_attrs = list(self.inputs[j].attributes)
        remaining = [i for i in range(len(self.inputs)) if i != j]
        steps: list[_FoldStep] = []
        while remaining:
            acc_set = set(acc_attrs)
            m = max(
                remaining,
                key=lambda i: (
                    sum(1 for a in self.inputs[i].attributes if a in acc_set),
                    -i,
                ),
            )
            remaining.remove(m)
            attrs = self.inputs[m].attributes
            shared = [a for a in attrs if a in acc_set]
            extra = [a for a in attrs if a not in acc_set]
            step = _FoldStep(
                input_index=m,
                acc_key_positions=tuple(acc_attrs.index(a) for a in shared),
                input_key_positions=tuple(attrs.index(a) for a in shared),
                append_positions=tuple(attrs.index(a) for a in extra),
            )
            # Register the index now so the first apply() probes an
            # already-maintained structure.
            self.inputs[m].index_on(step.input_key_positions)
            steps.append(step)
            acc_attrs.extend(extra)
        missing = [a for a in self.keep if a not in acc_attrs]
        if missing:
            raise ValueError(
                f"projection attributes {missing} not produced by the join "
                f"of {[i.attributes for i in self.inputs]}"
            )
        project = tuple(acc_attrs.index(a) for a in self.keep)
        return tuple(steps), project

    def apply(
        self,
        deltas: Mapping[int, SignedRows],
        stats: EvalStats | None = None,
    ) -> SignedRows:
        """Fold the batch of per-input set deltas; return the set-level
        delta of the projected join result."""
        signed_out: SignedRows = {}
        ring = self.ring
        zero, one = ring.zero, ring.one
        for j in sorted(deltas):
            delta_j = deltas[j]
            if not delta_j:
                continue
            steps, project = self._plans[j]
            acc: SignedRows = dict(delta_j)
            for step in steps:
                if not acc:
                    break
                index = self.inputs[step.input_index].index_on(
                    step.input_key_positions
                )
                nxt: SignedRows = {}
                for row, weight in acc.items():
                    key = tuple(row[p] for p in step.acc_key_positions)
                    # Stored rows are set-level state, annotated ``one``.
                    weight = ring.times(weight, one)
                    for match in index.get(key, ()):
                        joined = row + tuple(
                            match[p] for p in step.append_positions
                        )
                        nxt[joined] = ring.plus(nxt.get(joined, zero), weight)
                acc = nxt
                if stats is not None:
                    stats.joins += 1
                    size = len(acc)
                    stats.total_tuples_produced += size
                    if size > stats.max_intermediate:
                        stats.max_intermediate = size
            for row, weight in acc.items():
                if weight == zero:
                    continue
                projected = tuple(row[p] for p in project)
                signed_out[projected] = ring.plus(
                    signed_out.get(projected, zero), weight
                )
            # Input j's state becomes "new" for the inputs still pending.
            self.inputs[j].apply(delta_j)
        if stats is not None:
            stats.projections += 1
        return self.result.apply(signed_out)
