"""Support counting for delta propagation (the counting algorithm).

The classic counting algorithm for view maintenance (Gupta, Mumick &
Subrahmanian) keeps, for every derived tuple, the number of derivations
that *support* it.  An insertion surfaces exactly the tuples whose
support rises from zero; a deletion retracts exactly the tuples whose
support drops to zero; every other change is invisible one level up —
which is why propagation along a join tree touches only the paths a
delta actually affects.

This module provides the three machine parts, all join-tree agnostic:

* :class:`SupportCounter` — a multiset of rows that folds signed weight
  updates and reports only the zero crossings (the set-level delta);
* :class:`JoinInput` — one operand of a join: a row set plus
  incrementally maintained hash indexes on the key attributes the delta
  rules need;
* :class:`DeltaJoin` — a compiled ``π_keep(I_0 ⋈ ... ⋈ I_k)`` operator
  maintained under per-input set deltas via the sequential delta rule
  ``Δ(I⋈J) = ΔI⋈J ∪ I'⋈ΔJ``, generalised to k inputs.

:class:`repro.incremental.view.MaterializedView` instantiates one
:class:`DeltaJoin` per join-tree node; the set-level output delta of a
child node is the input delta of its parent's child slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..db.stats import EvalStats

Row = tuple
#: row -> non-zero signed weight (a sparse delta of a counted relation).
SignedRows = dict[Row, int]


class SupportCounter:
    """Rows with strictly positive derivation counts.

    :meth:`apply` folds a signed weight update into the counts and
    returns the *set-level* delta: ``+1`` for rows whose support rose
    from zero (appeared), ``-1`` for rows whose support hit zero
    (vanished).  Support never goes negative — if it would, the caller
    fed a delta that was not effective against the maintained state,
    which is an internal invariant violation, not a user error.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: dict[Row, int] = {}

    def __len__(self) -> int:
        return len(self.counts)

    def __contains__(self, row: Row) -> bool:
        return row in self.counts

    def support(self, row: Row) -> int:
        return self.counts.get(row, 0)

    def rows(self) -> frozenset[Row]:
        return frozenset(self.counts)

    def apply(self, signed: Mapping[Row, int]) -> SignedRows:
        out: SignedRows = {}
        counts = self.counts
        for row, weight in signed.items():
            if not weight:
                continue
            old = counts.get(row, 0)
            new = old + weight
            if new < 0:
                raise RuntimeError(
                    f"support underflow for {row!r}: {old} + {weight} "
                    "(delta not effective against maintained state)"
                )
            if new == 0:
                del counts[row]
                out[row] = -1
            else:
                counts[row] = new
                if old == 0:
                    out[row] = 1
        return out


class JoinInput:
    """One operand of a :class:`DeltaJoin`: a row set plus key indexes.

    Indexes are created lazily the first time a key position tuple is
    requested (at plan compile time) and maintained incrementally on
    every :meth:`apply`, so a delta-rule probe never rescans the input.
    """

    __slots__ = ("attributes", "rows", "_indexes")

    def __init__(self, attributes: tuple[str, ...]):
        self.attributes = attributes
        self.rows: set[Row] = set()
        self._indexes: dict[tuple[int, ...], dict[Row, set[Row]]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def index_on(self, positions: tuple[int, ...]) -> dict[Row, set[Row]]:
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row in self.rows:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, set()).add(row)
            self._indexes[positions] = index
        return index

    def apply(self, set_delta: Mapping[Row, int]) -> None:
        for row, sign in set_delta.items():
            if sign > 0:
                self.rows.add(row)
                for positions, index in self._indexes.items():
                    key = tuple(row[p] for p in positions)
                    index.setdefault(key, set()).add(row)
            else:
                self.rows.discard(row)
                for positions, index in self._indexes.items():
                    key = tuple(row[p] for p in positions)
                    bucket = index.get(key)
                    if bucket is not None:
                        bucket.discard(row)
                        if not bucket:
                            del index[key]


@dataclass(frozen=True)
class _FoldStep:
    """One probe of the delta rule: join the accumulated rows with one
    stored input through its key index, appending the input's new
    attributes."""

    input_index: int
    acc_key_positions: tuple[int, ...]
    input_key_positions: tuple[int, ...]
    append_positions: tuple[int, ...]


class DeltaJoin:
    """``π_keep(I_0 ⋈ ... ⋈ I_k)`` maintained under per-input deltas.

    The fold order for each possible delta input is compiled once (greedy:
    prefer operands sharing attributes with what is already joined, as the
    batch planner does), and the required indexes are registered on the
    inputs up front.  :meth:`apply` implements the sequential k-way delta
    rule: inputs are updated in index order, and the contribution of
    ``ΔI_j`` joins the *new* state of inputs before ``j`` with the *old*
    state of inputs after ``j`` — summed and projected, that is exactly
    the delta of the projected join.  The projection's derivation counts
    live in :attr:`result`, so only zero crossings escape to the caller.
    """

    def __init__(self, inputs: list[JoinInput], keep: tuple[str, ...]):
        if not inputs:
            raise ValueError("DeltaJoin needs at least one input")
        self.inputs = inputs
        self.keep = keep
        self.result = SupportCounter()
        self._plans: list[tuple[tuple[_FoldStep, ...], tuple[int, ...]]] = [
            self._compile(j) for j in range(len(inputs))
        ]

    def _compile(
        self, j: int
    ) -> tuple[tuple[_FoldStep, ...], tuple[int, ...]]:
        acc_attrs = list(self.inputs[j].attributes)
        remaining = [i for i in range(len(self.inputs)) if i != j]
        steps: list[_FoldStep] = []
        while remaining:
            acc_set = set(acc_attrs)
            m = max(
                remaining,
                key=lambda i: (
                    sum(1 for a in self.inputs[i].attributes if a in acc_set),
                    -i,
                ),
            )
            remaining.remove(m)
            attrs = self.inputs[m].attributes
            shared = [a for a in attrs if a in acc_set]
            extra = [a for a in attrs if a not in acc_set]
            step = _FoldStep(
                input_index=m,
                acc_key_positions=tuple(acc_attrs.index(a) for a in shared),
                input_key_positions=tuple(attrs.index(a) for a in shared),
                append_positions=tuple(attrs.index(a) for a in extra),
            )
            # Register the index now so the first apply() probes an
            # already-maintained structure.
            self.inputs[m].index_on(step.input_key_positions)
            steps.append(step)
            acc_attrs.extend(extra)
        missing = [a for a in self.keep if a not in acc_attrs]
        if missing:
            raise ValueError(
                f"projection attributes {missing} not produced by the join "
                f"of {[i.attributes for i in self.inputs]}"
            )
        project = tuple(acc_attrs.index(a) for a in self.keep)
        return tuple(steps), project

    def apply(
        self,
        deltas: Mapping[int, SignedRows],
        stats: EvalStats | None = None,
    ) -> SignedRows:
        """Fold the batch of per-input set deltas; return the set-level
        delta of the projected join result."""
        signed_out: SignedRows = {}
        for j in sorted(deltas):
            delta_j = deltas[j]
            if not delta_j:
                continue
            steps, project = self._plans[j]
            acc: SignedRows = dict(delta_j)
            for step in steps:
                if not acc:
                    break
                index = self.inputs[step.input_index].index_on(
                    step.input_key_positions
                )
                nxt: SignedRows = {}
                for row, weight in acc.items():
                    key = tuple(row[p] for p in step.acc_key_positions)
                    for match in index.get(key, ()):
                        joined = row + tuple(
                            match[p] for p in step.append_positions
                        )
                        nxt[joined] = nxt.get(joined, 0) + weight
                acc = nxt
                if stats is not None:
                    stats.joins += 1
                    size = len(acc)
                    stats.total_tuples_produced += size
                    if size > stats.max_intermediate:
                        stats.max_intermediate = size
            for row, weight in acc.items():
                if not weight:
                    continue
                projected = tuple(row[p] for p in project)
                signed_out[projected] = signed_out.get(projected, 0) + weight
            # Input j's state becomes "new" for the inputs still pending.
            self.inputs[j].apply(delta_j)
        if stats is not None:
            stats.projections += 1
        return self.result.apply(signed_out)
