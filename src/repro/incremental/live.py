"""The ``LiveEngine`` facade: standing queries over an update stream.

One object owns the mutable :class:`~repro.db.database.Database` and a
set of registered :class:`~repro.incremental.view.MaterializedView`\\ s::

    live = LiveEngine(db)                # or Engine(...).live(db)
    handle = live.register(query)        # decompose via the plan cache
    changes = live.apply(delta)          # all touched views, one batch
    handle.answers()                     # always-fresh answer relation

``register`` plans through a shared :class:`repro.engine.Engine`, so two
structurally identical views (same hypergraph shape under renaming) cost
one decomposition search — the fingerprint/isomorphism transport of the
plan cache serves live views exactly as it serves one-shot requests.

``apply`` first folds the batch into the database (obtaining the
*effective* delta under set semantics), then fans it out to every view
whose atoms mention a touched predicate; untouched views pay nothing.
All public methods (including handle reads) are serialised by an
:class:`threading.RLock` — like the plan cache, a ``LiveEngine`` may be
shared between request threads.  Subscriber callbacks run while the lock
is held (re-entrant calls from the same thread are fine); keep them
short.  Callbacks run only after *every* affected view's state is up to
date, and a raising callback is isolated: the remaining callbacks still
fire and the first exception is re-raised once the fan-out completes.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable

from ..core.query import ConjunctiveQuery
from ..db.database import Database
from ..db.relation import Relation
from ..db.stats import EvalStats
from ..engine.executor import Engine
from ..obs import current_tracer, get_registry
from .delta import Delta, Value
from .view import AnswerDelta, MaterializedView


class ViewHandle:
    """A registered view: identity, provenance, and the live answers.

    Reads go through the owning engine's lock, so a handle may be polled
    from one thread while another thread applies deltas.
    """

    __slots__ = (
        "view_id", "query", "view", "width", "method", "cache_hit", "_lock"
    )

    def __init__(
        self,
        view_id: int,
        query: ConjunctiveQuery,
        view: MaterializedView,
        width: int,
        method: str,
        cache_hit: bool,
        lock: threading.RLock,
    ):
        self.view_id = view_id
        self.query = query
        self.view = view
        self.width = width
        self.method = method
        self.cache_hit = cache_hit
        self._lock = lock

    def answers(self) -> Relation:
        with self._lock:
            return self.view.answers()

    @property
    def boolean(self) -> bool:
        with self._lock:
            return self.view.boolean

    @property
    def stats(self) -> EvalStats:
        """Merged maintenance stats across all batches (including the
        initial load)."""
        with self._lock:
            return self.view.stats

    @property
    def last_batch(self) -> EvalStats | None:
        with self._lock:
            return self.view.last_batch

    def subscribe(
        self, callback: Callable[[AnswerDelta], None]
    ) -> Callable[[], None]:
        with self._lock:
            return self.view.subscribe(callback)

    def __repr__(self) -> str:
        return (
            f"<ViewHandle #{self.view_id} {self.query.name}: "
            f"width {self.width} [{self.method}"
            f"{', cached' if self.cache_hit else ''}]>"
        )


class LiveEngine:
    """Register queries once; keep every answer fresh under deltas.

    Parameters
    ----------
    db:
        The database instance the engine owns and mutates.  A fresh empty
        one by default — streams may build the instance from nothing.
    engine:
        The planning :class:`repro.engine.Engine` (and with it the shared
        plan cache).  A private one is created when omitted.
    backend:
        Execution-backend kind (``"sequential"`` | ``"thread"`` |
        ``"process"``) configured on the private planning engine —
        affecting that engine's plans (shard assignment, and any ad hoc
        ``execute`` calls made through it), not the views: view state is
        seeded and maintained through the in-process delta-join
        machinery, which never runs on an execution backend.  Ignored
        when *engine* is supplied (the given engine's own backend wins).
    parallelism:
        With > 1, :meth:`apply` fans the effective delta out to the
        touched views over a worker pool, one task per view (views are
        independent state machines, so concurrent maintenance is safe).
        Views the delta does not touch are never scheduled at all —
        routing stays delta-driven either way.
    """

    def __init__(
        self,
        db: Database | None = None,
        engine: Engine | None = None,
        parallelism: int = 1,
        backend: str | None = None,
    ):
        self.db = db if db is not None else Database()
        self._owns_engine = engine is None
        self.engine = (
            engine if engine is not None else Engine(backend=backend)
        )
        self.parallelism = max(1, parallelism)
        self._lock = threading.RLock()
        self._pool: ThreadPoolExecutor | None = None
        self._views: dict[int, ViewHandle] = {}
        self._next_id = 0
        self.batches_applied = 0

    def _view_pool(self) -> ThreadPoolExecutor:
        """The lazily created fan-out pool (kept until :meth:`close`)."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="live-apply",
            )
        return self._pool

    def close(self) -> None:
        """Shut down the fan-out pool — and, when the planning engine was
        created privately by this ``LiveEngine``, that engine's execution
        backends too (a caller-supplied engine stays the caller's to
        close).  Idempotent; the engine remains usable afterwards (pools
        are recreated on demand)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "LiveEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            pool = self.__dict__.get("_pool")
            if pool is not None:
                pool.shutdown(wait=False)
        except Exception:
            pass

    # -- registration -----------------------------------------------------
    def register(self, query: ConjunctiveQuery) -> ViewHandle:
        """Plan *query* (through the cache), materialise it against the
        current database, and keep it maintained from now on.

        The query's predicate arities are declared on the database, so a
        later batch contradicting them is rejected by the upfront schema
        check of :meth:`Database.apply` — *before* anything mutates.  A
        query contradicting the database's existing schema is rejected
        here, at registration.
        """
        with self._lock:
            for predicate, arity in query.arities.items():
                self.db.declare(predicate, arity)
            plan = self.engine.plan(query, self.db)
            # Views fed by this engine receive deltas that Database.apply
            # already made effective, so they skip the base shadow.
            view = MaterializedView(query, self.db, plan, track_base=False)
            handle = ViewHandle(
                self._next_id,
                query,
                view,
                plan.width,
                plan.provenance,
                plan.cache_hit,
                self._lock,
            )
            self._views[handle.view_id] = handle
            self._next_id += 1
            return handle

    def declare(self, predicate: str, arity: int) -> None:
        """Declare a base predicate's arity on the owned database (under
        the live lock, so it serialises against in-flight batches)."""
        with self._lock:
            self.db.declare(predicate, arity)

    def unregister(self, handle: ViewHandle) -> None:
        with self._lock:
            self._views.pop(handle.view_id, None)

    def views(self) -> tuple[ViewHandle, ...]:
        with self._lock:
            return tuple(self._views.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)

    # -- updates ----------------------------------------------------------
    def apply(self, delta: Delta) -> dict[int, AnswerDelta]:
        """Fold one batch into the database and every affected view.

        Returns ``view_id -> AnswerDelta`` for the views whose atoms
        mention a touched predicate (the delta may still be empty when
        the changes did not alter that view's answers).

        Updates happen in two phases: first every affected view's state
        is brought up to date, then subscribers are notified — so a
        raising callback (its exception is re-raised after the fan-out
        completes) can never leave a sibling view out of sync with the
        database.
        """
        with self._lock, current_tracer().span(
            "live.apply", views=len(self._views)
        ) as batch_span:
            effective = self.db.apply(delta)
            results: dict[int, AnswerDelta] = {}
            touched: list = []
            if effective:
                touched = [
                    (view_id, handle)
                    for view_id, handle in self._views.items()
                    if effective.touches(handle.view.predicates)
                ]
                if self.parallelism > 1 and len(touched) > 1:
                    # One task per touched view; each task mutates only
                    # its own view's state, so the fan-out is safe.  The
                    # coordinator holds the lock throughout — handle
                    # reads still serialise against the batch as a whole.
                    futures = [
                        (view_id, self._view_pool().submit(
                            handle.view.apply, effective, False
                        ))
                        for view_id, handle in touched
                    ]
                    for view_id, future in futures:
                        results[view_id] = future.result()
                else:
                    for view_id, handle in touched:
                        results[view_id] = handle.view.apply(
                            effective, notify=False
                        )
            self.batches_applied += 1
            batch_span.set(
                touched_views=len(touched),
                changed_views=sum(1 for d in results.values() if d),
            )
            get_registry().counter("live.batches").inc()
            errors: list[BaseException] = []
            for view_id, answer_delta in results.items():
                handle = self._views.get(view_id)
                if handle is None:
                    continue
                try:
                    handle.view.notify_subscribers(answer_delta)
                except BaseException as error:  # noqa: BLE001 - deferred
                    errors.append(error)
            if errors:
                raise errors[0]
            return results

    def insert(
        self, predicate: str, *rows: Iterable[Value]
    ) -> dict[int, AnswerDelta]:
        """Convenience: ``apply(Delta.inserts(predicate, rows))``."""
        return self.apply(Delta.inserts(predicate, rows))

    def delete(
        self, predicate: str, *rows: Iterable[Value]
    ) -> dict[int, AnswerDelta]:
        """Convenience: ``apply(Delta.deletes(predicate, rows))``."""
        return self.apply(Delta.deletes(predicate, rows))

    # -- introspection ----------------------------------------------------
    def info(self) -> dict[str, object]:
        with self._lock:
            return {
                "views": len(self._views),
                "batches_applied": self.batches_applied,
                "db_tuples": self.db.tuple_count(),
                "db_version": self.db.version,
                "plan_cache": self.engine.cache.info(),
            }

    def __repr__(self) -> str:
        return (
            f"<LiveEngine {len(self)} views over "
            f"{self.db.tuple_count()} tuples>"
        )
