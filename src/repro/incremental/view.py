"""Materialized views: standing query answers maintained by deltas.

A :class:`MaterializedView` registers one conjunctive query against one
database snapshot, evaluates it through the engine's compiled physical
plan (:class:`repro.engine.plan.QueryPlan` — cached decomposition, per-bag
join orders, rooted join tree), and thereafter keeps the answer relation
fresh under :class:`~repro.incremental.delta.Delta` batches without
recomputation.

The maintained state mirrors the batch pipeline node for node:

* each λ atom of a decomposition node becomes an *atom feed* — the
  binding transform of :func:`repro.db.binding.bind_atom` (constants,
  repeated variables) compiled to a per-row filter, plus a counted
  projection onto the χ overlap when the atom carries variables the bag
  drops;
* each join-tree node owns a :class:`~repro.incremental.counting.DeltaJoin`
  over its atom inputs and child slots, maintaining
  ``π_keep(bag ⋈ children)`` exactly as the enumeration pass of
  Yannakakis' algorithm computes it (``keep`` = χ plus the output
  variables contributed by the subtree);
* the root's projection onto the head is one more support counter, whose
  zero crossings are the :class:`AnswerDelta` handed to subscribers.

Initial evaluation is not a special case: it is the delta "insert every
base row" applied to empty state, so the property tests exercise the
same code path a cold load does.  The view keeps a shadow copy of its
base relations, making any incoming batch *effective* (idempotent
re-inserts and deletes of absent rows are dropped) before propagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from .._errors import SchemaError
from ..core.atoms import Atom, Constant, Variable
from ..core.query import ConjunctiveQuery
from ..db.database import Database
from ..db.relation import Relation
from ..db.semiring import INT_RING
from ..db.stats import EvalStats
from ..engine.plan import QueryPlan
from ..obs import current_tracer, get_registry
from .counting import DeltaJoin, JoinInput, Row, SignedRows, SupportCounter
from .delta import Delta


@dataclass(frozen=True)
class AnswerDelta:
    """The set-level change of a view's answer relation after one batch."""

    attributes: tuple[str, ...]
    inserted: frozenset[Row]
    deleted: frozenset[Row]

    def __bool__(self) -> bool:
        return bool(self.inserted or self.deleted)

    def __len__(self) -> int:
        return len(self.inserted) + len(self.deleted)

    @staticmethod
    def empty(attributes: tuple[str, ...]) -> "AnswerDelta":
        return AnswerDelta(attributes, frozenset(), frozenset())

    def __str__(self) -> str:
        def render(rows: frozenset[Row], sign: str) -> list[str]:
            return [
                f"{sign}({', '.join(map(str, r))})"
                for r in sorted(rows, key=repr)
            ]

        parts = render(self.inserted, "+") + render(self.deleted, "-")
        header = ", ".join(self.attributes)
        return f"Δans({header})[" + " ".join(parts) + "]"


class _AtomFeed:
    """Compiled transform from one base relation's delta to one join
    input's delta: binding filter, projection onto the χ overlap, and —
    when the projection drops variables — a support counter so dropped-
    variable multiplicity is tracked exactly."""

    __slots__ = (
        "predicate",
        "arity",
        "input_index",
        "_const_checks",
        "_eq_checks",
        "_out_positions",
        "_projector",
    )

    def __init__(self, atom: Atom, attributes: tuple[str, ...], input_index: int):
        self.predicate = atom.predicate
        self.arity = atom.arity
        self.input_index = input_index
        first_position: dict[Variable, int] = {}
        const_checks: list[tuple[int, object]] = []
        eq_checks: list[tuple[int, int]] = []
        for i, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                const_checks.append((i, term.value))
            elif term in first_position:
                eq_checks.append((i, first_position[term]))
            else:
                first_position[term] = i
        self._const_checks = tuple(const_checks)
        self._eq_checks = tuple(eq_checks)
        self._out_positions = tuple(
            first_position[Variable(name)] for name in attributes
        )
        # The bound-row -> output-row map is injective exactly when every
        # distinct variable survives the projection; otherwise dropped
        # variables make several base rows support one output row.
        injective = len(attributes) == len(first_position)
        self._projector = None if injective else SupportCounter()

    def feed(self, rows: Mapping[Row, int]) -> SignedRows:
        signed: SignedRows = {}
        ring = INT_RING
        zero = ring.zero
        for row, sign in rows.items():
            if any(row[i] != value for i, value in self._const_checks):
                continue
            if any(row[i] != row[f] for i, f in self._eq_checks):
                continue
            out = tuple(row[p] for p in self._out_positions)
            signed[out] = ring.plus(signed.get(out, zero), sign)
        if self._projector is None:
            return {row: sign for row, sign in signed.items() if sign != zero}
        return self._projector.apply(signed)


class _ViewNode:
    """One join-tree node's maintained state."""

    __slots__ = ("bag", "join", "feeds", "child_slot")

    def __init__(
        self,
        bag: Atom,
        join: DeltaJoin,
        feeds: tuple[_AtomFeed, ...],
        child_slot: dict[Atom, int],
    ):
        self.bag = bag
        self.join = join
        self.feeds = feeds
        self.child_slot = child_slot


class MaterializedView:
    """One standing query whose answers stay fresh under update batches.

    Parameters
    ----------
    query:
        The registered conjunctive query (its head fixes the answer
        schema; Boolean queries yield the 0-ary relation).
    db:
        The database snapshot the view starts from.  The view copies the
        base rows it depends on and never reads *db* again — callers feed
        subsequent changes through :meth:`apply`.
    plan:
        The compiled physical plan, typically obtained through
        :meth:`repro.engine.Engine.plan` so structurally identical views
        share one cached decomposition.
    track_base:
        With the default ``True`` the view keeps a shadow copy of its
        base relations and normalises every incoming batch against it,
        so raw streams (idempotent re-inserts, deletes of absent rows)
        are safe.  :class:`~repro.incremental.live.LiveEngine` passes
        ``False``: it feeds deltas that :meth:`Database.apply` already
        made effective, so the per-view shadow (O(database) memory per
        view) and the second normalisation pass are skipped.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        db: Database,
        plan: QueryPlan,
        track_base: bool = True,
    ):
        self.query = query
        self.plan = plan
        self.output = plan.output
        self.predicates = frozenset(query.predicates)
        self._arities = dict(query.arities)
        tree = plan.join_tree
        self._order = list(tree.post_order())
        self._parent = tree.parent_of
        self._root = tree.root

        plans_by_bag = {np.bag: np for np in plan.node_plans}
        out_set = set(plan.output)
        below: dict[Atom, set[str]] = {}
        keeps: dict[Atom, tuple[str, ...]] = {}
        for bag in self._order:
            chi = set(plans_by_bag[bag].chi_names)
            attrs = set(chi)
            for child in tree.children(bag):
                attrs |= below[child]
            below[bag] = attrs
            keeps[bag] = tuple(sorted(chi | (attrs & out_set)))

        self._nodes: dict[Atom, _ViewNode] = {}
        self._unit_bags: set[Atom] = set()
        for bag in self._order:
            np = plans_by_bag[bag]
            chi_set = set(np.chi_names)
            inputs: list[JoinInput] = []
            feeds: list[_AtomFeed] = []
            for atom in np.join_order:
                attrs = tuple(
                    sorted(v.name for v in atom.variables if v.name in chi_set)
                )
                feeds.append(_AtomFeed(atom, attrs, len(inputs)))
                inputs.append(JoinInput(attrs))
            child_slot: dict[Atom, int] = {}
            for child in tree.children(bag):
                child_slot[child] = len(inputs)
                inputs.append(JoinInput(keeps[child]))
            if not inputs:
                # A node with no contributing atoms and no children (an
                # empty-χ leaf) joins as the 0-ary unit relation; its one
                # row is seeded during the initial propagation.
                inputs.append(JoinInput(()))
                self._unit_bags.add(bag)
            self._nodes[bag] = _ViewNode(
                bag, DeltaJoin(inputs, keeps[bag]), tuple(feeds), child_slot
            )

        self._project_root = tuple(
            keeps[self._root].index(a) for a in plan.output
        )
        self._answers = SupportCounter()
        self._subscribers: list[Callable[[AnswerDelta], None]] = []
        self.stats = EvalStats()
        self.last_batch: EvalStats | None = None
        self.batches = 0

        initial_rows = {
            p: db.rows(p) if db.has_predicate(p) else frozenset()
            for p in self.predicates
        }
        self._base: dict[str, set[Row]] | None = (
            {p: set(rows) for p, rows in initial_rows.items()}
            if track_base
            else None
        )
        initial = {
            p: {row: INT_RING.one for row in rows}
            for p, rows in initial_rows.items()
            if rows
        }
        self._propagate(initial, seed_units=True)

    # -- views ------------------------------------------------------------
    def answers(self) -> Relation:
        """The current answer relation (schema = the query head)."""
        return Relation.trusted(self.output, self._answers.rows(), "ans")

    @property
    def boolean(self) -> bool:
        """The Boolean reading: is the answer relation non-empty?"""
        return bool(self._answers.counts)

    def __len__(self) -> int:
        return len(self._answers)

    def subscribe(
        self, callback: Callable[[AnswerDelta], None]
    ) -> Callable[[], None]:
        """Register *callback* for non-empty answer deltas; returns an
        unsubscribe function."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

        return unsubscribe

    # -- maintenance ------------------------------------------------------
    def apply(self, delta: Delta, notify: bool = True) -> AnswerDelta:
        """Fold one update batch into the view; return the answer delta.

        With a base shadow (``track_base=True``) the batch is first
        normalised against it, so re-inserting a present row or deleting
        an absent one is a no-op — callers may pass raw streams.  Without
        one, the caller guarantees effectiveness (as ``LiveEngine`` does
        via ``Database.apply``).

        With *notify*, subscribers run after the state update; a raising
        callback can therefore never leave the view half-applied (see
        :meth:`notify_subscribers`).
        """
        # Validate the whole batch before touching any state: a
        # partially folded batch would desynchronise the view forever.
        for predicate, rows in delta.changes.items():
            arity = self._arities.get(predicate)
            if arity is None:
                continue
            for row in rows:
                if len(row) != arity:
                    raise SchemaError(
                        f"delta row {predicate}{row!r} does not match the "
                        f"view's arity {arity} for {predicate!r}"
                    )
                break  # Delta construction enforced one arity per predicate
        base: dict[str, dict[Row, int]] = {}
        for predicate, rows in delta.changes.items():
            if predicate not in self._arities:
                continue  # predicate not mentioned by this view
            if self._base is None:
                base[predicate] = dict(rows)
                continue
            shadow = self._base[predicate]
            effective: dict[Row, int] = {}
            inserted, deleted = INT_RING.one, INT_RING.negate(INT_RING.one)
            for row, sign in rows.items():
                if sign > 0:
                    if row not in shadow:
                        shadow.add(row)
                        effective[row] = inserted
                elif row in shadow:
                    shadow.remove(row)
                    effective[row] = deleted
            if effective:
                base[predicate] = effective
        result = self._propagate(base)
        if notify:
            self.notify_subscribers(result)
        return result

    def notify_subscribers(self, result: AnswerDelta) -> None:
        """Deliver a non-empty answer delta to every subscriber.

        Each callback is isolated: all of them run even if one raises,
        and only then is the first exception re-raised — by that point
        the view's own state is already consistent, so a faulty
        subscriber cannot desynchronise maintenance.
        """
        if not result:
            return
        errors: list[BaseException] = []
        for callback in list(self._subscribers):
            try:
                callback(result)
            except BaseException as error:  # noqa: BLE001 - isolation point
                errors.append(error)
        if errors:
            raise errors[0]

    def _propagate(
        self,
        base_rows: Mapping[str, Mapping[Row, int]],
        seed_units: bool = False,
    ) -> AnswerDelta:
        stats = EvalStats()
        touched = 0
        nodes_touched = 0
        root_delta: SignedRows = {}
        pending: dict[Atom, dict[int, SignedRows]] = {}
        batch_span = current_tracer().span(
            "view.apply_batch", view=self.query.name, initial=seed_units
        )
        with batch_span, stats.timed():
            for bag in self._order:
                node = self._nodes[bag]
                deltas = pending.pop(bag, {})
                for feed in node.feeds:
                    rows = base_rows.get(feed.predicate)
                    if rows:
                        fed = feed.feed(rows)
                        if fed:
                            deltas[feed.input_index] = fed
                if seed_units and bag in self._unit_bags:
                    deltas[0] = {(): 1}
                if not deltas:
                    continue
                nodes_touched += 1
                touched += sum(len(d) for d in deltas.values())
                out = node.join.apply(deltas, stats)
                touched += len(out)
                if not out:
                    continue
                if bag == self._root:
                    root_delta = out
                else:
                    parent = self._parent[bag]
                    slot = self._nodes[parent].child_slot[bag]
                    pending.setdefault(parent, {})[slot] = out
            signed: SignedRows = {}
            ring = INT_RING
            for row, weight in root_delta.items():
                projected = tuple(row[p] for p in self._project_root)
                signed[projected] = ring.plus(
                    signed.get(projected, ring.zero), weight
                )
            answer_signed = self._answers.apply(signed)
            if root_delta:
                stats.projections += 1
            batch_span.set(
                touched_rows=touched,
                nodes_touched=nodes_touched,
                answer_changes=len(answer_signed),
            )

        stats.notes["touched_rows"] = float(touched)
        stats.notes["nodes_touched"] = float(nodes_touched)
        stats.notes["batches"] = 1.0
        self.last_batch = stats
        self.stats.merge(stats)
        self.batches += 1

        registry = get_registry()
        registry.counter("view.batches").inc()
        registry.counter("view.touched_rows").inc(touched)
        registry.histogram("view.batch_seconds").observe(stats.wall_time)

        return AnswerDelta(
            self.output,
            frozenset(r for r, s in answer_signed.items() if s > 0),
            frozenset(r for r, s in answer_signed.items() if s < 0),
        )

    def __repr__(self) -> str:
        return (
            f"<MaterializedView {self.query.name}: {len(self)} answers, "
            f"{self.batches} batches>"
        )
