"""Incremental view maintenance: live query answers under update streams.

The one-shot pipeline (decompose → full reducer → enumerate) answers a
query for the database *as it is now*.  This package keeps registered
queries' answers fresh as the database changes, by counting-based delta
propagation along the same join tree that makes batch evaluation
polynomial:

* :mod:`~repro.incremental.delta` — signed, normalised update batches;
* :mod:`~repro.incremental.counting` — support counters and the
  sequential delta-join rule (the counting algorithm);
* :mod:`~repro.incremental.view` — :class:`MaterializedView`, per-node
  maintained state plus answer-change subscriptions;
* :mod:`~repro.incremental.live` — :class:`LiveEngine`, the thread-safe
  facade owning the database and the registered views, planning through
  the engine's fingerprint-keyed plan cache.
"""

from .counting import DeltaJoin, JoinInput, SupportCounter
from .delta import Delta
from .live import LiveEngine, ViewHandle
from .view import AnswerDelta, MaterializedView

__all__ = [
    "AnswerDelta",
    "Delta",
    "DeltaJoin",
    "JoinInput",
    "LiveEngine",
    "MaterializedView",
    "SupportCounter",
    "ViewHandle",
]
