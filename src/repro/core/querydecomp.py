"""Query decompositions and query-width (paper §3.1, Definition 3.1).

A query decomposition labels each tree vertex with a set of *atoms and/or
variables* such that

1. every atom occurs in at least one label;
2. each atom's occurrence set induces a connected subtree;
3. each variable's occurrence set — counting both explicit occurrences and
   occurrences inside label atoms — induces a connected subtree
   (the Connectedness Condition).

The width is the maximum label cardinality; ``qw(Q)`` is the minimum width
over all query decompositions.  A decomposition is *pure* when labels
contain only atoms; Proposition 3.3 (proved in [19]) shows pure
decompositions suffice: ``qw(Q) ≤ k`` iff a pure ≤ k-width decomposition
exists.  The exact search in :mod:`repro.core.qwsearch` therefore works
with pure decompositions directly.

Theorem 6.1(a): every pure width-k query decomposition is a width-k
hypertree decomposition with ``χ(p) = var(λ(p))`` — see
:meth:`QueryDecomposition.to_hypertree`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from .._errors import DecompositionError
from ..graphs import trees
from .atoms import Atom, Variable
from .hypertree import HTNode, HypertreeDecomposition
from .query import ConjunctiveQuery

LabelElement = Union[Atom, Variable]


class QDNode:
    """One vertex of a query decomposition: a mixed atom/variable label."""

    __slots__ = ("label", "children")

    def __init__(
        self,
        label: Iterable[LabelElement],
        children: Iterable["QDNode"] = (),
    ):
        self.label: frozenset[LabelElement] = frozenset(label)
        self.children: tuple[QDNode, ...] = tuple(children)

    @property
    def label_atoms(self) -> frozenset[Atom]:
        return frozenset(e for e in self.label if isinstance(e, Atom))

    @property
    def label_variables(self) -> frozenset[Variable]:
        return frozenset(e for e in self.label if isinstance(e, Variable))

    @property
    def variables(self) -> frozenset[Variable]:
        """``var(p)``: explicit label variables plus variables of label
        atoms (used by Condition 3 and Proposition 3.6)."""
        result: set[Variable] = set(self.label_variables)
        for a in self.label_atoms:
            result.update(a.variables)
        return frozenset(result)

    def copy_tree(self) -> "QDNode":
        return QDNode(self.label, (c.copy_tree() for c in self.children))

    def render_label(self) -> str:
        parts = sorted(str(e) for e in self.label)
        return "{" + ", ".join(parts) + "}"

    def __repr__(self) -> str:
        return f"<QDNode {self.render_label()} with {len(self.children)} children>"


class QueryDecomposition:
    """A query decomposition ``⟨T, λ⟩`` of a conjunctive query (Def. 3.1)."""

    def __init__(self, query: ConjunctiveQuery, root: QDNode):
        self.query = query
        self.root = root

    @staticmethod
    def _children(n: QDNode) -> tuple[QDNode, ...]:
        return n.children

    @property
    def nodes(self) -> list[QDNode]:
        return list(trees.preorder(self.root, self._children))

    def __len__(self) -> int:
        return trees.count_nodes(self.root, self._children)

    def post_order(self) -> Iterator[QDNode]:
        return trees.postorder(self.root, self._children)

    @property
    def width(self) -> int:
        """``max_p |l(p)|`` over atoms *and* explicit variables."""
        return max(len(n.label) for n in self.nodes)

    @property
    def is_pure(self) -> bool:
        """True iff every label contains only atoms (§3.1)."""
        return all(not n.label_variables for n in self.nodes)

    # -- Definition 3.1 ----------------------------------------------------
    def validate(self) -> list[str]:
        """Return the list of Definition 3.1 violations (empty = valid)."""
        violations: list[str] = []
        all_nodes = self.nodes
        query_atoms = set(self.query.atoms)
        query_vars = self.query.variables

        for n in all_nodes:
            foreign_atoms = n.label_atoms - query_atoms
            if foreign_atoms:
                violations.append(f"label of {n!r} has non-query atoms")
            if not n.label_variables <= query_vars:
                violations.append(f"label of {n!r} has non-query variables")

        # Condition 1: each atom occurs in some label.
        for a in self.query.atoms:
            if not any(a in n.label for n in all_nodes):
                violations.append(f"condition 1: atom {a} occurs in no label")

        # Condition 2: each atom's occurrences are connected.
        for a in self.query.atoms:
            marked = [n for n in all_nodes if a in n.label]
            if not trees.induces_connected_subtree(
                self.root, self._children, marked
            ):
                violations.append(
                    f"condition 2: atom {a} has disconnected occurrences"
                )

        # Condition 3: each variable's (explicit or in-atom) occurrences
        # are connected.
        for v in sorted(query_vars, key=lambda x: x.name):
            marked = [n for n in all_nodes if v in n.variables]
            if not trees.induces_connected_subtree(
                self.root, self._children, marked
            ):
                violations.append(
                    f"condition 3: variable {v} has disconnected occurrences"
                )
        return violations

    @property
    def is_valid(self) -> bool:
        return not self.validate()

    # -- Proposition 3.3 ----------------------------------------------------
    def purify(self) -> "QueryDecomposition":
        """Replace explicit variables by covering atoms (Proposition 3.3).

        Each explicit label variable ``Y`` is replaced by one fixed atom
        ``A_Y`` containing ``Y`` (label cardinality — and hence width —
        never grows).  This is the [19] construction for the common case;
        the result is re-validated and a :class:`DecompositionError` is
        raised if the replacement broke a connectedness condition (tests
        cover decompositions where the construction applies, including the
        paper's Fig. 2).
        """
        chosen: dict[Variable, Atom] = {}
        for v in self.query.variables:
            for a in self.query.atoms:
                if v in a.variables:
                    chosen[v] = a
                    break

        def rebuild(n: QDNode) -> QDNode:
            new_label: set[LabelElement] = set(n.label_atoms)
            for v in n.label_variables:
                if v not in chosen:
                    raise DecompositionError(
                        f"variable {v} occurs in no atom; cannot purify"
                    )
                new_label.add(chosen[v])
            return QDNode(new_label, (rebuild(c) for c in n.children))

        result = QueryDecomposition(self.query, rebuild(self.root))
        problems = result.validate()
        if problems:
            raise DecompositionError(
                "purification produced an invalid decomposition: "
                + "; ".join(problems)
            )
        return result

    # -- Theorem 6.1(a) ------------------------------------------------------
    def to_hypertree(self) -> HypertreeDecomposition:
        """View a *pure* query decomposition as a hypertree decomposition
        with ``χ(p) = var(λ(p))`` (Theorem 6.1(a))."""
        if not self.is_pure:
            raise DecompositionError(
                "only pure query decompositions convert directly; "
                "call purify() first"
            )

        def rebuild(n: QDNode) -> HTNode:
            atoms = n.label_atoms
            return HTNode(
                n.variables, atoms, (rebuild(c) for c in n.children)
            )

        return HypertreeDecomposition(self.query, rebuild(self.root))

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        """ASCII tree in the style of the paper's Figs. 2, 4, 5, 11."""
        return trees.render_tree(self.root, self._children, QDNode.render_label)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return (
            f"<QueryDecomposition of {self.query.name}: width {self.width}, "
            f"{len(self)} nodes>"
        )
