"""Hypergraphs and the query hypergraph ``H(Q)`` (paper §2.1, Appendix A).

The hypergraph of a query has the query's variables as vertices and one
hyperedge ``var(A)`` per body atom ``A``.  Appendix A defines hypertree
decompositions directly on hypergraphs; Theorem A.3 shows the two settings
coincide through the *canonical query* (see :mod:`repro.core.canonical`).

Edges are *named*: two atoms with the same variable set give two distinct
edges with different names, mirroring the paper's treatment where an edge of
``H(Q)`` may correspond to several atoms (proof of Theorem A.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Hashable, Iterable, Iterator, Mapping

from .._errors import SchemaError
from .components import vertex_components


@dataclass(frozen=True)
class Hypergraph:
    """An immutable hypergraph with named edges.

    Attributes
    ----------
    edge_map:
        Mapping from edge name to the frozenset of vertices of that edge.
    extra_vertices:
        Vertices not covered by any edge (allowed, though query hypergraphs
        never produce them).
    """

    edge_map: tuple[tuple[str, frozenset[Hashable]], ...]
    extra_vertices: frozenset[Hashable] = frozenset()

    def __post_init__(self) -> None:
        names = [name for name, _ in self.edge_map]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate edge names in hypergraph")

    # -- constructors ----------------------------------------------------
    @staticmethod
    def from_edges(
        edges: Mapping[str, Iterable[Hashable]] | Iterable[Iterable[Hashable]],
        extra_vertices: Iterable[Hashable] = (),
    ) -> "Hypergraph":
        """Build a hypergraph from named or anonymous edges.

        Anonymous edges are auto-named ``e0, e1, ...`` in iteration order.
        """
        pairs: list[tuple[str, frozenset[Hashable]]] = []
        if isinstance(edges, Mapping):
            for name, vertices in edges.items():
                pairs.append((str(name), frozenset(vertices)))
        else:
            for index, vertices in enumerate(edges):
                pairs.append((f"e{index}", frozenset(vertices)))
        names = [name for name, _ in pairs]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate edge names in hypergraph")
        return Hypergraph(tuple(pairs), frozenset(extra_vertices))

    @staticmethod
    def of_query(query) -> "Hypergraph":
        """``H(Q)``: one edge per body atom, named by atom position.

        Edge names embed the atom's rendering for readability:
        ``"0:r(X,Y)"``.
        """
        pairs = tuple(
            (f"{index}:{atom}", atom.variables)
            for index, atom in enumerate(query.atoms)
        )
        return Hypergraph(pairs)

    # -- views -----------------------------------------------------------
    @cached_property
    def vertices(self) -> frozenset[Hashable]:
        """``var(H)``: all vertices of the hypergraph."""
        result: set[Hashable] = set(self.extra_vertices)
        for _, edge in self.edge_map:
            result.update(edge)
        return frozenset(result)

    @cached_property
    def edges(self) -> tuple[frozenset[Hashable], ...]:
        """``edges(H)``: the vertex sets, in declaration order."""
        return tuple(edge for _, edge in self.edge_map)

    @cached_property
    def edge_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.edge_map)

    def edge(self, name: str) -> frozenset[Hashable]:
        for edge_name, edge in self.edge_map:
            if edge_name == name:
                return edge
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.edge_map)

    def __iter__(self) -> Iterator[frozenset[Hashable]]:
        return iter(self.edges)

    def edges_with_vertex(self, vertex: Hashable) -> list[frozenset[Hashable]]:
        return [edge for edge in self.edges if vertex in edge]

    # -- connectivity ----------------------------------------------------
    def v_components(
        self, separator: Iterable[Hashable]
    ) -> list[frozenset[Hashable]]:
        """The [separator]-components of the hypergraph (Appendix A)."""
        return vertex_components(self.edges, frozenset(separator))

    @cached_property
    def connected_components(self) -> list[frozenset[Hashable]]:
        """Connected components of the hypergraph ([∅]-components plus
        isolated extra vertices)."""
        comps = self.v_components(frozenset())
        comps.extend(frozenset({v}) for v in sorted(self.extra_vertices, key=repr))
        return comps

    @property
    def is_connected(self) -> bool:
        return len(self.connected_components) <= 1

    # -- derived graphs ----------------------------------------------------
    def primal_edges(self) -> set[frozenset[Hashable]]:
        """Edges of the primal (Gaifman) graph: pairs co-occurring in a
        hyperedge (paper §6)."""
        result: set[frozenset[Hashable]] = set()
        for edge in self.edges:
            members = sorted(edge, key=repr)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    result.add(frozenset({u, v}))
        return result

    def restrict(self, vertices: Iterable[Hashable]) -> "Hypergraph":
        """The subhypergraph induced by *vertices* (empty edges dropped)."""
        keep = frozenset(vertices)
        pairs = tuple(
            (name, edge & keep) for name, edge in self.edge_map if edge & keep
        )
        return Hypergraph(pairs, self.extra_vertices & keep)

    def __str__(self) -> str:
        parts = []
        for name, edge in self.edge_map:
            vs = ",".join(sorted(str(v) for v in edge))
            parts.append(f"{name}={{{vs}}}")
        return f"Hypergraph({'; '.join(parts)})"


def query_hypergraph(query) -> Hypergraph:
    """Convenience alias for :meth:`Hypergraph.of_query`."""
    return Hypergraph.of_query(query)
