"""Conjunctive queries in rule form (paper §2.1).

A conjunctive query is a rule ``ans(u) :- r1(u1), ..., rn(un)``.  A *Boolean*
conjunctive query (BCQ) has a variable-free head; per the paper we allow the
head to be omitted entirely when specifying a BCQ.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

from .._errors import SchemaError
from .atoms import Atom, Constant, Term, Variable, variables_of


@dataclass(frozen=True)
class ConjunctiveQuery:
    """An immutable conjunctive query ``ans(u) :- body``.

    Attributes
    ----------
    body:
        The tuple of body atoms, ``atoms(Q)`` in the paper.  Duplicate
        atoms are collapsed (the paper treats the body as a set of atoms).
    head_terms:
        The argument list ``u`` of the head atom.  Empty for Boolean
        queries.  Every head variable must occur in the body (safety).
    name:
        Optional human-readable name used in rendering and experiment
        tables (e.g. ``"Q5"``).
    """

    body: tuple[Atom, ...]
    head_terms: tuple[Term, ...] = ()
    name: str = "Q"

    def __post_init__(self) -> None:
        # Collapse duplicates while preserving first-occurrence order, so
        # that `atoms(Q)` behaves as a set but rendering stays stable.
        seen: dict[Atom, None] = {}
        for a in self.body:
            seen.setdefault(a, None)
        object.__setattr__(self, "body", tuple(seen))
        missing = self.head_variables - self.variables
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise SchemaError(
                f"unsafe query {self.name}: head variables {{{names}}} "
                "do not occur in the body"
            )

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    @property
    def atoms(self) -> tuple[Atom, ...]:
        """``atoms(Q)``: the body atoms, in stable order."""
        return self.body

    @cached_property
    def variables(self) -> frozenset[Variable]:
        """``var(Q)``: all variables occurring in the body."""
        return variables_of(self.body)

    @cached_property
    def head_variables(self) -> frozenset[Variable]:
        """The variables occurring in the head (empty for BCQs)."""
        return frozenset(t for t in self.head_terms if isinstance(t, Variable))

    @property
    def is_boolean(self) -> bool:
        """True iff the head contains no variables (paper §2.1)."""
        return not self.head_variables

    @cached_property
    def predicates(self) -> frozenset[str]:
        """The relation names referenced by the body."""
        return frozenset(a.predicate for a in self.body)

    @cached_property
    def arities(self) -> dict[str, int]:
        """Predicate name -> arity.  Raises if a predicate is used with
        inconsistent arities (the database schema would be ambiguous)."""
        result: dict[str, int] = {}
        for a in self.body:
            prev = result.setdefault(a.predicate, a.arity)
            if prev != a.arity:
                raise SchemaError(
                    f"predicate {a.predicate!r} used with arities "
                    f"{prev} and {a.arity} in query {self.name}"
                )
        return result

    def atoms_with_variable(self, v: Variable) -> tuple[Atom, ...]:
        """All body atoms in which variable *v* occurs."""
        return tuple(a for a in self.body if v in a.variables)

    # ------------------------------------------------------------------
    # Constructors / transforms
    # ------------------------------------------------------------------
    @staticmethod
    def boolean(atoms: Iterable[Atom], name: str = "Q") -> "ConjunctiveQuery":
        """Build a Boolean conjunctive query from body atoms."""
        return ConjunctiveQuery(tuple(atoms), (), name)

    def with_head(self, terms: Sequence[Term]) -> "ConjunctiveQuery":
        """Return a copy of this query with the given head argument list."""
        return ConjunctiveQuery(self.body, tuple(terms), self.name)

    def as_boolean(self) -> "ConjunctiveQuery":
        """Drop the head: the Boolean version of this query."""
        if self.is_boolean and not self.head_terms:
            return self
        return ConjunctiveQuery(self.body, (), self.name)

    def renamed(self, mapping: dict[Variable, Term]) -> "ConjunctiveQuery":
        """Apply a substitution to body and head (``Qθ``)."""
        new_body = tuple(a.rename(mapping) for a in self.body)
        new_head = tuple(
            mapping.get(t, t) if isinstance(t, Variable) else t
            for t in self.head_terms
        )
        return ConjunctiveQuery(new_body, new_head, self.name)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        head_args = ", ".join(str(t) for t in self.head_terms)
        return f"ans({head_args}) :- {body}."

    def __repr__(self) -> str:
        return f"<ConjunctiveQuery {self.name}: {self}>"

    def __len__(self) -> int:
        return len(self.body)

    def __hash__(self) -> int:
        return hash((self.body, self.head_terms))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self.body == other.body and self.head_terms == other.head_terms


# ----------------------------------------------------------------------
# Constant elimination
# ----------------------------------------------------------------------
def eliminate_constants(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Replace every constant occurrence by a fresh variable.

    The paper's decomposition notions (§3.1 note) ignore constants: for the
    *structural* analysis each constant position behaves like a fresh
    variable occurring nowhere else.  This helper makes that normalisation
    explicit so that the decomposition algorithms can assume constant-free
    bodies.  (Evaluation in :mod:`repro.db` keeps constants and handles them
    via selections instead.)
    """
    counter = 0
    new_body: list[Atom] = []
    for a in query.body:
        new_terms: list[Term] = []
        for t in a.terms:
            if isinstance(t, Constant):
                counter += 1
                new_terms.append(Variable(f"_c{counter}"))
            else:
                new_terms.append(t)
        new_body.append(Atom(a.predicate, tuple(new_terms)))
    return ConjunctiveQuery(tuple(new_body), (), query.name)
