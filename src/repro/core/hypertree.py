"""Hypertree decompositions and hypertree-width (paper §4.1, §5.1).

A *hypertree* for a query ``Q`` is a triple ``⟨T, χ, λ⟩`` of a rooted tree
and two labelling functions: ``χ(p) ⊆ var(Q)`` selects the variables a node
is responsible for, and ``λ(p) ⊆ atoms(Q)`` is a set of atoms *covering*
those variables.  A hypertree is a **hypertree decomposition** (Definition
4.1) when:

1. every atom ``A`` has a node with ``var(A) ⊆ χ(p)``            (coverage);
2. for every variable ``Y``, ``{p : Y ∈ χ(p)}`` is connected     (connectedness);
3. ``χ(p) ⊆ var(λ(p))`` for every node                           (χ covered by λ);
4. ``var(λ(p)) ∩ χ(T_p) ⊆ χ(p)`` for every node                  (the "descent"
   condition — variables of λ(p) that reappear below must be in χ(p)).

The *width* is ``max_p |λ(p)|``; the hypertree-width ``hw(Q)`` is the
minimum width over all hypertree decompositions (computed by
:mod:`repro.core.detkdecomp`).

This module provides the decomposition object with validation, the
*complete decomposition* transformation (Definition 4.2 / Lemma 4.4), the
``treecomp`` labelling and the normal-form condition checks of Definition
5.1 (the normal-form *transformation* of Theorem 5.4 lives in
:mod:`repro.core.normalform`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from .._errors import DecompositionError
from ..graphs import trees
from .atoms import Atom, Variable, variables_of
from .components import vertex_components
from .query import ConjunctiveQuery


class HTNode:
    """One vertex of a hypertree: a (χ, λ) pair plus children.

    Nodes compare by identity (two nodes may carry equal labels), which is
    what the tree-connectivity checks require.
    """

    __slots__ = ("chi", "lam", "children")

    def __init__(
        self,
        chi: Iterable[Variable],
        lam: Iterable[Atom],
        children: Iterable["HTNode"] = (),
    ):
        self.chi: frozenset[Variable] = frozenset(chi)
        self.lam: frozenset[Atom] = frozenset(lam)
        self.children: tuple[HTNode, ...] = tuple(children)

    @property
    def lambda_variables(self) -> frozenset[Variable]:
        """``var(λ(p))``."""
        return variables_of(self.lam)

    def copy_tree(self) -> "HTNode":
        """Deep copy of the subtree rooted here (labels are shared;
        they are immutable)."""
        return HTNode(self.chi, self.lam, (c.copy_tree() for c in self.children))

    def label(self) -> str:
        chi = "{" + ", ".join(sorted(v.name for v in self.chi)) + "}"
        lam = "{" + ", ".join(sorted(str(a) for a in self.lam)) + "}"
        return f"χ={chi}  λ={lam}"

    def atom_label(self) -> str:
        """The Fig.-7 *atom representation*: λ atoms with variables outside
        χ replaced by the anonymous variable ``_``."""
        parts = []
        for a in sorted(self.lam, key=str):
            rendered_terms = []
            for t in a.terms:
                if isinstance(t, Variable) and t not in self.chi:
                    rendered_terms.append("_")
                else:
                    rendered_terms.append(str(t))
            parts.append(f"{a.predicate}({', '.join(rendered_terms)})")
        return ", ".join(parts)

    def __repr__(self) -> str:
        return f"<HTNode {self.label()} with {len(self.children)} children>"


def node(
    chi: Iterable[Variable | str],
    lam: Iterable[Atom],
    *children: "HTNode",
) -> HTNode:
    """Convenience builder: strings in *chi* become variables.

    Lets tests and examples transcribe the paper's figures directly::

        node({"S", "X", "C"}, {a_atom, b_atom}, child1, child2)
    """
    chi_vars = frozenset(
        Variable(v) if isinstance(v, str) else v for v in chi
    )
    return HTNode(chi_vars, lam, children)


class HypertreeDecomposition:
    """A hypertree ``⟨T, χ, λ⟩`` for a conjunctive query (Definition 4.1).

    The constructor does *not* check validity (tests deliberately build
    invalid trees); call :meth:`validate` to obtain the list of violated
    conditions, or use :attr:`is_valid`.
    """

    def __init__(self, query: ConjunctiveQuery, root: HTNode):
        self.query = query
        self.root = root

    # -- tree plumbing ---------------------------------------------------
    @staticmethod
    def _children(n: HTNode) -> tuple[HTNode, ...]:
        return n.children

    @property
    def nodes(self) -> list[HTNode]:
        return list(trees.preorder(self.root, self._children))

    def parent_of(self) -> dict[HTNode, HTNode]:
        return trees.parent_map(self.root, self._children)

    def post_order(self) -> Iterator[HTNode]:
        return trees.postorder(self.root, self._children)

    def __len__(self) -> int:
        return trees.count_nodes(self.root, self._children)

    # -- measures ----------------------------------------------------------
    @property
    def width(self) -> int:
        """``max_p |λ(p)|`` — the width of the decomposition."""
        return max(len(n.lam) for n in self.nodes)

    def chi_subtree(self, n: HTNode) -> frozenset[Variable]:
        """``χ(T_p)``: all variables appearing in χ labels of the subtree."""
        result: set[Variable] = set()
        for d in trees.preorder(n, self._children):
            result.update(d.chi)
        return frozenset(result)

    # -- Definition 4.1 --------------------------------------------------
    def validate(self) -> list[str]:
        """Return violations of Definition 4.1 (empty list = valid)."""
        violations: list[str] = []
        all_nodes = self.nodes
        query_vars = self.query.variables
        query_atoms = set(self.query.atoms)

        for n in all_nodes:
            if not n.chi <= query_vars:
                violations.append(f"χ of {n!r} contains non-query variables")
            if not n.lam <= query_atoms:
                violations.append(f"λ of {n!r} contains non-query atoms")
            if not n.lam:
                violations.append(f"node {n!r} has an empty λ label")

        # Condition 1: every atom is covered by some χ.
        for a in self.query.atoms:
            if not any(a.variables <= n.chi for n in all_nodes):
                violations.append(f"condition 1: atom {a} not covered by any χ")

        # Condition 2: each variable's χ-occurrences form a connected subtree.
        for v in sorted(query_vars, key=lambda x: x.name):
            marked = [n for n in all_nodes if v in n.chi]
            if not trees.induces_connected_subtree(
                self.root, self._children, marked
            ):
                violations.append(
                    f"condition 2: variable {v} has disconnected χ-occurrences"
                )

        # Condition 3: χ(p) ⊆ var(λ(p)).
        for n in all_nodes:
            uncovered = n.chi - n.lambda_variables
            if uncovered:
                names = ", ".join(sorted(v.name for v in uncovered))
                violations.append(
                    f"condition 3: χ variables {{{names}}} of {n!r} "
                    "not covered by λ"
                )

        # Condition 4: var(λ(p)) ∩ χ(T_p) ⊆ χ(p).
        for n in all_nodes:
            leaked = (n.lambda_variables & self.chi_subtree(n)) - n.chi
            if leaked:
                names = ", ".join(sorted(v.name for v in leaked))
                violations.append(
                    f"condition 4: λ variables {{{names}}} of {n!r} "
                    "reappear below without being in χ"
                )
        return violations

    @property
    def is_valid(self) -> bool:
        return not self.validate()

    # -- Definition 4.2 / Lemma 4.4 ---------------------------------------
    @property
    def is_complete(self) -> bool:
        """True iff every atom ``A`` has a node with ``var(A) ⊆ χ(p)`` *and*
        ``A ∈ λ(p)`` (Definition 4.2)."""
        all_nodes = self.nodes
        return all(
            any(a.variables <= n.chi and a in n.lam for n in all_nodes)
            for a in self.query.atoms
        )

    def complete(self) -> "HypertreeDecomposition":
        """The Lemma 4.4 completion: for each atom lacking a witnessing
        node, attach a fresh child ``⟨χ=var(A), λ={A}⟩`` below any node
        whose χ covers ``var(A)``.

        Width is preserved (new nodes have ``|λ| = 1``) and the result size
        is ``O(‖Q‖ + ‖HD‖)``.
        """
        copied = self.root.copy_tree()
        result = HypertreeDecomposition(self.query, copied)
        all_nodes = result.nodes
        for a in self.query.atoms:
            if any(a.variables <= n.chi and a in n.lam for n in all_nodes):
                continue
            host = next(
                (n for n in all_nodes if a.variables <= n.chi), None
            )
            if host is None:
                raise DecompositionError(
                    f"cannot complete: atom {a} covered by no χ "
                    "(the decomposition violates condition 1)"
                )
            fresh = HTNode(a.variables, {a})
            host.children = host.children + (fresh,)
            all_nodes.append(fresh)
        return result

    # -- §5.1: treecomp and normal form ------------------------------------
    def treecomp(self) -> dict[HTNode, frozenset[Variable]]:
        """The ``treecomp`` labelling of §5.1 for NF decompositions.

        ``treecomp(root) = var(Q)``; for a child ``s`` of ``r``,
        ``treecomp(s)`` is the unique [r]-component ``C`` with
        ``χ(T_s) = C ∪ (χ(s) ∩ χ(r))``.  For decompositions *not* in normal
        form the defining component may not exist; such nodes are mapped to
        the best-effort value ``χ(T_s) − χ(r)`` (the callers in
        :mod:`repro.core.normalform` only rely on the NF case, which is
        exercised separately by tests).
        """
        edge_sets = [a.variables for a in self.query.atoms]
        labels: dict[HTNode, frozenset[Variable]] = {
            self.root: self.query.variables
        }
        for r in trees.preorder(self.root, self._children):
            comps = vertex_components(edge_sets, r.chi)
            for s in r.children:
                subtree_vars = self.chi_subtree(s)
                match = next(
                    (
                        c
                        for c in comps
                        if subtree_vars == c | (s.chi & r.chi)
                    ),
                    None,
                )
                labels[s] = match if match is not None else subtree_vars - r.chi
        return labels

    def normal_form_violations(self) -> list[str]:
        """Check Definition 5.1 for every (parent r, child s) pair.

        1. there is exactly one [r]-component ``C_r`` with
           ``χ(T_s) = C_r ∪ (χ(s) ∩ χ(r))``;
        2. ``χ(s) ∩ C_r ≠ ∅``;
        3. ``var(λ(s)) ∩ χ(r) ⊆ χ(s)``.
        """
        violations: list[str] = []
        edge_sets = [a.variables for a in self.query.atoms]
        for r in trees.preorder(self.root, self._children):
            comps = vertex_components(edge_sets, r.chi)
            for s in r.children:
                subtree_vars = self.chi_subtree(s)
                matching = [
                    c for c in comps if subtree_vars == c | (s.chi & r.chi)
                ]
                if len(matching) != 1:
                    violations.append(
                        f"NF condition 1: child {s!r} of {r!r} matches "
                        f"{len(matching)} [r]-components"
                    )
                    continue
                component = matching[0]
                if not (s.chi & component):
                    violations.append(
                        f"NF condition 2: χ of child {s!r} misses its "
                        "[r]-component"
                    )
                if not (s.lambda_variables & r.chi) <= s.chi:
                    violations.append(
                        f"NF condition 3: λ variables of {s!r} from χ of "
                        f"parent {r!r} missing in χ"
                    )
        return violations

    @property
    def is_normal_form(self) -> bool:
        return not self.normal_form_violations()

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        """ASCII tree with explicit χ / λ labels (Fig. 6 style)."""
        return trees.render_tree(self.root, self._children, HTNode.label)

    def render_atoms(self) -> str:
        """ASCII tree in the *atom representation* of Fig. 7."""
        return trees.render_tree(self.root, self._children, HTNode.atom_label)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return (
            f"<HypertreeDecomposition of {self.query.name}: width {self.width}, "
            f"{len(self)} nodes>"
        )

    def map_nodes(
        self, fn: Callable[[HTNode], tuple[frozenset[Variable], frozenset[Atom]]]
    ) -> "HypertreeDecomposition":
        """Return a structurally identical decomposition with re-labelled
        nodes (used by the hypergraph↔query bridges of Appendix A)."""

        def rebuild(n: HTNode) -> HTNode:
            chi, lam = fn(n)
            return HTNode(chi, lam, (rebuild(c) for c in n.children))

        return HypertreeDecomposition(self.query, rebuild(self.root))
