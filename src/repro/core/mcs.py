"""Maximum-cardinality-search acyclicity test (Tarjan–Yannakakis [39]).

The paper cites [39] for the linear-time join-tree algorithm (§2.1,
property 2).  This module implements the MCS route as an *independent*
second acyclicity decision procedure, cross-validated against the GYO
reduction of :mod:`repro.core.acyclicity` by property tests:

a hypergraph ``H`` is α-acyclic iff

1. its primal graph ``G`` is **chordal** — witnessed by a maximum
   cardinality search order being a perfect elimination order, and
2. ``H`` is **conformal** — every maximal clique of ``G`` is contained in
   a hyperedge; for chordal ``G`` the maximal cliques all have the form
   ``{v} ∪ (earlier neighbours of v)`` along the (reversed) PEO, so the
   check is per-vertex.

Both checks run in low polynomial time (the [39] versions are linear; we
favour clarity).
"""

from __future__ import annotations

from typing import Hashable

from .query import ConjunctiveQuery


def mcs_order(graph: dict[Hashable, set[Hashable]]) -> list[Hashable]:
    """A maximum-cardinality-search order of *graph*.

    Repeatedly select an unnumbered vertex with the most numbered
    neighbours (ties broken by ``repr`` for determinism).  The returned
    list is in selection order; for chordal graphs its *reverse* is a
    perfect elimination order.
    """
    weight = {v: 0 for v in graph}
    order: list[Hashable] = []
    remaining = set(graph)
    while remaining:
        chosen = max(remaining, key=lambda v: (weight[v], repr(v)))
        remaining.discard(chosen)
        order.append(chosen)
        for nbr in graph[chosen]:
            if nbr in remaining:
                weight[nbr] += 1
    return order


def is_perfect_elimination(
    graph: dict[Hashable, set[Hashable]], order: list[Hashable]
) -> bool:
    """Is the reverse of *order* a perfect elimination order?

    Equivalently (the form used by MCS-based chordality tests): for every
    vertex ``v``, its neighbours that precede it in *order* must form a
    clique.  By Tarjan–Yannakakis, an MCS order passes this test iff the
    graph is chordal.
    """
    position = {v: i for i, v in enumerate(order)}
    for v in order:
        earlier = [u for u in graph[v] if position[u] < position[v]]
        for i, a in enumerate(earlier):
            for b in earlier[i + 1 :]:
                if b not in graph[a]:
                    return False
    return True


def is_chordal(graph: dict[Hashable, set[Hashable]]) -> bool:
    """Chordality via MCS + PEO check (Tarjan–Yannakakis)."""
    return is_perfect_elimination(graph, mcs_order(graph))


def is_conformal_along(
    query: ConjunctiveQuery,
    graph: dict[Hashable, set[Hashable]],
    order: list[Hashable],
) -> bool:
    """Conformality check specialised to a chordal primal graph: every
    ``{v} ∪ earlier-neighbours-of-v`` clique lies inside some atom."""
    position = {v: i for i, v in enumerate(order)}
    edge_sets = [frozenset(x.name for x in a.variables) for a in query.atoms]
    for v in order:
        clique = {u for u in graph[v] if position[u] < position[v]} | {v}
        if not any(clique <= e for e in edge_sets):
            return False
    return True


def is_acyclic_mcs(query: ConjunctiveQuery) -> bool:
    """α-acyclicity via chordality + conformality ([39]; cf.
    :func:`repro.core.acyclicity.is_acyclic` for the GYO route)."""
    from ..graphs.primal import primal_graph

    if not query.atoms:
        return True
    graph = primal_graph(query)
    order = mcs_order(graph)
    if not is_perfect_elimination(graph, order):
        return False
    return is_conformal_along(query, graph, order)
