"""Hypergraph-level decompositions via canonical queries (Appendix A).

Appendix A lifts hypertree decompositions from queries to hypergraphs and
relates the two settings:

* the *canonical query* ``cq(H)`` of a hypergraph has one atom per edge,
  with the edge's (lexicographically ordered) vertices as arguments
  (Definition A.2);
* every hypertree decomposition of ``H`` is one of ``cq(H)`` and vice
  versa (Theorem A.3), hence ``hw(H) = hw(cq(H))`` (Corollary A.4);
* the hypertree-width of a query equals that of its hypergraph ``H(Q)``
  (Theorem A.7) — the proof maps λ-labels edge↔atom, choosing one witness
  atom per edge in the query direction.

This module implements the canonical query, hypergraph-level width, and
the two label-translation maps of Theorem A.7.
"""

from __future__ import annotations

from typing import Hashable

from .atoms import Atom, Variable
from .detkdecomp import Strategy, hypertree_width
from .hgio import _sanitise
from .hypergraph import Hypergraph
from .hypertree import HypertreeDecomposition
from .query import ConjunctiveQuery


def _vertex_variable(vertex: Hashable) -> Variable:
    """Identify a hypergraph vertex with a query variable (Appendix A
    identifies the two settings; vertices that are already variables pass
    through unchanged)."""
    if isinstance(vertex, Variable):
        return vertex
    return Variable(str(vertex))


def canonical_query(hypergraph: Hypergraph, name: str = "cq") -> ConjunctiveQuery:
    """``cq(H)``: one atom per edge over the edge's sorted vertices
    (Definition A.2).

    Predicate names are sanitised edge names, deduplicated so distinct
    edges never merge; the correspondence edge ↔ atom stays a bijection.
    """
    body: list[Atom] = []
    used: set[str] = set()
    for edge_name, edge in hypergraph.edge_map:
        ordered = sorted(edge, key=lambda v: str(v))
        terms = tuple(_vertex_variable(v) for v in ordered)
        body.append(Atom(_predicate_name(edge_name, used), terms))
    return ConjunctiveQuery(tuple(body), (), name)


def _predicate_name(edge_name: str, used: set[str]) -> str:
    """Edge names may embed atom renderings (``"0:r(X,Y)"``); sanitise to a
    plain identifier so the canonical query is re-parseable.

    Sanitisation is injective within one canonical query: distinct edge
    names that clean to the same identifier (``"e-1"`` vs ``"e_1"``) get
    deterministic ``_2``, ``_3``, ... suffixes in declaration order — the
    same scheme as :func:`repro.core.hgio._sanitise` — so the edge ↔ atom
    bijection documented by :func:`canonical_query` survives collisions.
    """
    return _sanitise(edge_name, used, "e")


def hypergraph_width(
    hypergraph: Hypergraph,
    max_k: int | None = None,
    strategy: Strategy = "relevant",
) -> tuple[int, HypertreeDecomposition]:
    """``hw(H)`` computed through the canonical query (Corollary A.4)."""
    return hypertree_width(canonical_query(hypergraph), max_k, strategy)


def decomposition_to_hypergraph_labels(
    hd: HypertreeDecomposition,
) -> list[tuple[frozenset[Variable], frozenset[frozenset[Variable]]]]:
    """The query→hypergraph direction of Theorem A.7.

    Each node's λ-label of atoms is mapped to the set of their variable
    sets ``{var(A) : A ∈ λ(p)}``; the result is the (χ, λ') label list of
    an equal-or-smaller-width hypertree decomposition of ``H(Q)``.
    """
    result = []
    for n in hd.nodes:
        edges = frozenset(a.variables for a in n.lam)
        result.append((n.chi, edges))
    return result


def hypergraph_decomposition_to_query(
    query: ConjunctiveQuery, hd: HypertreeDecomposition
) -> HypertreeDecomposition:
    """The hypergraph→query direction of Theorem A.7.

    Given a decomposition whose λ-labels are atoms of ``cq(H(Q))``, choose
    for each hyperedge one witness atom of *query* with that variable set
    and relabel.  Width is preserved exactly (one atom per edge).
    """
    witness: dict[frozenset[Variable], Atom] = {}
    for a in query.atoms:
        witness.setdefault(a.variables, a)

    def relabel(node):
        lam = frozenset(witness[a.variables] for a in node.lam)
        return node.chi, lam

    return HypertreeDecomposition(
        query, hd.map_nodes(relabel).root
    )
