"""Conjunctive-query containment and the paper's "equivalent problems".

Section 1.1 lists the decision problems that are logspace-interreducible
with Boolean CQ evaluation: *query containment* ``Q1 ⊑ Q2``, the
*tuple-of-query* problem, clause subsumption, and CSP.  The paper's
results therefore transfer: containment is tractable whenever the
*right-hand* query has bounded hypertree-width (§1.4, statement on
``Q1 ⊑ Q2`` with ``hw(Q2) ≤ k``).

The classical Chandra–Merlin machinery implemented here:

* :func:`canonical_database` — freeze ``Q1``'s variables into constants;
  the body becomes a database ``DB(Q1)`` (the canonical instance);
* ``Q1 ⊑ Q2``  iff  the frozen head of ``Q1`` is an answer of ``Q2`` on
  ``DB(Q1)``  iff  there is a homomorphism ``Q2 → Q1``;
* :func:`homomorphism` — an explicit witness mapping, found by evaluating
  ``Q2`` with *all* its variables in the head (so the decomposition
  pipeline, not blind search, does the work).

:func:`contains` evaluates through any strategy of :mod:`repro.db`;
with ``method="decomposition"`` it is the paper's tractable route and is
cross-validated against brute-force search in the tests and experiment
E19.
"""

from __future__ import annotations

from typing import Mapping

from .._errors import EvaluationError
from ..core.atoms import Constant, Term, Variable
from ..core.query import ConjunctiveQuery
from ..db.database import Database
from ..db.evaluate import Method, evaluate
from ..db.stats import EvalStats


class _Frozen:
    """A frozen variable: a constant private to one canonical database."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"~{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Frozen) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("_Frozen", self.name))


def freeze_term(term: Term):
    """The canonical-database image of a term: constants stay themselves,
    variables freeze to private markers."""
    if isinstance(term, Constant):
        return term.value
    return _Frozen(term.name)


def canonical_database(query: ConjunctiveQuery) -> Database:
    """``DB(Q)``: the body of *query* read as ground facts, with variables
    frozen to fresh constants (Chandra–Merlin)."""
    db = Database()
    for atom in query.atoms:
        db.add_fact(atom.predicate, *(freeze_term(t) for t in atom.terms))
    return db


def _compatible_heads(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> None:
    if len(q1.head_terms) != len(q2.head_terms):
        raise EvaluationError(
            f"containment undefined: head arities differ "
            f"({len(q1.head_terms)} vs {len(q2.head_terms)})"
        )


def contains(
    q2: ConjunctiveQuery,
    q1: ConjunctiveQuery,
    method: Method = "decomposition",
    stats: EvalStats | None = None,
) -> bool:
    """Decide ``Q1 ⊑ Q2`` (every answer of Q1 is an answer of Q2).

    Arguments follow the paper's reading direction: ``contains(q2, q1)``
    asks whether *q2* contains *q1*.  Both queries may share predicate
    names with different bodies; only q1's predicates materialise.

    The decision reduces to evaluating ``Q2`` over the canonical database
    of ``Q1`` and checking that the frozen head tuple of ``Q1`` is among
    the answers — tractable when ``hw(Q2)`` is bounded (§1.4).
    """
    _compatible_heads(q1, q2)
    db = canonical_database(q1)
    for atom in q2.atoms:
        if not db.has_predicate(atom.predicate):
            return False  # Q2 uses a relation Q1's body never populates
        if db.arity(atom.predicate) != atom.arity:
            raise EvaluationError(
                f"predicate {atom.predicate!r} used with different arities "
                "in the two queries"
            )
    # Ground Q2's head against Q1's frozen head, then decide the BCQ.
    target = tuple(freeze_term(t) for t in q1.head_terms)
    substitution: dict[Variable, Term] = {}
    for term, value in zip(q2.head_terms, target):
        if isinstance(term, Constant):
            if term.value != value:
                return False
        else:
            bound = substitution.get(term)
            if bound is not None and bound != Constant(value):
                return False
            substitution[term] = Constant(value)
    grounded = q2.renamed(substitution).as_boolean()
    from ..db.evaluate import evaluate_boolean

    return evaluate_boolean(grounded, db, method=method, stats=stats)


def equivalent(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery, method: Method = "decomposition"
) -> bool:
    """``Q1 ≡ Q2``: mutual containment."""
    return contains(q2, q1, method) and contains(q1, q2, method)


def homomorphism(
    source: ConjunctiveQuery,
    target: ConjunctiveQuery,
    method: Method = "decomposition",
) -> dict[Variable, Term] | None:
    """A homomorphism ``source → target`` (mapping source variables to
    target terms so every source atom lands in target's body), or ``None``.

    This is the §6 homomorphism problem; by Chandra–Merlin it witnesses
    ``target ⊑ source`` for Boolean queries.
    """
    head = tuple(sorted(source.variables, key=lambda v: v.name))
    asked = source.as_boolean().with_head(head)
    db = canonical_database(target)
    for atom in asked.atoms:
        if not db.has_predicate(atom.predicate) or db.arity(
            atom.predicate
        ) != atom.arity:
            return None
    answers = evaluate(asked, db, method=method)
    if not answers:
        return None
    row = min(answers.rows, key=repr)

    def unfreeze(value) -> Term:
        if isinstance(value, _Frozen):
            return Variable(value.name)
        return Constant(value)

    return {v: unfreeze(value) for v, value in zip(head, row)}


def is_homomorphism(
    mapping: Mapping[Variable, Term],
    source: ConjunctiveQuery,
    target: ConjunctiveQuery,
) -> bool:
    """Check a homomorphism witness: every mapped source atom must occur
    in target's body (constants map to themselves)."""
    target_atoms = set(target.atoms)
    for atom in source.atoms:
        image = atom.rename(dict(mapping))
        if image not in target_atoms:
            return False
    return True


def tuple_of_query(
    query: ConjunctiveQuery,
    db: Database,
    values: tuple,
    method: Method = "decomposition",
) -> bool:
    """The tuple-of-query problem (§1.1): does *values* belong to the
    answer of *query* on *db*?

    Implemented by substituting the tuple into the head (turning the query
    Boolean) rather than materialising all answers.
    """
    head_vars = [t for t in query.head_terms if isinstance(t, Variable)]
    if len(values) != len(query.head_terms):
        raise EvaluationError(
            f"tuple arity {len(values)} does not match head arity "
            f"{len(query.head_terms)}"
        )
    substitution: dict[Variable, Term] = {}
    for term, value in zip(query.head_terms, values):
        if isinstance(term, Constant):
            if term.value != value:
                return False
        else:
            bound = substitution.get(term)
            if bound is not None and bound != Constant(value):
                return False
            substitution[term] = Constant(value)
    grounded = query.renamed(substitution).as_boolean()
    from ..db.evaluate import evaluate_boolean

    return evaluate_boolean(grounded, db, method=method)
