"""The Robber-and-Marshals game characterisation of hypertree-width.

Section 1.4 points to the authors' companion result ([23], "Robbers,
marshals, and guards"): ``hw(Q) ≤ k`` iff ``k`` *marshals* have a
monotone winning strategy against a robber on the query's hypergraph.

Game rules (monotone variant):

* a position is a pair ``(M, R)``: the marshals occupy a set ``M`` of at
  most ``k`` hyperedges, the robber controls a space ``R`` — a
  ``[var(M)]``-component;
* marshals announce a move ``M → M'``; while they fly, the robber runs
  along paths that avoid the *shield* ``var(M) ∩ var(M')``, reaching any
  ``[var(M')]``-component connected to his space through non-shield
  vertices;
* the *monotone* game requires the robber's space never to grow: a move
  is safe only if every component he can reach is contained in ``R``;
* the marshals win when the robber has no component left
  (``R ⊆ var(M')``).

This module implements the game *directly from these rules* — it shares
no logic with :mod:`repro.core.detkdecomp` — so the test-suite equality
``marshals_width(Q) = hw(Q)`` on the corpus and on random queries is a
genuine cross-validation of both implementations (and of the [23]
theorem).  A winning strategy tree converts to a hypertree decomposition
(:func:`strategy_to_decomposition`): marshal moves become λ-labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from .atoms import Atom, Variable, variables_of
from .components import vertex_components
from .hypertree import HTNode, HypertreeDecomposition
from .query import ConjunctiveQuery


@dataclass
class StrategyNode:
    """One marshal move and the robber options it leaves open."""

    marshals: frozenset[Atom]
    robber_space: frozenset[Variable]
    children: tuple["StrategyNode", ...]

    def max_marshals(self) -> int:
        size = len(self.marshals)
        for child in self.children:
            size = max(size, child.max_marshals())
        return size

    def positions(self) -> int:
        return 1 + sum(c.positions() for c in self.children)


class _Game:
    def __init__(self, query: ConjunctiveQuery, k: int):
        self.query = query
        self.k = k
        self.atoms = query.atoms
        self.edge_sets = [a.variables for a in self.atoms]
        self.memo: dict[
            tuple[frozenset[Variable], frozenset[Variable]], StrategyNode | None
        ] = {}

    def _reachable_space(
        self, space: frozenset[Variable], shield: frozenset[Variable]
    ) -> frozenset[Variable]:
        """Vertices the robber can reach from *space* while the marshals
        fly: the union of [shield]-components touching his space."""
        region: set[Variable] = set(space - shield)
        for component in vertex_components(self.edge_sets, shield):
            if component & space:
                region |= component
        return frozenset(region)

    def win(
        self, space: frozenset[Variable], marshal_vars: frozenset[Variable]
    ) -> StrategyNode | None:
        key = (space, marshal_vars)
        if key in self.memo:
            cached = self.memo[key]
            return cached if cached is None else cached
        self.memo[key] = None

        relevant = [a for a in self.atoms if a.variables & (space | marshal_vars)]
        for size in range(1, self.k + 1):
            for move in combinations(relevant, size):
                move_vars = variables_of(move)
                if not move_vars & space:
                    continue  # the move never traps anything new
                shield = marshal_vars & move_vars
                region = self._reachable_space(space, shield)
                new_spaces = [
                    c
                    for c in vertex_components(self.edge_sets, move_vars)
                    if c & region
                ]
                if any(not c <= space for c in new_spaces):
                    continue  # robber escapes (or the move is non-monotone)
                children = []
                for c in new_spaces:
                    sub = self.win(c, move_vars)
                    if sub is None:
                        break
                    children.append(sub)
                else:
                    node = StrategyNode(
                        frozenset(move), space, tuple(children)
                    )
                    self.memo[key] = node
                    return node
        return None


def marshals_have_winning_strategy(
    query: ConjunctiveQuery, k: int
) -> StrategyNode | None:
    """A monotone winning strategy for k marshals, or ``None``.

    Disconnected queries: the robber picks his component first, so the
    marshals must win on every [∅]-component; the returned strategy trees
    are joined under the first move (mirroring decompositions).
    """
    if k < 1:
        raise ValueError("at least one marshal is required")
    if not query.atoms:
        return None
    game = _Game(query, k)
    roots: list[StrategyNode] = []
    for component in vertex_components(game.edge_sets, frozenset()):
        strategy = game.win(component, frozenset())
        if strategy is None:
            return None
        roots.append(strategy)
    if not roots:  # variable-free query: one trivial move wins
        return StrategyNode(frozenset({query.atoms[0]}), frozenset(), ())
    root = roots[0]
    if len(roots) > 1:
        root = StrategyNode(
            root.marshals, root.robber_space, root.children + tuple(roots[1:])
        )
    return root


def marshals_width(query: ConjunctiveQuery, max_k: int | None = None) -> int:
    """The least k such that k marshals win the monotone game.

    By [23] this equals ``hw(Q)`` — asserted against
    :func:`repro.core.detkdecomp.hypertree_width` throughout the tests.
    """
    limit = max_k if max_k is not None else max(1, len(query.atoms))
    for k in range(1, limit + 1):
        if marshals_have_winning_strategy(query, k) is not None:
            return k
    raise ValueError(f"no winning strategy with ≤ {limit} marshals")


def strategy_to_decomposition(
    query: ConjunctiveQuery, strategy: StrategyNode
) -> HypertreeDecomposition:
    """Turn a monotone winning strategy into a hypertree decomposition.

    λ(node) = the marshal move; χ(node) = its variables restricted to the
    robber space plus the parent's χ (the witness-tree labelling of §5.2,
    which monotone safety makes valid — see the game/connector remark in
    the module docstring).
    """

    def build(node: StrategyNode, parent_chi: frozenset[Variable]) -> HTNode:
        move_vars = variables_of(node.marshals)
        chi = move_vars & (node.robber_space | parent_chi)
        if not parent_chi:
            chi = move_vars
        return HTNode(
            chi,
            node.marshals,
            tuple(build(c, chi) for c in node.children),
        )

    return HypertreeDecomposition(query, build(strategy, frozenset()))
