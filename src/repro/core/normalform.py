"""Normal-form transformation for hypertree decompositions (Theorem 5.4).

Definition 5.1 calls a hypertree decomposition *normal form* (NF) when for
every vertex ``r`` and child ``s``:

1. there is exactly one [r]-component ``C_r`` with
   ``χ(T_s) = C_r ∪ (χ(s) ∩ χ(r))``;
2. ``χ(s) ∩ C_r ≠ ∅``;
3. ``var(λ(s)) ∩ χ(r) ⊆ χ(s)``.

Theorem 5.4 proves every width-k decomposition can be transformed into a
width-k NF decomposition.  This module implements the constructive proof:

* a child whose subtree adds no component variables (``χ(T_s) ⊆ χ(r)``) is
  spliced out — its children move up to ``r`` (Fig. 9); any atoms it
  covered are already covered by ``r``;
* a child whose subtree mixes several [r]-components ``C_1 … C_h`` is
  *split*: for each ``C_i``, the nodes of ``T_s`` whose χ touches ``C_i``
  (which induce a connected subtree by Lemmas 5.2/5.3) are copied with
  ``χ := χ ∩ (C_i ∪ χ(r))`` and attached to ``r`` as a separate subtree;
* a child with ``var(λ(s)) ∩ χ(r) ⊄ χ(s)`` has the missing variables added
  to its χ (harmless: they occur in ``χ(r)`` and stay connected through
  the parent edge).

Processing is top-down; Lemma 5.7 (an NF decomposition has at most
``|var(Q)|`` vertices) is verified for the output by tests and by
experiment E09.
"""

from __future__ import annotations

from .._errors import DecompositionError
from ..graphs import trees
from .atoms import Variable
from .components import vertex_components
from .hypertree import HTNode, HypertreeDecomposition


def _subtree_chi(node: HTNode) -> frozenset[Variable]:
    result: set[Variable] = set()
    for n in trees.preorder(node, lambda x: x.children):
        result.update(n.chi)
    return frozenset(result)


def _split_child(
    parent: HTNode,
    child: HTNode,
    r_components: list[frozenset[Variable]],
) -> list[HTNode]:
    """Replace *child* by one projected copy per touched [r]-component.

    Returns the replacement subtrees (possibly empty when the child's
    subtree adds no component variables at all — its atoms are covered by
    the parent already).
    """
    subtree_vars = _subtree_chi(child)
    touched = [c for c in r_components if c & subtree_vars]
    replacements: list[HTNode] = []
    for component in touched:
        keep = component | parent.chi
        marked: set[int] = set()
        for n in trees.preorder(child, lambda x: x.children):
            if n.chi & component:
                marked.add(id(n))

        def build(n: HTNode) -> HTNode:
            kids = tuple(
                build(c) for c in n.children if id(c) in marked
            )
            return HTNode(n.chi & keep, n.lam, kids)

        # The marked nodes induce a connected subtree of T_s (Lemma 5.3
        # restricted via Lemma 5.2); its root is the shallowest marked node.
        root = _shallowest_marked(child, marked)
        replacements.append(build(root))
    return replacements


def _shallowest_marked(subtree_root: HTNode, marked: set[int]) -> HTNode:
    for n in trees.preorder(subtree_root, lambda x: x.children):
        if id(n) in marked:
            return n
    raise AssertionError("split invoked on a child with no marked nodes")


def normalize(hd: HypertreeDecomposition) -> HypertreeDecomposition:
    """Transform *hd* into an equal-or-smaller-width NF decomposition.

    The input must be a valid hypertree decomposition (Definition 4.1);
    the output satisfies Definition 5.1, remains valid, and never exceeds
    the input's width (the split/splice steps only project χ labels and
    reuse existing λ labels).
    """
    query = hd.query
    edge_sets = [a.variables for a in query.atoms]
    root = hd.root.copy_tree()

    agenda: list[HTNode] = [root]
    while agenda:
        r = agenda.pop()
        r_components = vertex_components(edge_sets, r.chi)
        stable = False
        sweeps = 0
        while not stable:
            sweeps += 1
            if sweeps > 4 * (len(query.atoms) + len(query.variables) + 4):
                raise DecompositionError(
                    "normalisation did not converge; the input decomposition "
                    "is not a valid hypertree decomposition"
                )
            stable = True
            new_children: list[HTNode] = []
            for s in r.children:
                subtree_vars = _subtree_chi(s)
                component_vars = subtree_vars - r.chi
                if not component_vars:
                    # Splice: subtree adds nothing beyond χ(r); its children
                    # move up (they are re-examined in the next sweep).
                    new_children.extend(s.children)
                    stable = False
                    continue
                exact = [
                    c
                    for c in r_components
                    if subtree_vars == c | (s.chi & r.chi)
                ]
                if len(exact) == 1 and (s.chi & exact[0]):
                    new_children.append(s)
                    continue
                replacements = _split_child(r, s, r_components)
                new_children.extend(replacements)
                stable = False
            r.children = tuple(new_children)
        # NF condition 3: pull parent-χ variables of λ(s) into χ(s).
        fixed_children: list[HTNode] = []
        for s in r.children:
            missing = (s.lambda_variables & r.chi) - s.chi
            if missing:
                s = HTNode(s.chi | missing, s.lam, s.children)
            fixed_children.append(s)
            agenda.append(s)
        r.children = tuple(fixed_children)

    return HypertreeDecomposition(query, root)


def is_normal_form(hd: HypertreeDecomposition) -> bool:
    """Convenience wrapper over
    :meth:`HypertreeDecomposition.normal_form_violations`."""
    return hd.is_normal_form


def nf_vertex_bound_holds(hd: HypertreeDecomposition) -> bool:
    """Lemma 5.7: an NF decomposition has at most ``|var(Q)|`` vertices."""
    return len(hd) <= max(1, len(hd.query.variables))
