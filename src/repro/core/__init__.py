"""Core systems: queries, hypergraphs, and the paper's decomposition theory.

Import surface re-exported at package top level; see ``repro/__init__.py``.
"""

from .acyclicity import gyo_reduction, is_acyclic, join_tree
from .atoms import Atom, Constant, Term, Variable, atom, variables_of
from .canonical import canonical_query, hypergraph_width
from .containment import (
    canonical_database,
    contains,
    equivalent,
    homomorphism,
    is_homomorphism,
    tuple_of_query,
)
from .components import (
    atoms_of_component,
    components,
    v_adjacent,
    v_connected,
    v_path,
    vertex_components,
)
from .detkdecomp import (
    SearchStats,
    Strategy,
    decompose_k,
    decomposition_from_join_tree,
    has_hypertree_width_at_most,
    hypertree_width,
)
from .games import (
    StrategyNode,
    marshals_have_winning_strategy,
    marshals_width,
    strategy_to_decomposition,
)
from .hgio import (
    format_hypergraph,
    load_hypergraph,
    parse_hypergraph,
    save_hypergraph,
)
from .hypergraph import Hypergraph, query_hypergraph
from .mcs import is_acyclic_mcs, is_chordal, mcs_order
from .hypertree import HTNode, HypertreeDecomposition, node
from .jointree import JoinTree, join_tree_from_edges
from .normalform import is_normal_form, nf_vertex_bound_holds, normalize
from .parser import parse_atom, parse_query
from .query import ConjunctiveQuery, eliminate_constants
from .querydecomp import QDNode, QueryDecomposition
from .qwsearch import (
    decompose_qw,
    has_query_width_at_most,
    query_width,
    set_partitions,
)

__all__ = [
    "format_hypergraph",
    "load_hypergraph",
    "parse_hypergraph",
    "save_hypergraph",
    "StrategyNode",
    "canonical_database",
    "contains",
    "equivalent",
    "homomorphism",
    "is_acyclic_mcs",
    "is_chordal",
    "is_homomorphism",
    "marshals_have_winning_strategy",
    "marshals_width",
    "mcs_order",
    "strategy_to_decomposition",
    "tuple_of_query",
    "Atom",
    "Constant",
    "ConjunctiveQuery",
    "HTNode",
    "Hypergraph",
    "HypertreeDecomposition",
    "JoinTree",
    "QDNode",
    "QueryDecomposition",
    "SearchStats",
    "Strategy",
    "Term",
    "Variable",
    "atom",
    "atoms_of_component",
    "canonical_query",
    "components",
    "decompose_k",
    "decompose_qw",
    "decomposition_from_join_tree",
    "eliminate_constants",
    "gyo_reduction",
    "has_hypertree_width_at_most",
    "has_query_width_at_most",
    "hypergraph_width",
    "hypertree_width",
    "is_acyclic",
    "is_normal_form",
    "join_tree",
    "join_tree_from_edges",
    "nf_vertex_bound_holds",
    "node",
    "normalize",
    "parse_atom",
    "parse_query",
    "query_hypergraph",
    "query_width",
    "set_partitions",
    "v_adjacent",
    "v_connected",
    "v_path",
    "variables_of",
    "vertex_components",
]
