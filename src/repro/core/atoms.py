"""Terms and atoms of conjunctive queries (paper §2.1).

The paper adopts the logical representation of relational databases: a
conjunctive query is a datalog rule whose body is a conjunction of atoms
``r(u_1, ..., u_k)`` over terms that are either *variables* or *constants*.

This module provides the three immutable building blocks:

* :class:`Variable` — a named logical variable (``X``, ``Pers1``, ...),
* :class:`Constant` — an atomic domain value,
* :class:`Atom`     — a predicate name applied to a tuple of terms.

All three are hashable value objects, so they can be used freely in the
set-heavy algorithms of the rest of the library ([V]-components, separators,
decomposition labels, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Union


@dataclass(frozen=True, slots=True, order=True)
class Variable:
    """A logical variable, identified by its name.

    Two :class:`Variable` objects with the same name are equal; queries are
    therefore free to construct variables on the fly rather than interning
    them.
    """

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True, order=True)
class Constant:
    """An atomic domain value appearing in a query or a database tuple."""

    value: Hashable

    def __str__(self) -> str:  # pragma: no cover - trivial
        return repr(self.value) if isinstance(self.value, str) else str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


#: A term is either a variable or a constant (paper §2.1).
Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """Return ``True`` iff *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


@dataclass(frozen=True, slots=True)
class Atom:
    """An atom ``predicate(t_1, ..., t_k)`` in the body of a query.

    ``Atom`` is a pure value: equality and hashing are structural over the
    predicate name and the term tuple.  Two syntactically identical atoms in
    a query body are the same atom (the paper treats ``atoms(Q)`` as a set).

    Attributes
    ----------
    predicate:
        The relation name this atom refers to.
    terms:
        The ordered argument list.  Arity is ``len(terms)``.
    """

    predicate: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.terms)

    @property
    def variables(self) -> frozenset[Variable]:
        """``var(A)``: the set of variables occurring in this atom."""
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    @property
    def constants(self) -> frozenset[Constant]:
        """The set of constants occurring in this atom."""
        return frozenset(t for t in self.terms if isinstance(t, Constant))

    def rename(self, mapping: dict[Variable, Term]) -> "Atom":
        """Return a copy with variables substituted according to *mapping*.

        Variables absent from *mapping* are kept unchanged.  This implements
        the atom part of a substitution ``Aθ`` from §2.1.
        """
        new_terms = tuple(
            mapping.get(t, t) if isinstance(t, Variable) else t for t in self.terms
        )
        return Atom(self.predicate, new_terms)

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {self.terms!r})"


def atom(predicate: str, *terms: Term | str | int) -> Atom:
    """Convenience constructor for atoms.

    String arguments that start with an uppercase letter or underscore are
    interpreted as variables (the datalog convention); everything else is
    wrapped as a :class:`Constant`.

    >>> atom("enrolled", "S", "C", "R")
    Atom('enrolled', (Variable('S'), Variable('C'), Variable('R')))
    >>> atom("age", "X", 42).terms[1]
    Constant(42)
    """
    converted: list[Term] = []
    for t in terms:
        if isinstance(t, (Variable, Constant)):
            converted.append(t)
        elif isinstance(t, str) and t and (t[0].isupper() or t[0] == "_"):
            converted.append(Variable(t))
        else:
            converted.append(Constant(t))
    return Atom(predicate, tuple(converted))


def variables_of(atoms: Iterable[Atom]) -> frozenset[Variable]:
    """``var(R)`` for a set of atoms ``R`` (paper §2.1).

    Returns the union of ``var(A)`` over all atoms ``A`` in *atoms*.
    """
    result: set[Variable] = set()
    for a in atoms:
        result.update(a.variables)
    return frozenset(result)
