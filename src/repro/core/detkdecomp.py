"""Deciding ``hw(Q) ≤ k`` and computing hypertree decompositions (§5.2).

The paper presents ``k-decomp`` (Fig. 10) as an *alternating* logspace
algorithm: existentially guess a λ-label ``S`` of at most ``k`` atoms for
the current ``[var(R)]``-component ``C_R``, check two conditions, then
universally recurse into every ``[var(S)]``-component contained in ``C_R``.
Membership in LOGCFL follows from the polynomial bound on accepting
computation trees (Lemma 5.15).

Alternation is not a runnable artifact, so — exactly as the authors do in
Appendix B and in their later det-k-decomp work — we realise the same
search space deterministically with memoisation.  The key observation is
that a subproblem is fully determined by the pair

    ``(C, W)``  with  ``W = var(atoms(C)) ∩ var(R)``,

because the paper's Step-2 check "for every ``P ∈ atoms(C_R)``:
``var(P) ∩ var(R) ⊆ var(S)``" depends on ``R`` only through ``W``
(take the union over ``P``).  The number of distinct pairs is polynomial
(each ``C`` is a component of one of the ≤ ``m^k`` separators), which is
the deterministic shadow of the LOGCFL tree-size bound.

Two structural facts keep the recursion sound (both follow from §3.2 and
are verified by property tests in ``tests/core/test_components.py``):

* for a ``[var(R)]``-component ``C``: ``var(atoms(C)) ⊆ C ∪ var(R)`` —
  hence every later ``[var(S)]``-component that intersects ``C`` is
  contained in ``C`` whenever ``W ⊆ var(S)``;
* the witness-tree labelling ``χ(s) = var(S) ∩ (W ∪ C)`` yields a valid,
  normal-form decomposition (Lemma 5.13); dropping λ-variables outside
  ``W ∪ C`` from χ is harmless since such variables cannot reappear in the
  subtree.

Candidate λ-labels
------------------
``strategy="all"`` enumerates every ≤ k-subset of ``atoms(Q)`` — the
literal search space of Fig. 10.  ``strategy="relevant"`` (default)
restricts the pool to atoms intersecting ``C ∪ W``: an atom disjoint from
``C ∪ W`` contributes nothing to the two Step-2 checks, to χ, or to the
component structure inside ``C`` (its variables cannot be [var(S)]-adjacent
to ``C``), so removing it from any accepting guess leaves an accepting
guess.  Experiment E18 cross-validates the two strategies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import combinations
from typing import Iterator, Literal

from .._errors import BudgetExceeded
from .acyclicity import join_tree
from .atoms import Atom, Variable, variables_of
from .components import vertex_components
from .hypertree import HTNode, HypertreeDecomposition
from .query import ConjunctiveQuery

Strategy = Literal["relevant", "all"]


@dataclass
class SearchStats:
    """Instrumentation of one ``decompose_k`` run.

    ``subproblems`` is the number of distinct ``(C, W)`` pairs explored —
    the deterministic analogue of the paper's accepting-computation-tree
    size, reported by experiments E10/E18.
    """

    subproblems: int = 0
    memo_hits: int = 0
    candidates_tried: int = 0
    k: int = 0
    strategy: str = "relevant"

    def as_row(self) -> dict[str, int | str]:
        return {
            "k": self.k,
            "strategy": self.strategy,
            "subproblems": self.subproblems,
            "memo_hits": self.memo_hits,
            "candidates": self.candidates_tried,
        }


class _Search:
    """One memoised search for a width-≤k decomposition of a query."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        k: int,
        strategy: Strategy,
        deadline: float | None = None,
    ):
        self.query = query
        self.k = k
        self.strategy = strategy
        self.deadline = deadline
        self.atoms: tuple[Atom, ...] = query.atoms
        self.edge_sets = [a.variables for a in self.atoms]
        self.memo: dict[
            tuple[frozenset[Variable], frozenset[Variable]], HTNode | None
        ] = {}
        self.stats = SearchStats(k=k, strategy=strategy)

    # -- candidate enumeration -------------------------------------------
    def _pool(
        self, component: frozenset[Variable], connector: frozenset[Variable]
    ) -> list[Atom]:
        if self.strategy == "all":
            return list(self.atoms)
        touched = component | connector
        return [a for a in self.atoms if a.variables & touched]

    def _candidates(
        self, component: frozenset[Variable], connector: frozenset[Variable]
    ) -> Iterator[tuple[Atom, ...]]:
        """All ≤ k-subsets of the pool, smallest first.

        Atoms covering connector variables are ordered first so that early
        combinations are more likely to satisfy the cover check.
        """
        pool = self._pool(component, connector)
        pool.sort(
            key=lambda a: (-len(a.variables & connector), -len(a.variables & component), str(a))
        )
        for size in range(1, self.k + 1):
            yield from combinations(pool, size)

    # -- the recursion -----------------------------------------------------
    def solve(
        self, component: frozenset[Variable], connector: frozenset[Variable]
    ) -> HTNode | None:
        """Decide the subproblem (C, W); return a witness subtree or None.

        The returned subtree is a private blueprint: callers must
        ``copy_tree()`` before attaching it (node objects must stay unique
        within a decomposition tree).
        """
        key = (component, connector)
        if key in self.memo:
            self.stats.memo_hits += 1
            return self.memo[key]
        self.memo[key] = None  # fail-closed while exploring (cycle guard)
        self.stats.subproblems += 1
        self._check_deadline()

        for label in self._candidates(component, connector):
            self.stats.candidates_tried += 1
            # A single subproblem can enumerate millions of candidates, so
            # the deadline must also be polled inside this loop (cheaply).
            if self.stats.candidates_tried % 256 == 0:
                self._check_deadline()
            label_vars = variables_of(label)
            # Step 2(a): connector coverage.
            if not connector <= label_vars:
                continue
            # Step 2(b): progress into the component.
            if not label_vars & component:
                continue
            # Step 4: recurse into the [var(S)]-components inside C.
            sub_components = [
                c
                for c in vertex_components(self.edge_sets, label_vars)
                if c & component
            ]
            # By the structural lemma these are contained in C; assert the
            # invariant rather than silently mis-recursing.
            assert all(c <= component for c in sub_components), (
                "a [var(S)]-component escaped its parent component; "
                "connector invariant violated"
            )
            children: list[HTNode] = []
            for sub in sub_components:
                sub_connector = self._component_frontier(sub) & label_vars
                child = self.solve(sub, sub_connector)
                if child is None:
                    break
                children.append(child)
            else:
                chi = label_vars & (connector | component)
                result = HTNode(chi, label, children)
                self.memo[key] = result
                return result
        return None

    def _check_deadline(self) -> None:
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise BudgetExceeded(
                f"k-decomp search (k={self.k}) exceeded its time budget "
                f"after {self.stats.subproblems} subproblems and "
                f"{self.stats.candidates_tried} candidates"
            )

    def _component_frontier(self, component: frozenset[Variable]) -> frozenset[Variable]:
        """``var(atoms(C))`` for a component C."""
        result: set[Variable] = set()
        for edge in self.edge_sets:
            if edge & component:
                result.update(edge)
        return frozenset(result)


def decompose_k(
    query: ConjunctiveQuery,
    k: int,
    strategy: Strategy = "relevant",
    stats: SearchStats | None = None,
    deadline: float | None = None,
) -> HypertreeDecomposition | None:
    """Compute a width-≤k hypertree decomposition of *query*, or ``None``.

    The returned decomposition is in normal form (Definition 5.1) by
    construction (Lemma 5.13) — property tests assert both validity and
    normal-formness of every tree produced here.

    Parameters
    ----------
    query:
        The conjunctive query (constants are treated as fresh variables by
        the caller if desired; see :func:`repro.core.query.eliminate_constants`).
    k:
        The width bound (``k ≥ 1``).
    strategy:
        Candidate-pool strategy, ``"relevant"`` (default) or ``"all"``.
    stats:
        Optional :class:`SearchStats` that will be filled with search
        instrumentation.
    deadline:
        Optional ``time.monotonic()`` timestamp after which the search
        raises :class:`repro._errors.BudgetExceeded` (checked once per
        subproblem).  Used by :mod:`repro.heuristics.portfolio` to bound
        exact-search time.
    """
    if k < 1:
        raise ValueError("width bound k must be at least 1")
    if not query.atoms:
        return None
    search = _Search(query, k, strategy, deadline)

    roots: list[HTNode] = []
    all_components = vertex_components(search.edge_sets, frozenset())
    for component in all_components:
        connector: frozenset[Variable] = frozenset()
        subtree = search.solve(component, connector)
        if subtree is None:
            if stats is not None:
                stats.__dict__.update(search.stats.__dict__)
            return None
        roots.append(subtree.copy_tree())

    # Atoms without variables are covered by any node (var(A) = ∅ ⊆ χ);
    # if the whole query is variable-free, emit a single trivial node.
    if not roots:
        first = query.atoms[0]
        roots.append(HTNode(frozenset(), {first}))

    root = roots[0]
    if len(roots) > 1:
        root.children = root.children + tuple(roots[1:])
    _apply_witness_chi(root)
    if stats is not None:
        stats.__dict__.update(search.stats.__dict__)
    return HypertreeDecomposition(query, root)


def _apply_witness_chi(root: HTNode) -> None:
    """Lift χ labels to the paper's witness-tree form (§5.2).

    The memoised search labels a node with ``χ = var(λ) ∩ (W ∪ C)`` where
    ``W ⊆ χ(parent)`` is the connector; the paper's witness trees use
    ``χ(s) = var(λ(s)) ∩ (χ(r) ∪ C)``, which additionally keeps λ-variables
    shared with the parent's χ beyond the connector.  This top-down pass
    adds exactly those variables, which is what Normal-Form condition 3
    (Definition 5.1) requires; each added variable occurs in the parent's
    χ, so condition 2 connectivity is preserved, and it never reappears
    outside the paths created here, so condition 4 is preserved too.
    """
    stack = [root]
    while stack:
        parent = stack.pop()
        for child in parent.children:
            child.chi = child.chi | (child.lambda_variables & parent.chi)
            stack.append(child)


def has_hypertree_width_at_most(
    query: ConjunctiveQuery, k: int, strategy: Strategy = "relevant"
) -> bool:
    """Decide ``hw(Q) ≤ k`` (Theorem 5.14: k-decomp accepts iff hw ≤ k)."""
    return decompose_k(query, k, strategy) is not None


def hypertree_width(
    query: ConjunctiveQuery,
    max_k: int | None = None,
    strategy: Strategy = "relevant",
    deadline: float | None = None,
) -> tuple[int, HypertreeDecomposition]:
    """Compute ``hw(Q)`` and an optimal-width decomposition.

    Iterates ``k = 1, 2, ...`` (with the acyclic case short-circuited
    through the GYO join tree, per Theorem 4.5) and returns the first
    success.  ``max_k`` bounds the search; on exhaustion a ``ValueError``
    is raised — ``hw(Q) ≤ |atoms(Q)|`` always holds, so the default bound
    is the number of atoms.

    >>> from repro.generators.paper_queries import q1
    >>> width, hd = hypertree_width(q1())
    >>> width
    2
    """
    if not query.atoms:
        raise ValueError("hypertree width of an empty query is undefined")
    jt = join_tree(query)
    if jt is not None:
        from .normalform import normalize  # local import: avoids a cycle

        hd = normalize(decomposition_from_join_tree(query, jt))
        return 1, hd
    limit = max_k if max_k is not None else len(query.atoms)
    for k in range(2, limit + 1):
        hd = decompose_k(query, k, strategy, deadline=deadline)
        if hd is not None:
            return k, hd
    raise ValueError(f"no hypertree decomposition of width ≤ {limit} found")


def decomposition_from_join_tree(
    query: ConjunctiveQuery, jt
) -> HypertreeDecomposition:
    """The Theorem 4.5 (only-if) construction: a join tree is a width-1
    hypertree decomposition with ``χ(p) = var(λ(p))``."""

    def build(atom: Atom) -> HTNode:
        return HTNode(
            atom.variables,
            {atom},
            (build(c) for c in jt.children(atom)),
        )

    return HypertreeDecomposition(query, build(jt.root))
