"""A small parser for conjunctive queries in datalog-rule syntax.

Grammar (whitespace-insensitive)::

    query    :=  [ head ":-" ] body [ "." ]
    head     :=  name "(" termlist? ")"
    body     :=  atom ( ("," | "∧") atom )*
    atom     :=  name "(" termlist? ")"
    termlist :=  term ( "," term )*
    term     :=  VARIABLE | CONSTANT

Identifiers starting with an uppercase letter or ``_`` are variables;
identifiers starting with a lowercase letter, integers, and single-quoted
strings are constants — the standard datalog convention.

Examples
--------
>>> q = parse_query("ans() :- enrolled(S, C, R), teaches(P, C, A), parent(P, S).")
>>> len(q.atoms)
3
>>> parse_query("r(X, Y), s(Y, Z)").is_boolean
True
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from .._errors import ParseError
from .atoms import Atom, Constant, Term, Variable
from .query import ConjunctiveQuery

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>:-|<-|←)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<conj>∧|&&?)
  | (?P<dot>\.(?!\d))
  | (?P<int>-?\d+)
  | (?P<quoted>'(?:[^'\\]|\\.)*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", text, pos)
        kind = match.lastgroup or ""
        if kind != "ws":
            yield _Token(kind, match.group(), pos)
        pos = match.end()
    yield _Token("eof", "", len(text))


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = list(_tokenize(text))
        self.index = 0

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.current
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        if self.current.kind != kind:
            raise ParseError(
                f"expected {kind}, found {self.current.value!r}",
                self.text,
                self.current.position,
            )
        return self.advance()

    def accept(self, kind: str) -> _Token | None:
        if self.current.kind == kind:
            return self.advance()
        return None

    # -- grammar ---------------------------------------------------------
    def parse_term(self) -> Term:
        token = self.current
        if token.kind == "int":
            self.advance()
            return Constant(int(token.value))
        if token.kind == "quoted":
            self.advance()
            return Constant(token.value[1:-1].replace("\\'", "'"))
        if token.kind == "ident":
            self.advance()
            first = token.value[0]
            if first.isupper() or first == "_":
                return Variable(token.value)
            return Constant(token.value)
        raise ParseError(
            f"expected a term, found {token.value!r}", self.text, token.position
        )

    def parse_atom(self) -> Atom:
        name = self.expect("ident").value
        self.expect("lpar")
        terms: list[Term] = []
        if self.current.kind != "rpar":
            terms.append(self.parse_term())
            while self.accept("comma"):
                terms.append(self.parse_term())
        self.expect("rpar")
        return Atom(name, tuple(terms))

    def parse_query(self, name: str) -> ConjunctiveQuery:
        first_atom = self.parse_atom()
        head_terms: tuple[Term, ...] = ()
        body: list[Atom] = []
        if self.accept("arrow"):
            head_terms = first_atom.terms
            body.append(self.parse_atom())
        else:
            body.append(first_atom)
        while self.accept("comma") or self.accept("conj"):
            body.append(self.parse_atom())
        self.accept("dot")
        if self.current.kind != "eof":
            raise ParseError(
                f"trailing input {self.current.value!r}",
                self.text,
                self.current.position,
            )
        return ConjunctiveQuery(tuple(body), head_terms, name)


def parse_query(text: str, name: str = "Q") -> ConjunctiveQuery:
    """Parse a conjunctive query from rule syntax.

    The head (``ans(...) :-``) is optional; without it the query is Boolean.

    Raises
    ------
    ParseError
        On any syntax error, with position information.
    """
    return _Parser(text).parse_query(name)


def parse_atom(text: str) -> Atom:
    """Parse a single atom such as ``"r(X, 'a', 3)"``."""
    parser = _Parser(text)
    result = parser.parse_atom()
    if parser.current.kind != "eof":
        raise ParseError(
            f"trailing input {parser.current.value!r}",
            text,
            parser.current.position,
        )
    return result
