"""Hypergraph text format I/O (detkdecomp / HyperBench interoperability).

The paper's download section [36] distributes hypergraphs in the simple
edge-list format used by the authors' tools (detkdecomp and successors)::

    % comment
    edge1(A, B, C),
    edge2(C, D),
    edge3(D, A).

Each line names one hyperedge and lists its vertices; the trailing comma
separates edges and the final full stop is optional.  This module parses
and writes that format, bridging it to :class:`repro.core.hypergraph.Hypergraph`
and (through the canonical query, Appendix A) to the decomposition
algorithms, so that externally-published instances can be decomposed with
this library directly:

>>> h = parse_hypergraph("e1(A, B), e2(B, C).")
>>> sorted(map(str, h.vertices))
['A', 'B', 'C']
"""

from __future__ import annotations

import re

from .._errors import ParseError
from .hypergraph import Hypergraph

_EDGE_RE = re.compile(
    r"\s*(?P<name>[A-Za-z_][\w']*)\s*\(\s*(?P<vertices>[^()]*?)\s*\)\s*"
)


def parse_hypergraph(text: str) -> Hypergraph:
    """Parse the detkdecomp edge-list format into a :class:`Hypergraph`.

    Comment lines start with ``%`` or ``#``.  Edge names must be unique
    (the format identifies edges by name); vertex tokens are arbitrary
    identifiers.
    """
    cleaned_lines = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith(("%", "#")):
            continue
        cleaned_lines.append(stripped)
    body = " ".join(cleaned_lines).rstrip(".").strip()
    if not body:
        return Hypergraph.from_edges({})

    edges: dict[str, list[str]] = {}
    position = 0
    while position < len(body):
        match = _EDGE_RE.match(body, position)
        if match is None:
            raise ParseError(
                "expected an edge like name(v1, v2, ...)", body, position
            )
        name = match.group("name")
        if name in edges:
            raise ParseError(f"duplicate edge name {name!r}", body, match.start())
        vertex_field = match.group("vertices").strip()
        vertices = (
            [v.strip() for v in vertex_field.split(",")] if vertex_field else []
        )
        if any(not v for v in vertices):
            raise ParseError(f"empty vertex name in edge {name!r}", body)
        edges[name] = vertices
        position = match.end()
        if position < len(body):
            if body[position] == ",":
                position += 1
            else:
                raise ParseError(
                    f"expected ',' between edges, found {body[position]!r}",
                    body,
                    position,
                )
    return Hypergraph.from_edges(edges)


def _sanitise(
    raw: str, used: set[str], fallback: str, identifier: bool = True
) -> str:
    """An ASCII token for *raw*, unique within *used*.

    ASCII-only because the format's grammar is ``[A-Za-z_][\\w']*`` for
    edge names (re's ``\\W`` would keep unicode word characters, which do
    not re-parse).  With ``identifier=False`` (vertex tokens) a leading
    digit is fine, so names like ``1`` pass through unchanged.
    Collisions — distinct inputs sanitising identically, e.g. ``e-1``
    and ``e_1`` — are resolved deterministically by appending ``_2``,
    ``_3``, ... in declaration order.  The chosen name is recorded in
    *used*.
    """
    clean = re.sub(r"[^A-Za-z0-9_]", "_", raw)
    if not clean or (identifier and clean[0].isdigit()):
        clean = f"{fallback}_{clean}" if clean else fallback
    if clean in used:
        suffix = 2
        while f"{clean}_{suffix}" in used:
            suffix += 1
        clean = f"{clean}_{suffix}"
    used.add(clean)
    return clean


def format_hypergraph(hypergraph: Hypergraph, comment: str = "") -> str:
    """Render a hypergraph in the detkdecomp edge-list format.

    Edge *and* vertex names are sanitised to ASCII identifiers (see
    :func:`_sanitise`), each injectively — distinct inputs never merge —
    so a round trip through :func:`parse_hypergraph` preserves the edge
    structure exactly, up to the deterministic renaming.  Names that are
    already plain identifiers pass through unchanged.
    """
    lines = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"% {row}")
    vertex_names: dict = {}
    used_vertices: set[str] = set()
    for vertex in sorted(hypergraph.vertices, key=str):
        vertex_names[vertex] = _sanitise(
            str(vertex), used_vertices, "v", identifier=False
        )
    rendered = []
    used_edges: set[str] = set()
    for name, edge in hypergraph.edge_map:
        clean = _sanitise(name, used_edges, "e")
        vertices = ", ".join(sorted(vertex_names[v] for v in edge))
        rendered.append(f"{clean}({vertices})")
    lines.append(",\n".join(rendered) + ("." if rendered else ""))
    return "\n".join(lines) + "\n"


def load_hypergraph(path: str) -> Hypergraph:
    """Read a hypergraph file (detkdecomp format)."""
    with open(path, encoding="utf-8") as handle:
        return parse_hypergraph(handle.read())


def save_hypergraph(hypergraph: Hypergraph, path: str, comment: str = "") -> None:
    """Write a hypergraph file (detkdecomp format)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_hypergraph(hypergraph, comment))
