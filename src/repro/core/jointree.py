"""Join trees of conjunctive queries (paper §1.1, §2.1).

A join tree ``JT(Q)`` is a tree whose vertices are the body atoms of ``Q``
such that, for every variable ``X``, the atoms containing ``X`` induce a
connected subtree (the *Connectedness Condition*).  A query is acyclic iff
it has a join tree (Beeri–Fagin–Maier–Yannakakis / Bernstein–Goodman); the
constructive test lives in :mod:`repro.core.acyclicity`.

``JoinTree`` is also the target object of the Lemma 4.6 transformation,
where the tree vertices are freshly constructed atoms over the χ-labels of
a hypertree decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator

from .._errors import DecompositionError
from ..graphs import trees
from .atoms import Atom, Variable


@dataclass(frozen=True)
class JoinTree:
    """A rooted join tree over atoms.

    Attributes
    ----------
    root:
        The root atom.
    children_of:
        Adjacency of the rooted tree, as an (atom -> tuple of child atoms)
        mapping; atoms without an entry are leaves.
    """

    root: Atom
    children_of: dict[Atom, tuple[Atom, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Structural sanity: every key/child reachable, no repeats.
        seen: set[Atom] = set()
        for node in trees.preorder(self.root, self.children):
            if node in seen:
                raise DecompositionError(f"atom {node} occurs twice in join tree")
            seen.add(node)
        for parent in self.children_of:
            if parent not in seen:
                raise DecompositionError(
                    f"children map mentions unreachable atom {parent}"
                )

    # -- tree views ------------------------------------------------------
    def children(self, node: Atom) -> tuple[Atom, ...]:
        return self.children_of.get(node, ())

    @cached_property
    def nodes(self) -> tuple[Atom, ...]:
        return tuple(trees.preorder(self.root, self.children))

    @cached_property
    def parent_of(self) -> dict[Atom, Atom]:
        return trees.parent_map(self.root, self.children)

    def post_order(self) -> Iterator[Atom]:
        return trees.postorder(self.root, self.children)

    def edges(self) -> Iterator[tuple[Atom, Atom]]:
        return trees.tree_edges(self.root, self.children)

    def __len__(self) -> int:
        return len(self.nodes)

    # -- semantics -------------------------------------------------------
    @cached_property
    def variables(self) -> frozenset[Variable]:
        result: set[Variable] = set()
        for node in self.nodes:
            result.update(node.variables)
        return frozenset(result)

    def validate(self, query=None) -> list[str]:
        """Check the join-tree conditions; return a list of violations.

        * every variable's occurrence set induces a connected subtree
          (the Connectedness Condition);
        * if *query* is given: the tree vertices are exactly ``atoms(Q)``.

        An empty list means the tree is a valid join tree.
        """
        violations: list[str] = []
        node_set = set(self.nodes)
        if query is not None:
            missing = set(query.atoms) - node_set
            extra = node_set - set(query.atoms)
            if missing:
                violations.append(
                    "atoms missing from join tree: "
                    + ", ".join(sorted(map(str, missing)))
                )
            if extra:
                violations.append(
                    "join tree contains atoms not in the query: "
                    + ", ".join(sorted(map(str, extra)))
                )
        for variable in sorted(self.variables, key=lambda v: v.name):
            marked = [n for n in self.nodes if variable in n.variables]
            if not trees.induces_connected_subtree(self.root, self.children, marked):
                violations.append(
                    f"variable {variable} violates the connectedness condition"
                )
        return violations

    @property
    def is_valid(self) -> bool:
        return not self.validate()

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        """ASCII rendering in the style of the paper's Figs. 1, 3, 8."""
        return trees.render_tree(self.root, self.children, str)

    def __str__(self) -> str:
        return self.render()


def join_tree_from_edges(
    nodes: list[Atom], edges: list[tuple[Atom, Atom]], root: Atom | None = None
) -> JoinTree:
    """Build a rooted :class:`JoinTree` from an undirected edge list.

    Used by the GYO construction and by tests that specify trees as edge
    lists.  Raises :class:`DecompositionError` if the edges do not form a
    tree over *nodes*.
    """
    if not nodes:
        raise DecompositionError("cannot build a join tree with no atoms")
    if root is None:
        root = nodes[0]
    adjacency: dict[Atom, list[Atom]] = {n: [] for n in nodes}
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    children: dict[Atom, tuple[Atom, ...]] = {}
    seen = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        kids = tuple(n for n in adjacency[node] if n not in seen)
        if kids:
            children[node] = kids
            seen.update(kids)
            stack.extend(kids)
    if len(seen) != len(nodes):
        raise DecompositionError("edge list does not span all atoms (forest?)")
    if len(edges) != len(nodes) - 1:
        raise DecompositionError("edge list does not form a tree")
    return JoinTree(root, children)
