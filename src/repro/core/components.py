"""``[V]``-paths, ``[V]``-connectedness and ``[V]``-components (paper §3.2).

These definitions are the combinatorial heart of both query decompositions
and hypertree decompositions:

* ``X`` is *[V]-adjacent* to ``Y`` iff some atom ``A`` has
  ``{X, Y} ⊆ var(A) − V``;
* a *[V]-path* is a chain of [V]-adjacent variables;
* a *[V]-component* is a maximal [V]-connected non-empty set of variables
  ``W ⊆ var(Q) − V``.

The functions here operate on plain collections of variable sets (one per
atom / hyperedge), so the same code serves conjunctive queries (§3.2) and
hypergraphs (Appendix A).

Two structural facts used throughout the library (and checked by property
tests) follow directly from the definitions:

1. the [V]-components partition ``var(Q) − V``;
2. for every [V]-component ``C``, ``var(atoms(C)) ⊆ C ∪ V`` — an atom that
   touches ``C`` cannot reach any *other* component, since all its non-V
   variables are pairwise [V]-adjacent and hence inside ``C``.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Sequence, TypeVar

from .atoms import Atom, Variable

V = TypeVar("V", bound=Hashable)


class _UnionFind:
    """Minimal union-find over hashable items (path halving + union by size)."""

    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}

    def find(self, item: Hashable) -> Hashable:
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._size[item] = 1
            return item
        root = item
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]

    def groups(self) -> list[set[Hashable]]:
        result: dict[Hashable, set[Hashable]] = {}
        for item in self._parent:
            result.setdefault(self.find(item), set()).add(item)
        return list(result.values())


def vertex_components(
    edge_sets: Iterable[frozenset[V]], separator: frozenset[V] | set[V]
) -> list[frozenset[V]]:
    """Compute the [separator]-components of the given edge sets.

    Each element of *edge_sets* is the variable set of one atom (or one
    hyperedge).  Within a single edge, all vertices outside the separator
    are pairwise [V]-adjacent, so a union-find pass over the edges suffices.

    Returns the components as frozensets, sorted by their smallest element's
    ``repr`` for determinism.
    """
    separator = frozenset(separator)
    uf = _UnionFind()
    for edge in edge_sets:
        remaining = [v for v in edge if v not in separator]
        if not remaining:
            continue
        first = remaining[0]
        uf.find(first)
        for other in remaining[1:]:
            uf.union(first, other)
    groups = [frozenset(g) for g in uf.groups()]
    return sorted(groups, key=lambda g: sorted(repr(v) for v in g))


def components(query, separator: Iterable[Variable]) -> list[frozenset[Variable]]:
    """The [V]-components of a conjunctive query (paper §3.2).

    *query* is a :class:`~repro.core.query.ConjunctiveQuery`;
    *separator* is the variable set ``V``.
    """
    sep = frozenset(separator)
    return vertex_components([a.variables for a in query.atoms], sep)


def atoms_of_component(query, component: Iterable[Variable]) -> tuple[Atom, ...]:
    """``atoms(C)``: the atoms whose variable set intersects *component*."""
    comp = frozenset(component)
    return tuple(a for a in query.atoms if a.variables & comp)


def edges_of_component(
    edge_sets: Sequence[frozenset[V]], component: frozenset[V]
) -> list[int]:
    """Indices of the edges whose vertex set intersects *component*."""
    return [i for i, e in enumerate(edge_sets) if e & component]


def v_adjacent(query, separator: Iterable[Variable], x: Variable, y: Variable) -> bool:
    """True iff *x* is [V]-adjacent to *y* in *query* (paper §3.2)."""
    sep = frozenset(separator)
    if x in sep or y in sep:
        return False
    for a in query.atoms:
        free = a.variables - sep
        if x in free and y in free:
            return True
    return False


def v_path(
    query, separator: Iterable[Variable], x: Variable, y: Variable
) -> list[Variable] | None:
    """Return a [V]-path from *x* to *y* as a variable sequence, or ``None``.

    A path of length 0 (``x == y``) is permitted, matching the paper's
    ``h ≥ 0`` convention.  Implemented as a BFS over the [V]-adjacency
    relation; the returned witness is checked in tests against
    :func:`v_adjacent` link by link.
    """
    sep = frozenset(separator)
    if x in sep or y in sep:
        return None
    if x == y:
        return [x]
    # Precompute adjacency lists: within each atom, all free variables are
    # mutually adjacent.
    adjacency: dict[Variable, set[Variable]] = {}
    for a in query.atoms:
        free = a.variables - sep
        for u in free:
            adjacency.setdefault(u, set()).update(free - {u})
    if x not in adjacency or y not in adjacency:
        return None
    predecessor: dict[Variable, Variable] = {x: x}
    queue: deque[Variable] = deque([x])
    while queue:
        current = queue.popleft()
        for nxt in adjacency.get(current, ()):
            if nxt in predecessor:
                continue
            predecessor[nxt] = current
            if nxt == y:
                path = [y]
                while path[-1] != x:
                    path.append(predecessor[path[-1]])
                path.reverse()
                return path
            queue.append(nxt)
    return None


def v_connected(
    query, separator: Iterable[Variable], variables: Iterable[Variable]
) -> bool:
    """True iff *variables* form a [V]-connected set (paper §3.2)."""
    members = list(variables)
    if not members:
        return True
    first = members[0]
    return all(v_path(query, separator, first, other) is not None for other in members)
