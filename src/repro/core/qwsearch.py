"""Exact query-width computation for small queries (§3.1, §3.3).

Deciding ``qw(Q) ≤ k`` is NP-complete for ``k = 4`` (Theorem 3.4), so any
exact algorithm is exponential; this module implements a memoised
branch-and-bound search adequate for paper-scale queries (it certifies
``qw(Q1) = 2``, ``qw(Q4) = 2``, ``qw(Q5) = 3`` — experiments E02/E04/E05).

Search space
------------
By Proposition 3.3 we search *pure* decompositions.  The search builds the
tree root-down.  A subproblem is a pair ``(T, V_R)`` where ``T`` is the
*territory* — the union of the ``[V_R]``-components this subtree must cover
— and ``V_R = var(R)`` for the parent label ``R``.  At the subtree root we
choose a label ``S`` of at most ``k`` atoms subject to:

* **territory discipline** — ``var(S) ⊆ V_R ∪ T``.  (By Proposition 3.6 a
  subtree covers exactly ``var(p)`` plus its chosen components; an atom
  with a variable outside ``V_R ∪ T`` would leak a foreign component's
  variable into this subtree and break the Connectedness Condition, as in
  the paper's §3.3 discussion of atom ``j``.)
* **connector coverage** — ``V_R ∩ var(atoms(T)) ⊆ var(S)``: a parent
  variable that recurs in the subtree must occur in every node on the
  connecting path, in particular here.
* **progress** — ``var(S) ∩ T ≠ ∅``.

The remaining territory ``T − var(S)`` splits into ``[var(S)]``-components,
each contained in a single old component; unlike the hypertree search we
must branch over **partitions** of these components into child groups — a
single child label may bridge several components (this is precisely the
flexibility that makes query decompositions NP-hard to find; cf. §3.3).
Every true pure decomposition maps onto this search space: ballast subtrees
(whose atoms use only parent variables) can be flattened into parked
singleton children, and each remaining child handles one component group.

Atom-occurrence connectedness (condition 2 of Definition 3.1)
-------------------------------------------------------------
The recursion above enforces conditions 1 and 3 by construction but allows,
in principle, the same *interface* atom (one whose variables all lie in
``V_R``) to be picked in two unrelated branches, which would violate
condition 2.  We therefore (a) order candidates so that atoms touching the
territory or continuing the parent's label are preferred, and (b) validate
the extracted witness with :meth:`QueryDecomposition.validate`; a failure
triggers a retry that bans the offending reuse.  Negative answers are
unconditional: the search space over-approximates the set of pure
decompositions, so "no width-k tree found" certifies ``qw(Q) > k``.
Positive answers are certified by the validated witness.  (On every query
in this repository's corpus the first extraction already validates.)
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence

from .._errors import DecompositionError
from .acyclicity import join_tree
from .atoms import Atom, Variable, variables_of
from .components import vertex_components
from .query import ConjunctiveQuery
from .querydecomp import QDNode, QueryDecomposition


def set_partitions(items: Sequence) -> Iterator[list[list]]:
    """All partitions of *items* into non-empty groups (Bell-number many).

    >>> sorted(len(p) for p in set_partitions([1, 2, 3]))
    [1, 2, 2, 2, 3]
    """
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        for index in range(len(partition)):
            yield (
                partition[:index]
                + [[first] + partition[index]]
                + partition[index + 1 :]
            )
        yield [[first]] + partition


class _QWSearch:
    """Memoised search for a width-≤k pure query decomposition."""

    def __init__(self, query: ConjunctiveQuery, k: int, banned: frozenset[Atom]):
        self.query = query
        self.k = k
        self.banned = banned
        self.atoms = query.atoms
        self.edge_sets = [a.variables for a in self.atoms]
        self.memo: dict[
            tuple[frozenset[Variable], frozenset[Variable]], QDNode | None
        ] = {}
        self.subproblems = 0

    def atoms_of(self, territory: frozenset[Variable]) -> list[Atom]:
        return [a for a in self.atoms if a.variables & territory]

    def _pool(
        self,
        territory: frozenset[Variable],
        parent_vars: frozenset[Variable],
        parent_label: frozenset[Atom],
    ) -> list[Atom]:
        """Atoms permitted in a label at this subproblem.

        Territory discipline admits exactly: atoms touching the territory
        (whose variables then lie in ``T ∪ V_R`` automatically — see
        :mod:`repro.core.components`) and interface atoms with all
        variables in ``V_R``.  Ordering implements the reuse preference
        described in the module docstring.
        """
        territory_atoms = []
        parent_atoms = []
        interface_atoms = []
        for a in self.atoms:
            if a in self.banned:
                continue
            if a.variables & territory:
                if a.variables <= territory | parent_vars:
                    territory_atoms.append(a)
            elif a in parent_label:
                parent_atoms.append(a)
            elif a.variables <= parent_vars:
                interface_atoms.append(a)
        return territory_atoms + parent_atoms + interface_atoms

    def solve(
        self,
        territory: frozenset[Variable],
        parent_vars: frozenset[Variable],
        parent_label: frozenset[Atom],
    ) -> QDNode | None:
        key = (territory, parent_vars)
        if key in self.memo:
            cached = self.memo[key]
            return cached.copy_tree() if cached is not None else None
        self.subproblems += 1

        territory_atoms = self.atoms_of(territory)
        connector = parent_vars & variables_of(territory_atoms)
        pool = self._pool(territory, parent_vars, parent_label)
        result: QDNode | None = None

        for size in range(1, self.k + 1):
            if result is not None:
                break
            for label in combinations(pool, size):
                label_set = frozenset(label)
                label_vars = variables_of(label)
                if not connector <= label_vars:
                    continue
                if not label_vars & territory:
                    continue
                built = self._expand(territory, label_set, label_vars)
                if built is not None:
                    result = built
                    break

        self.memo[key] = result.copy_tree() if result is not None else None
        return result

    def _expand(
        self,
        territory: frozenset[Variable],
        label: frozenset[Atom],
        label_vars: frozenset[Variable],
    ) -> QDNode | None:
        """Try to complete a node with the given label: recurse into every
        grouping of the remaining components, then park exhausted atoms."""
        remaining = [
            c
            for c in vertex_components(self.edge_sets, label_vars)
            if c & territory
        ]
        assert all(c <= territory for c in remaining), (
            "a [var(S)]-component escaped its territory; "
            "territory discipline violated"
        )
        for grouping in set_partitions(remaining):
            children: list[QDNode] = []
            for group in grouping:
                group_territory = frozenset().union(*group)
                child = self.solve(group_territory, label_vars, label)
                if child is None:
                    break
                children.append(child)
            else:
                parked = self._parked(territory, label, label_vars, remaining)
                return QDNode(label, children + parked)
        return None

    def _parked(
        self,
        territory: frozenset[Variable],
        label: frozenset[Atom],
        label_vars: frozenset[Variable],
        remaining: list[frozenset[Variable]],
    ) -> list[QDNode]:
        """Singleton children for atoms exhausted exactly at this node.

        An atom of the territory whose territory variables are all consumed
        by this label can no longer occur deeper; if it is not part of the
        label itself it must occur *here* to satisfy condition 1, so it is
        parked as a width-1 child (never increasing the decomposition
        width for k ≥ 1).
        """
        still_open = frozenset().union(*remaining) if remaining else frozenset()
        parked: list[QDNode] = []
        for a in self.atoms_of(territory):
            if a in label:
                continue
            if a.variables & still_open:
                continue  # survives into a child's territory
            # Exhausted here: territory part ⊆ var(S) and interface part ⊆
            # connector ⊆ var(S), so the singleton attaches legally.
            parked.append(QDNode({a}))
        return parked


def decompose_qw(
    query: ConjunctiveQuery, k: int, _retries: int = 3
) -> QueryDecomposition | None:
    """Find a validated pure query decomposition of width ≤ k, or ``None``.

    ``None`` certifies ``qw(Q) > k`` (the search space over-approximates
    pure decompositions — see module docstring).  A returned decomposition
    is always validated against Definition 3.1.
    """
    if k < 1:
        raise ValueError("width bound k must be at least 1")
    if not query.atoms:
        return None
    banned: frozenset[Atom] = frozenset()
    for _ in range(_retries):
        search = _QWSearch(query, k, banned)
        root = search.solve(query.variables, frozenset(), frozenset())
        if root is None:
            return None if not banned else _fail_ambiguous(query, k)
        qd = QueryDecomposition(query, root)
        problems = qd.validate()
        if not problems:
            return qd
        # Retry with the atoms involved in condition-2 violations banned
        # from reuse (see module docstring).
        reused = _disconnected_atoms(qd)
        if not reused or reused <= banned:
            return _fail_ambiguous(query, k)
        banned = banned | reused
    return _fail_ambiguous(query, k)


def _fail_ambiguous(query: ConjunctiveQuery, k: int) -> None:
    raise DecompositionError(
        f"query-width search for {query.name} at k={k} found a candidate "
        "tree but could not extract a valid witness; result is ambiguous"
    )


def _disconnected_atoms(qd: QueryDecomposition) -> frozenset[Atom]:
    """Atoms whose occurrence sets violate condition 2 in *qd*."""
    from ..graphs import trees

    bad: set[Atom] = set()
    all_nodes = qd.nodes
    for a in qd.query.atoms:
        marked = [n for n in all_nodes if a in n.label]
        if len(marked) > 1 and not trees.induces_connected_subtree(
            qd.root, qd._children, marked
        ):
            bad.add(a)
    return frozenset(bad)


def has_query_width_at_most(query: ConjunctiveQuery, k: int) -> bool:
    """Decide ``qw(Q) ≤ k`` (exact; exponential — small queries only)."""
    return decompose_qw(query, k) is not None


def query_width(
    query: ConjunctiveQuery, max_k: int | None = None
) -> tuple[int, QueryDecomposition]:
    """Compute ``qw(Q)`` with a validated optimal-width witness.

    Acyclic queries short-circuit through the join tree (``qw = 1`` iff
    acyclic, §3.1); otherwise widths 2, 3, ... are tried in order.
    """
    if not query.atoms:
        raise ValueError("query width of an empty query is undefined")
    jt = join_tree(query)
    if jt is not None:
        return 1, _qd_from_join_tree(query, jt)
    limit = max_k if max_k is not None else len(query.atoms)
    for k in range(2, limit + 1):
        qd = decompose_qw(query, k)
        if qd is not None:
            return k, qd
    raise ValueError(f"no query decomposition of width ≤ {limit} found")


def _qd_from_join_tree(query: ConjunctiveQuery, jt) -> QueryDecomposition:
    """A join tree is a width-1 pure query decomposition (§3.1)."""

    def build(atom: Atom) -> QDNode:
        return QDNode({atom}, (build(c) for c in jt.children(atom)))

    return QueryDecomposition(query, build(jt.root))
