"""Acyclicity testing and join-tree construction via GYO reduction (§2.1).

A conjunctive query is *acyclic* iff its hypergraph is acyclic in the
standard database-theoretic sense, iff it admits a join tree [3, 4].  The
classic Graham / Yu–Özsoyoğlu (GYO) reduction decides this:

repeat until no rule applies
    (a) *ear vertex*: delete a vertex that occurs in exactly one hyperedge;
    (b) *contained edge*: delete a hyperedge whose (current) vertex set is
        a subset of another surviving hyperedge.

The query is acyclic iff the reduction erases every hyperedge but one.
Recording, for each edge deleted by rule (b), the surviving edge that
contained it yields a join tree (the deleted atom becomes a child of the
containing atom).  Disconnected acyclic queries reduce fully as well: each
isolated vertex is an ear, so edges shrink to ∅ and are absorbed by rule
(b); the resulting tree simply joins the components at arbitrary points,
which never violates the connectedness condition because distinct
components share no variables.

The linear-time algorithm of Tarjan–Yannakakis [39] exists; this O(n²·m)
implementation is simpler and ample for the paper-scale inputs, and its
output is validated by :meth:`JoinTree.validate` in the test suite.
"""

from __future__ import annotations

from .atoms import Atom, Variable
from .jointree import JoinTree
from .query import ConjunctiveQuery


def gyo_reduction(
    query: ConjunctiveQuery,
) -> tuple[bool, dict[Atom, Atom], list[str]]:
    """Run the GYO reduction.

    Returns a triple ``(acyclic, parent, trace)`` where *parent* maps each
    atom deleted by the containment rule to its absorbing atom, and *trace*
    is a human-readable log of reduction steps (used by the examples and
    by debugging tests).
    """
    atoms = list(query.atoms)
    live_vars: dict[Atom, set[Variable]] = {a: set(a.variables) for a in atoms}
    alive: list[Atom] = list(atoms)
    parent: dict[Atom, Atom] = {}
    trace: list[str] = []

    changed = True
    while changed and len(alive) > 1:
        changed = False
        # Rule (a): remove ear vertices (vertices in exactly one live edge).
        occurrence: dict[Variable, list[Atom]] = {}
        for a in alive:
            for v in live_vars[a]:
                occurrence.setdefault(v, []).append(a)
        for v, owners in occurrence.items():
            if len(owners) == 1:
                live_vars[owners[0]].discard(v)
                trace.append(f"ear vertex {v} removed from {owners[0]}")
                changed = True
        # Rule (b): remove edges contained in another live edge.
        for a in list(alive):
            if len(alive) == 1:
                break
            for b in alive:
                if a is b:
                    continue
                if live_vars[a] <= live_vars[b]:
                    alive.remove(a)
                    parent[a] = b
                    trace.append(f"edge {a} absorbed into {b}")
                    changed = True
                    break
    return len(alive) == 1, parent, trace


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """True iff *query* is acyclic (has a join tree).  Paper §2.1."""
    if not query.atoms:
        return True
    acyclic, _, _ = gyo_reduction(query)
    return acyclic


def join_tree(query: ConjunctiveQuery) -> JoinTree | None:
    """Compute a join tree of *query*, or ``None`` if the query is cyclic.

    The tree is extracted from the GYO parent links: the last surviving
    atom is the root, and every absorbed atom hangs below its absorber.
    """
    if not query.atoms:
        return None
    acyclic, parent, _ = gyo_reduction(query)
    if not acyclic:
        return None
    children: dict[Atom, list[Atom]] = {}
    root: Atom | None = None
    for a in query.atoms:
        if a in parent:
            children.setdefault(parent[a], []).append(a)
        else:
            root = a
    assert root is not None  # exactly one survivor when acyclic
    return JoinTree(root, {k: tuple(v) for k, v in children.items()})
