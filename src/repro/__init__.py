"""repro: Hypertree Decompositions and Tractable Queries.

A from-scratch reproduction of Gottlob, Leone & Scarcello (PODS'99 /
JCSS 2002).  See README.md for a tour and DESIGN.md for the system map.
"""

from ._errors import (
    BudgetExceeded,
    DatalogError,
    DecompositionError,
    EvaluationError,
    ParseError,
    ReproError,
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
)
from .core import *  # noqa: F401,F403 -- curated in core/__init__.py
from .core import __all__ as _core_all
from .db import (
    ExecutionContext,
    ProcessBackend,
    SequentialBackend,
    ShardedRelation,
    ThreadBackend,
    parallel_boolean_eval,
    parallel_enumerate_answers,
    parallel_full_reduce,
)
from .engine import BatchResult, Engine, EvalResult, PlanCache, fingerprint
from .heuristics import (
    PortfolioResult,
    decompose,
    greedy_upper_bound,
    lower_bound,
)
from .incremental import (
    AnswerDelta,
    Delta,
    LiveEngine,
    MaterializedView,
    ViewHandle,
)
from .obs import (
    FlightRecorder,
    MetricsRegistry,
    Profile,
    SamplingProfiler,
    Tracer,
    current_profiler,
    current_tracer,
    get_flight_recorder,
    get_registry,
    profiling,
    tracing,
    write_chrome_trace,
    write_speedscope,
)
__version__ = "1.10.0"

# After __version__: the server advertises it in the hello handshake.
from .serve import (  # noqa: E402
    QueryServer,
    ServeClient,
    ServerThread,
    serve_in_thread,
)

__all__ = [
    "AnswerDelta",
    "BatchResult",
    "BudgetExceeded",
    "DatalogError",
    "DecompositionError",
    "Delta",
    "Engine",
    "EvalResult",
    "EvaluationError",
    "ExecutionContext",
    "FlightRecorder",
    "LiveEngine",
    "MaterializedView",
    "MetricsRegistry",
    "ParseError",
    "PlanCache",
    "PortfolioResult",
    "Profile",
    "ProcessBackend",
    "QueryServer",
    "ReproError",
    "SamplingProfiler",
    "SchemaError",
    "SequentialBackend",
    "ServeClient",
    "ServerThread",
    "ShardedRelation",
    "ThreadBackend",
    "Tracer",
    "UnknownAttributeError",
    "UnknownRelationError",
    "ViewHandle",
    "__version__",
    "current_profiler",
    "current_tracer",
    "decompose",
    "fingerprint",
    "get_flight_recorder",
    "get_registry",
    "greedy_upper_bound",
    "lower_bound",
    "parallel_boolean_eval",
    "parallel_enumerate_answers",
    "parallel_full_reduce",
    "profiling",
    "serve_in_thread",
    "tracing",
    "write_chrome_trace",
    "write_speedscope",
    *_core_all,
]
