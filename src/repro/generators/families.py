"""Parametric query families for scaling experiments (E13, E15, E17).

Each family realises one regime of the §6 comparison:

* :func:`cycle_query` — the n-cycle: hw = qw = 2 (n ≥ 4, constant) while
  biconnected/hinge widths grow with n;
* :func:`clique_query` — binary cliques: every structural measure grows;
* :func:`grid_query` — n×n grids: treewidth n, hw ~ n/2 + 1, both grow;
* :func:`hyperwheel_query` — wide atoms arranged in a cycle around a hub:
  constant hw with unbounded arity (primal-graph methods degrade);
* :func:`book_query` — triangle fan ("book"): cutset 1, constant hw;
* :func:`random_query` — Erdős–Rényi-style random bodies for fuzzing.
"""

from __future__ import annotations

import random

from ..core.atoms import Atom, Variable
from ..core.query import ConjunctiveQuery


def _q(body: list[Atom], name: str) -> ConjunctiveQuery:
    return ConjunctiveQuery(tuple(body), (), name)


def cycle_query(n: int, predicate: str = "e") -> ConjunctiveQuery:
    """The n-cycle ``e(X1,X2), e(X2,X3), ..., e(Xn,X1)`` (n ≥ 3)."""
    if n < 3:
        raise ValueError("cycles need at least 3 atoms")
    body = [
        Atom(predicate, (Variable(f"X{i}"), Variable(f"X{i % n + 1}")))
        for i in range(1, n + 1)
    ]
    return _q(body, f"cycle_{n}")


def path_query(n: int, predicate: str = "e") -> ConjunctiveQuery:
    """The acyclic n-edge path."""
    body = [
        Atom(predicate, (Variable(f"X{i}"), Variable(f"X{i+1}")))
        for i in range(1, n + 1)
    ]
    return _q(body, f"path_{n}")


def clique_query(n: int, predicate: str = "e") -> ConjunctiveQuery:
    """All ``n·(n−1)/2`` binary atoms over n variables."""
    body = [
        Atom(predicate, (Variable(f"X{i}"), Variable(f"X{j}")))
        for i in range(1, n + 1)
        for j in range(i + 1, n + 1)
    ]
    return _q(body, f"clique_{n}")


def grid_query(n: int, predicate: str = "e") -> ConjunctiveQuery:
    """The n×n grid of binary atoms (treewidth n)."""
    body = []
    for x in range(n):
        for y in range(n):
            if x + 1 < n:
                body.append(
                    Atom(predicate, (Variable(f"V{x}_{y}"), Variable(f"V{x+1}_{y}")))
                )
            if y + 1 < n:
                body.append(
                    Atom(predicate, (Variable(f"V{x}_{y}"), Variable(f"V{x}_{y+1}")))
                )
    return _q(body, f"grid_{n}")


def hyperwheel_query(n: int, arity: int = 4) -> ConjunctiveQuery:
    """n wide atoms around a hub: atom i covers the hub H plus a block of
    ``arity−1`` rim variables shared with atom i+1.

    Every pair of consecutive rim blocks overlaps, giving a cyclic primal
    graph with large cliques (so primal-graph methods scale with *arity*)
    while ``hw`` stays ≤ 2.
    """
    if n < 3 or arity < 2:
        raise ValueError("need n ≥ 3 atoms of arity ≥ 2")
    rim = arity - 1
    body = []
    for i in range(n):
        block = [Variable(f"R{(i * (rim - 1) + j) % (n * (rim - 1))}") for j in range(rim)] \
            if rim > 1 else [Variable(f"R{i}")]
        body.append(Atom("w", tuple([Variable("H")] + block)))
    return _q(body, f"hyperwheel_{n}_{arity}")


def book_query(pages: int) -> ConjunctiveQuery:
    """A "book": *pages* triangles sharing the spine edge (X, Y).

    Cycle cutset 1 (cut X or Y), hw = qw = 2, biconnected width grows.
    """
    body = [Atom("spine", (Variable("X"), Variable("Y")))]
    for i in range(pages):
        p = Variable(f"P{i}")
        body.append(Atom("e", (Variable("X"), p)))
        body.append(Atom("e", (Variable("Y"), p)))
    return _q(body, f"book_{pages}")


def random_query(
    n_atoms: int,
    n_variables: int,
    max_arity: int = 3,
    seed: int = 0,
    connected: bool = True,
) -> ConjunctiveQuery:
    """A random conjunctive query (used heavily by the property tests).

    Predicates are all distinct (``p0..``), so any relation pattern can be
    realised by a database.  With *connected*, each atom after the first
    reuses at least one previously seen variable.
    """
    rng = random.Random(seed)
    variables = [Variable(f"X{i}") for i in range(n_variables)]
    body: list[Atom] = []
    seen: list[Variable] = []
    for i in range(n_atoms):
        arity = rng.randint(1, max_arity)
        chosen: list[Variable] = []
        if connected and seen:
            chosen.append(rng.choice(seen))
        while len(chosen) < arity:
            chosen.append(rng.choice(variables))
        chosen = list(dict.fromkeys(chosen))
        rng.shuffle(chosen)
        body.append(Atom(f"p{i}", tuple(chosen)))
        for v in chosen:
            if v not in seen:
                seen.append(v)
    return _q(body, f"rand_{n_atoms}_{n_variables}_{seed}")
