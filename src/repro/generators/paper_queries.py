"""The paper's running-example queries, transcribed verbatim.

Every query the paper analyses is available here as a zero-argument
constructor, plus the parameterised family ``Qₙ`` of Theorem 6.2.  These
are the ground truth for the reproduction experiments:

========  =======================================  ==========================
Function  Paper reference                          Known facts reproduced
========  =======================================  ==========================
``q1``    Example 1.1, Q1 (student/parent cycle)   cyclic; qw = 2; hw = 2
``q2``    Example 1.1, Q2 (professor's child)      acyclic (Fig. 1 join tree)
``q3``    Example 2.1, Q3                          acyclic (Fig. 3 join tree)
``q4``    Example 3.2, Q4                          cyclic; qw = 2 (Fig. 4)
``q5``    Example 3.5, Q5 (running example)        qw = 3 (Fig. 5); hw = 2
                                                   (Fig. 6b) — Theorem 6.1(b)
``qn``    Theorem 6.2, Qₙ                          qw = hw = 1; tw(VAIG) = n
========  =======================================  ==========================
"""

from __future__ import annotations

from ..core.parser import parse_query
from ..core.query import ConjunctiveQuery


def q1() -> ConjunctiveQuery:
    """Q1 (Example 1.1): is some student enrolled in a course taught by a
    parent?  Cyclic; the paper's first 2-width decompositions (Figs. 2, 6a).
    """
    return parse_query(
        "ans() :- enrolled(S, C, R), teaches(P, C, A), parent(P, S).",
        name="Q1",
    )


def q2() -> ConjunctiveQuery:
    """Q2 (Example 1.1): is there a professor with a child enrolled in some
    course?  Acyclic; its join tree is Fig. 1."""
    return parse_query(
        "ans() :- teaches(P, C, A), enrolled(S, C2, R), parent(P, S).",
        name="Q2",
    )


def q3() -> ConjunctiveQuery:
    """Q3 (Example 2.1); acyclic, join tree in Fig. 3."""
    return parse_query(
        "ans() :- r(Y, Z), g(X, Y), s1(Y, Z, U), s2(Z, U, W), t1(Y, Z), t2(Z, U).",
        name="Q3",
    )


def q3_shared_predicates() -> ConjunctiveQuery:
    """Q3 exactly as printed (both ``s`` atoms share a predicate name, as do
    both ``t`` atoms) — exercises repeated predicates in one body."""
    return parse_query(
        "ans() :- r(Y, Z), g(X, Y), s(Y, Z, U), s(Z, U, W), t(Y, Z), t(Z, U).",
        name="Q3",
    )


def q4() -> ConjunctiveQuery:
    """Q4 (Example 3.2): cyclic with query-width 2 (pure decomposition in
    Fig. 4)."""
    return parse_query(
        "ans() :- s1(Y, Z, U), g(X, Y), t1(Z, X), s2(Z, W, X), t2(Y, Z).",
        name="Q4",
    )


def q5() -> ConjunctiveQuery:
    """Q5 (Example 3.5) — the paper's running example.

    ``qw(Q5) = 3`` (Fig. 5; no width-2 query decomposition exists, §3.3)
    while ``hw(Q5) = 2`` (Fig. 6b) — the separating witness of
    Theorem 6.1(b).
    """
    return parse_query(
        "ans() :- a(S, X, X1, C, F), b(S, Y, Y1, C1, F1), c(C, C1, Z), "
        "d(X, Z), e(Y, Z), f(F, F1, Z1), g(X1, Z1), h(Y1, Z1), "
        "j(J, X, Y, X1, Y1).",
        name="Q5",
    )


def qn(n: int) -> ConjunctiveQuery:
    """The Theorem 6.2 family ``Qₙ``: ``n`` atoms
    ``q(X1..Xn, Yi)`` sharing the ``X`` block.

    Query-width and hypertree-width are 1 (star-shaped join tree rooted at
    the first atom) while the treewidth of the variable-atom incidence
    graph is ``n`` — unbounded treewidth at constant (hyper)width.
    """
    if n < 1:
        raise ValueError("Qn is defined for n >= 1")
    xs = ", ".join(f"X{i}" for i in range(1, n + 1))
    body = ", ".join(f"q({xs}, Y{j})" for j in range(1, n + 1))
    return parse_query(f"ans() :- {body}.", name=f"Q_{n}")


def all_named_queries() -> dict[str, ConjunctiveQuery]:
    """The fixed corpus used by cross-validation tests and experiments."""
    return {
        "Q1": q1(),
        "Q2": q2(),
        "Q3": q3(),
        "Q4": q4(),
        "Q5": q5(),
    }
