"""Database-instance generators for tests, examples and benchmarks.

All generators are deterministic given a seed.  Two families matter:

* :func:`random_database` — independent uniform tuples per relation; with
  ``plant_answer=True`` a satisfying substitution is planted so Boolean
  queries are guaranteed true (useful when measuring evaluation cost on
  "yes" instances, where naive joins cannot shortcut).
* :func:`university_database` — the Example 1.1 schema
  (``enrolled``/``teaches``/``parent``) with controllable incidence of
  students taught by their own parents, used by the quickstart example and
  the Q1/Q2 experiments.
"""

from __future__ import annotations

import random
from ..core.atoms import Variable
from ..core.query import ConjunctiveQuery
from ..db.database import Database


def random_database(
    query: ConjunctiveQuery,
    domain_size: int,
    tuples_per_relation: int,
    seed: int = 0,
    plant_answer: bool = False,
) -> Database:
    """A random database matching the query's schema.

    Values are integers from ``range(domain_size)``.  With *plant_answer*,
    one uniformly random substitution θ is chosen and the facts
    ``{r_i(u_i θ)}`` are added, making the Boolean query true.
    """
    rng = random.Random(seed)
    db = Database()
    arities = query.arities
    for predicate in sorted(arities):
        arity = arities[predicate]
        for _ in range(tuples_per_relation):
            db.add_fact(
                predicate,
                *(rng.randrange(domain_size) for _ in range(arity)),
            )
    if plant_answer:
        theta = {
            v: rng.randrange(domain_size)
            for v in sorted(query.variables, key=lambda v: v.name)
        }
        for atom in query.atoms:
            values = [
                theta[t] if isinstance(t, Variable) else t.value
                for t in atom.terms
            ]
            db.add_fact(atom.predicate, *values)
    return db


def university_database(
    n_persons: int = 40,
    n_courses: int = 12,
    n_enrollments: int = 80,
    n_teaching: int = 20,
    parent_teacher_pairs: int = 2,
    seed: int = 7,
) -> Database:
    """The Example 1.1 scenario.

    Persons ``p0..``, courses ``c0..``; ``parent`` links consecutive
    persons; *parent_teacher_pairs* plants situations where a student is
    enrolled in a course taught by their own parent — the pattern Q1 asks
    for.
    """
    rng = random.Random(seed)
    db = Database()
    persons = [f"p{i}" for i in range(n_persons)]
    courses = [f"c{i}" for i in range(n_courses)]
    dates = [f"2026-0{m}-01" for m in range(1, 7)]

    for i in range(1, n_persons):
        if rng.random() < 0.6:
            db.add_fact("parent", persons[rng.randrange(i)], persons[i])
    for _ in range(n_enrollments):
        db.add_fact(
            "enrolled",
            rng.choice(persons),
            rng.choice(courses),
            rng.choice(dates),
        )
    for _ in range(n_teaching):
        db.add_fact(
            "teaches", rng.choice(persons), rng.choice(courses), "yes"
        )
    for j in range(parent_teacher_pairs):
        parent, child = f"prof{j}", f"kid{j}"
        course = rng.choice(courses)
        db.add_fact("parent", parent, child)
        db.add_fact("teaches", parent, course, "yes")
        db.add_fact("enrolled", child, course, rng.choice(dates))
    return db


def grid_database(
    query: ConjunctiveQuery, side: int, seed: int = 0
) -> Database:
    """Binary relations forming a *side × side* grid graph, one per
    predicate — dense enough that cyclic queries have many embeddings."""
    rng = random.Random(seed)
    db = Database()
    nodes = [(x, y) for x in range(side) for y in range(side)]
    ids = {node: i for i, node in enumerate(nodes)}
    edges = []
    for (x, y) in nodes:
        if x + 1 < side:
            edges.append((ids[(x, y)], ids[(x + 1, y)]))
        if y + 1 < side:
            edges.append((ids[(x, y)], ids[(x, y + 1)]))
    for predicate, arity in sorted(query.arities.items()):
        if arity != 2:
            raise ValueError("grid_database serves binary predicates only")
        for (u, v) in edges:
            db.add_fact(predicate, u, v)
            db.add_fact(predicate, v, u)
        rng.shuffle(edges)
    return db
