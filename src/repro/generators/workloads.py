"""Database and workload generators for tests, examples and benchmarks.

All generators are deterministic given a seed.  Three families matter:

* :func:`random_database` — independent uniform tuples per relation; with
  ``plant_answer=True`` a satisfying substitution is planted so Boolean
  queries are guaranteed true (useful when measuring evaluation cost on
  "yes" instances, where naive joins cannot shortcut).
* :func:`university_database` — the Example 1.1 schema
  (``enrolled``/``teaches``/``parent``) with controllable incidence of
  students taught by their own parents, used by the quickstart example and
  the Q1/Q2 experiments.
* :func:`query_workload` — many queries sharing few structural *shapes*
  (each an independent renaming of a base query), the repeated-traffic
  regime that the engine's plan cache amortises (experiment E22).
* :func:`update_workload` — seeded streams of mixed insert/delete
  :class:`repro.incremental.Delta` batches (configurable batch size,
  delete ratio, value skew, re-insertion pressure), the streaming regime
  the incremental subsystem maintains (experiment E23).
* :func:`assign_weights` — seeded, skew-aware per-fact weights (costs
  for the ``mincost`` semiring, probabilities for ``prob``); also
  reachable through ``random_database(..., weights=...)``.
"""

from __future__ import annotations

import random
from ..core.atoms import Atom, Variable
from ..core.query import ConjunctiveQuery
from ..db.database import Database


def random_database(
    query: ConjunctiveQuery,
    domain_size: int,
    tuples_per_relation: int,
    seed: int = 0,
    plant_answer: bool = False,
    weights: str | None = None,
    weight_skew: float = 0.0,
) -> Database:
    """A random database matching the query's schema.

    Values are integers from ``range(domain_size)``.  With *plant_answer*,
    one uniformly random substitution θ is chosen and the facts
    ``{r_i(u_i θ)}`` are added, making the Boolean query true.

    *weights* (``"cost"`` or ``"prob"``) attaches seeded per-fact weights
    via :func:`assign_weights` for the min-cost/probability semiring
    workloads; *weight_skew* is forwarded.
    """
    rng = random.Random(seed)
    db = Database()
    arities = query.arities
    for predicate in sorted(arities):
        arity = arities[predicate]
        for _ in range(tuples_per_relation):
            db.add_fact(
                predicate,
                *(rng.randrange(domain_size) for _ in range(arity)),
            )
    if plant_answer:
        theta = {
            v: rng.randrange(domain_size)
            for v in sorted(query.variables, key=lambda v: v.name)
        }
        for atom in query.atoms:
            values = [
                theta[t] if isinstance(t, Variable) else t.value
                for t in atom.terms
            ]
            db.add_fact(atom.predicate, *values)
    if weights is not None:
        assign_weights(db, kind=weights, skew=weight_skew, seed=seed)
    return db


def assign_weights(
    db: Database,
    kind: str = "cost",
    skew: float = 0.0,
    seed: int = 0,
    low: float = 0.0,
    high: float = 10.0,
) -> Database:
    """Seeded per-fact weights for the weighted semirings (in place).

    ``kind="cost"`` draws costs from ``[low, high)`` for ``mincost``
    evaluation; ``kind="prob"`` draws probabilities from ``(0, 1]`` for
    the ``prob`` semiring.  *skew* in ``[0, 1)`` concentrates the draw —
    towards cheap facts for costs, towards near-certain facts for
    probabilities (``0`` = uniform) — mirroring the value skew knob of
    :func:`update_workload`.  Deterministic given *seed*: facts are
    visited in sorted order, so the same database gets the same weights
    regardless of insertion order.  Returns *db* for chaining.
    """
    if kind not in ("cost", "prob"):
        raise ValueError(f"unknown weight kind {kind!r}; use 'cost' or 'prob'")
    rng = random.Random(seed)
    for predicate in sorted(db.predicates()):
        for row in sorted(db.rows(predicate), key=repr):
            # skew > 0 pushes u towards 0 (same shaping as pick_value).
            u = rng.random() ** (1.0 + 4.0 * max(0.0, skew))
            if kind == "cost":
                db.set_weight(predicate, row, low + (high - low) * u)
            else:
                db.set_weight(predicate, row, 1.0 - 0.95 * u)
    return db


def university_database(
    n_persons: int = 40,
    n_courses: int = 12,
    n_enrollments: int = 80,
    n_teaching: int = 20,
    parent_teacher_pairs: int = 2,
    seed: int = 7,
) -> Database:
    """The Example 1.1 scenario.

    Persons ``p0..``, courses ``c0..``; ``parent`` links consecutive
    persons; *parent_teacher_pairs* plants situations where a student is
    enrolled in a course taught by their own parent — the pattern Q1 asks
    for.
    """
    rng = random.Random(seed)
    db = Database()
    persons = [f"p{i}" for i in range(n_persons)]
    courses = [f"c{i}" for i in range(n_courses)]
    dates = [f"2026-0{m}-01" for m in range(1, 7)]

    for i in range(1, n_persons):
        if rng.random() < 0.6:
            db.add_fact("parent", persons[rng.randrange(i)], persons[i])
    for _ in range(n_enrollments):
        db.add_fact(
            "enrolled",
            rng.choice(persons),
            rng.choice(courses),
            rng.choice(dates),
        )
    for _ in range(n_teaching):
        db.add_fact(
            "teaches", rng.choice(persons), rng.choice(courses), "yes"
        )
    for j in range(parent_teacher_pairs):
        parent, child = f"prof{j}", f"kid{j}"
        course = rng.choice(courses)
        db.add_fact("parent", parent, child)
        db.add_fact("teaches", parent, course, "yes")
        db.add_fact("enrolled", child, course, rng.choice(dates))
    return db


def renamed_variant(
    query: ConjunctiveQuery,
    seed: int = 0,
    rename_predicates: bool = True,
) -> ConjunctiveQuery:
    """A structurally identical copy of *query* under random renaming.

    Variables and (optionally) predicates are renamed by fresh bijections
    and the body atoms are permuted, so the result is isomorphic to
    *query* — same hypergraph shape, different surface syntax.  Head terms
    are renamed consistently.  This is the engine's cache-hit scenario:
    :func:`repro.engine.fingerprint.fingerprint` maps both queries to the
    same key.
    """
    rng = random.Random(seed)
    variables = sorted(query.variables, key=lambda v: v.name)
    targets = list(range(len(variables)))
    rng.shuffle(targets)
    var_map: dict[Variable, Variable] = {
        v: Variable(f"W{t}") for v, t in zip(variables, targets)
    }
    predicates = sorted(query.predicates)
    pred_targets = list(range(len(predicates)))
    rng.shuffle(pred_targets)
    pred_map = {
        p: (f"r{t}_{seed}" if rename_predicates else p)
        for p, t in zip(predicates, pred_targets)
    }
    body = [
        Atom(pred_map[a.predicate], a.rename(var_map).terms)
        for a in query.atoms
    ]
    rng.shuffle(body)
    head = tuple(
        var_map.get(t, t) if isinstance(t, Variable) else t
        for t in query.head_terms
    )
    return ConjunctiveQuery(tuple(body), head, f"{query.name}~{seed}")


def query_workload(
    n_queries: int,
    n_shapes: int,
    seed: int = 0,
    shapes: list[ConjunctiveQuery] | None = None,
    with_heads: bool = True,
) -> list[ConjunctiveQuery]:
    """*n_queries* queries drawn from *n_shapes* structural shapes.

    Each query is an independent random renaming (variables, predicates,
    atom order) of one of the base shapes, cycled round-robin — so a
    shape-keyed plan cache sees at most *n_shapes* distinct fingerprints
    no matter how large the workload.  With *with_heads*, every query
    projects onto its two lexicographically first variables (one for
    single-variable shapes), making answers non-trivial relations.
    """
    from .families import book_query, cycle_query, path_query, random_query

    n_shapes = max(1, n_shapes)
    if shapes is None:
        catalogue = [
            cycle_query(4),
            path_query(3),
            book_query(2),
            cycle_query(5),
            path_query(5),
            book_query(3),
            cycle_query(6),
            random_query(n_atoms=4, n_variables=5, seed=11),
            random_query(n_atoms=5, n_variables=5, seed=23),
            random_query(n_atoms=4, n_variables=6, seed=37),
        ]
        shapes = catalogue
    shapes = shapes[:n_shapes]
    if not shapes:
        raise ValueError("query_workload needs at least one base shape")
    workload: list[ConjunctiveQuery] = []
    for i in range(n_queries):
        base = shapes[i % len(shapes)]
        variant = renamed_variant(base, seed=seed * 10_000 + i)
        if with_heads:
            head = sorted(variant.variables, key=lambda v: v.name)[:2]
            variant = variant.with_head(tuple(head))
        workload.append(variant)
    return workload


def update_workload(
    db: Database,
    n_batches: int,
    batch_size: int = 8,
    delete_ratio: float = 0.3,
    skew: float = 0.0,
    reinsert_ratio: float = 0.2,
    seed: int = 0,
) -> list:
    """A seeded stream of mixed insert/delete batches against *db*'s schema.

    Returns ``n_batches`` :class:`repro.incremental.Delta` batches of (up
    to) *batch_size* changes each, simulated against a shadow of the
    database so the stream stays meaningful: deletes always target rows
    that exist at that point of the stream, and with probability
    *reinsert_ratio* an insert resurrects a recently deleted row — the
    re-insertion pressure that drives support counters through zero and
    back.  Inserted values are drawn from the active domain; *skew* in
    ``[0, 1)`` biases the draw towards a small hot set of values
    (``0`` = uniform).  *db* itself is never mutated.
    """
    from ..incremental.delta import Delta

    if not 0.0 <= delete_ratio <= 1.0:
        raise ValueError("delete_ratio must be within [0, 1]")
    rng = random.Random(seed)
    shadow: dict[str, list[tuple]] = {
        p: sorted(db.rows(p), key=repr) for p in db.predicates()
    }
    membership: dict[str, set[tuple]] = {p: set(r) for p, r in shadow.items()}
    arities = {p: db.arity(p) for p in db.predicates()}
    if not arities:
        raise ValueError("update_workload needs at least one declared relation")
    domain = sorted(db.universe, key=repr) or list(range(10))
    graveyard: list[tuple[str, tuple]] = []
    predicates = sorted(arities)

    def pick_value():
        # skew > 0 concentrates picks near the front of the domain list.
        index = int(len(domain) * rng.random() ** (1.0 + 4.0 * skew))
        return domain[min(index, len(domain) - 1)]

    batches: list[Delta] = []
    for _ in range(n_batches):
        ops: list[tuple[str, tuple, int]] = []
        # Each row is touched at most once per batch, so the batch's
        # normalised Delta is exactly its op sequence and replays
        # effectively against the batch-start state.
        touched: set[tuple[str, tuple]] = set()
        for _ in range(batch_size):
            deletable = [p for p in predicates if shadow[p]]
            if deletable and rng.random() < delete_ratio:
                predicate = rng.choice(deletable)
                rows = shadow[predicate]
                i = rng.randrange(len(rows))
                row = rows[i]
                if (predicate, row) in touched:
                    continue
                rows[i] = rows[-1]
                rows.pop()
                membership[predicate].discard(row)
                graveyard.append((predicate, row))
                touched.add((predicate, row))
                ops.append((predicate, row, -1))
                continue
            if graveyard and rng.random() < reinsert_ratio:
                i = rng.randrange(len(graveyard))
                predicate, row = graveyard[i]
                if (predicate, row) in touched:
                    continue
                graveyard[i] = graveyard[-1]
                graveyard.pop()
            else:
                predicate = rng.choice(predicates)
                row = tuple(
                    pick_value() for _ in range(arities[predicate])
                )
                if (predicate, row) in touched:
                    continue
                # A fresh draw may resurrect a buried row by accident;
                # purge it from the graveyard so a later "reinsert" pick
                # cannot emit an ineffective duplicate insert.
                if (predicate, row) in graveyard:
                    graveyard.remove((predicate, row))
            if row not in membership[predicate]:
                membership[predicate].add(row)
                shadow[predicate].append(row)
            touched.add((predicate, row))
            ops.append((predicate, row, 1))
        batches.append(Delta.from_changes(ops))
    return batches


def grid_database(
    query: ConjunctiveQuery, side: int, seed: int = 0
) -> Database:
    """Binary relations forming a *side × side* grid graph, one per
    predicate — dense enough that cyclic queries have many embeddings."""
    rng = random.Random(seed)
    db = Database()
    nodes = [(x, y) for x in range(side) for y in range(side)]
    ids = {node: i for i, node in enumerate(nodes)}
    edges = []
    for (x, y) in nodes:
        if x + 1 < side:
            edges.append((ids[(x, y)], ids[(x + 1, y)]))
        if y + 1 < side:
            edges.append((ids[(x, y)], ids[(x, y + 1)]))
    for predicate, arity in sorted(query.arities.items()):
        if arity != 2:
            raise ValueError("grid_database serves binary predicates only")
        for (u, v) in edges:
            db.add_fact(predicate, u, v)
            db.add_fact(predicate, v, u)
        rng.shuffle(edges)
    return db
