"""Query, hypergraph and database generators for tests and benchmarks."""

from . import paper_queries

__all__ = ["paper_queries"]
