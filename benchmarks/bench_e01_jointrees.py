"""E01/E03 — join-tree construction (Figs. 1 and 3).

Times the GYO reduction on the paper's acyclic queries and on growing
acyclic paths (the linear-ish regime of §2.1 property 2).
"""

import pytest

from repro.core.acyclicity import is_acyclic, join_tree
from repro.generators.families import path_query
from repro.generators.paper_queries import q2, q3


def test_join_tree_q2(benchmark):
    q = q2()
    jt = benchmark(join_tree, q)
    assert jt is not None and jt.is_valid
    benchmark.extra_info["nodes"] = len(jt)


def test_join_tree_q3(benchmark):
    q = q3()
    jt = benchmark(join_tree, q)
    assert jt is not None and jt.is_valid


@pytest.mark.parametrize("n", [10, 20, 40, 80])
def test_join_tree_paths(benchmark, n):
    q = path_query(n)
    jt = benchmark(join_tree, q)
    assert jt is not None
    benchmark.extra_info["atoms"] = n


@pytest.mark.parametrize("n", [10, 40])
def test_acyclicity_decision(benchmark, n):
    q = path_query(n)
    assert benchmark(is_acyclic, q)
