"""E02/E04/E05 — exact query-width search (Figs. 2, 4, 5).

Times both directions of the NP-hard search: finding the paper's width-2
witnesses for Q1/Q4, and exhaustively refuting width 2 for Q5 (the §3.3
claim behind qw(Q5) = 3).
"""

import pytest

from repro.core.qwsearch import decompose_qw, query_width
from repro.generators.paper_queries import q1, q4, q5


def test_qw_q1(benchmark):
    q = q1()
    width, qd = benchmark(query_width, q)
    assert width == 2 and qd.is_valid
    benchmark.extra_info["qw"] = width


def test_qw_q4(benchmark):
    q = q4()
    width, qd = benchmark(query_width, q)
    assert width == 2
    benchmark.extra_info["qw"] = width


def test_qw_q5_refute_width_2(benchmark):
    q = q5()
    result = benchmark(decompose_qw, q, 2)
    assert result is None
    benchmark.extra_info["claim"] = "no width-2 query decomposition (§3.3)"


def test_qw_q5_find_width_3(benchmark):
    q = q5()
    qd = benchmark(decompose_qw, q, 3)
    assert qd is not None and qd.width <= 3 and qd.is_valid
    benchmark.extra_info["qw"] = 3
