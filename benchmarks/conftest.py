"""Benchmark-suite configuration.

Every file ``bench_eXX_*.py`` regenerates one experiment of the paper (see
DESIGN.md §2 and EXPERIMENTS.md) and times its computational core with
pytest-benchmark.  The printed rows/series themselves come from
``python -m repro.experiments <id>``; each benchmark stores the headline
measured values in ``benchmark.extra_info`` so they appear in the saved
benchmark JSON as well.

The ``bench_*`` suites with ``run_benchmark`` entry points (engine,
parallel, backends, incremental, obs) additionally take a ``bench_seed``
fixture so every workload generator is seeded deterministically: the
``--bench-seed`` pytest option wins, then the ``REPRO_BENCH_SEED``
environment variable, then 0.  Deterministic seeds are what make the
count-valued records in the unified bench schema
(:mod:`repro.obs.history`) exactly comparable across runs and machines.
"""

import os

import pytest

collect_ignore_glob: list[str] = []

#: Environment fallback for the workload seed (CI sets neither and gets 0).
SEED_ENV_VAR = "REPRO_BENCH_SEED"


def pytest_addoption(parser):
    parser.addoption(
        "--bench-seed",
        type=int,
        default=None,
        help="seed for benchmark workload generators "
        f"(default: ${SEED_ENV_VAR} or 0)",
    )


@pytest.fixture
def bench_seed(request) -> int:
    """The deterministic seed every benchmark workload generator uses."""
    option = request.config.getoption("--bench-seed", default=None)
    if option is not None:
        return int(option)
    return int(os.environ.get(SEED_ENV_VAR, "0"))
