"""Benchmark-suite configuration.

Every file ``bench_eXX_*.py`` regenerates one experiment of the paper (see
DESIGN.md §2 and EXPERIMENTS.md) and times its computational core with
pytest-benchmark.  The printed rows/series themselves come from
``python -m repro.experiments <id>``; each benchmark stores the headline
measured values in ``benchmark.extra_info`` so they appear in the saved
benchmark JSON as well.
"""

collect_ignore_glob: list[str] = []
