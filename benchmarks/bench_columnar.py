"""Columnar benchmark: vectorised kernels vs the row engine.

Measures the three batch kernels of :mod:`repro.db.columnar` against
their row-engine counterparts on a 100k-row workload, plus the bytes
the process backend puts on the wire per broadcast:

* **semijoin sweep** — ``L(a,b) ⋉ R(b,c)`` at selectivities 0.5 / 0.1 /
  0.02 (the sparse end is where the acceptance gate sits: the row
  kernel pays per-row interpreter overhead for every *dropped* row,
  the columnar kernel one vectorised membership mask);
* **join** — a fan-out hash join (~10 matches per key), row probe loop
  vs the direct-address CSR kernel;
* **project** — single-column distinct;
* **scatter bytes** — one broadcast of the semijoin partner to process
  workers: pickle codec (row) vs shared-memory descriptor (columnar).
  The descriptor is O(schema), not O(rows), so the reduction factor is
  typically in the thousands; the gate only demands 5x.

Correctness is a hard gate: every columnar result is compared to the
row oracle's rows before any time is reported.

Usage::

    PYTHONPATH=src python benchmarks/bench_columnar.py \
        --rows 100000 --repeats 5 --out BENCH_columnar.json

Also collectable by pytest (same asserts, the acceptance thresholds).
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import time

from repro.db import ProcessBackend, Relation, ShardedRelation, to_columnar
from repro.db.annotated import join_dispatch
from repro.db.shm import shm_available
from repro.obs import get_registry
from repro.obs.history import record

#: Suite tag for the unified bench-record schema (repro bench record/diff).
SUITE = "columnar"

#: The acceptance gates: columnar semijoin at least this much faster on
#: the sparse sweep; broadcast scatter bytes at least this much smaller.
KERNEL_SPEEDUP_GATE = 2.0
SCATTER_REDUCTION_GATE = 5.0

SELECTIVITIES = (0.5, 0.1, 0.02)


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall time in milliseconds (gc fenced: a prior run's
    garbage must not bill the kernel under test)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        gc.collect()
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best * 1e3


def _semijoin_pair(n_rows: int, selectivity: float, seed: int):
    """L(a,b) with unique b-keys; R(b,c) hitting ``selectivity`` of them."""
    rng = random.Random(seed)
    left = Relation.from_rows(
        ("a", "b"), [(rng.randrange(n_rows), i) for i in range(n_rows)], "L"
    )
    n_keys = max(1, int(n_rows * selectivity))
    keys = rng.sample(range(n_rows), n_keys)
    right = Relation.from_rows(("b", "c"), [(k, k % 97) for k in keys], "R")
    return left, right


def _join_pair(n_rows: int, seed: int):
    """Fan-out join: ~10 left rows per key, one right row per key."""
    rng = random.Random(seed)
    domain = max(1, n_rows // 10)
    left = Relation.from_rows(
        ("a", "b"), [(i, rng.randrange(domain)) for i in range(n_rows)], "L"
    )
    right = Relation.from_rows(
        ("b", "c"), [(k, k % 89) for k in range(domain)], "R"
    )
    return left, right


def _scatter_bytes(left, partner) -> int:
    """Bytes the backend scatters to broadcast *partner* once."""
    registry = get_registry()

    def counter() -> float:
        return registry.snapshot()["counters"].get("backend.scatter_bytes", 0)

    backend = ProcessBackend(workers=2)
    try:
        sharded = ShardedRelation.shard(left, "a", 4, backend=backend)
        before = counter()
        sharded.semijoin(partner)
        return int(counter() - before)
    finally:
        backend.close()


def run_benchmark(n_rows: int = 100_000, repeats: int = 5, seed: int = 0) -> dict:
    """One full kernel comparison; returns the JSON-ready result dict."""
    records: list[dict] = []
    semijoin = {}
    for selectivity in SELECTIVITIES:
        left, right = _semijoin_pair(n_rows, selectivity, seed)
        cl, cr = to_columnar(left), to_columnar(right)
        expect = left.semijoin(right)
        assert cl.semijoin(cr).rows == expect.rows
        row_ms = _best_of(lambda: left.semijoin(right), repeats)
        col_ms = _best_of(lambda: cl.semijoin(cr), repeats)
        speedup = row_ms / col_ms if col_ms else float("inf")
        semijoin[selectivity] = {
            "row_ms": round(row_ms, 3),
            "columnar_ms": round(col_ms, 3),
            "speedup": round(speedup, 2),
            "survivors": len(expect),
        }
        records.append(
            record(f"semijoin.sel{selectivity}.speedup", speedup, "x",
                   better="higher", tolerance=0.5)
        )
        # Seed-deterministic, so compared exactly even across machines
        # (unlike the env-bound "x" records above).
        records.append(
            record(f"semijoin.sel{selectivity}.survivors", len(expect),
                   "count", better="higher", tolerance=0.0)
        )

    left, right = _join_pair(n_rows, seed)
    cl, cr = to_columnar(left), to_columnar(right)
    expect = join_dispatch(left, right)
    assert cl.join(cr).rows == expect.rows
    join_row_ms = _best_of(lambda: join_dispatch(left, right), repeats)
    join_col_ms = _best_of(lambda: cl.join(cr), repeats)
    join_speedup = join_row_ms / join_col_ms if join_col_ms else float("inf")
    records.append(
        record("join.fanout.speedup", join_speedup, "x",
               better="higher", tolerance=0.5)
    )
    records.append(
        record("join.fanout.output_rows", len(expect), "count",
               better="higher", tolerance=0.0)
    )

    assert cl.project(["b"]).rows == left.project(["b"]).rows
    project_row_ms = _best_of(lambda: left.project(["b"]), repeats)
    project_col_ms = _best_of(lambda: cl.project(["b"]), repeats)
    project_speedup = (
        project_row_ms / project_col_ms if project_col_ms else float("inf")
    )
    records.append(
        record("project.distinct.speedup", project_speedup, "x",
               better="higher", tolerance=0.5)
    )

    scatter = None
    if shm_available():
        # One broadcast of the (large) semijoin partner per transport.
        left, right = _semijoin_pair(n_rows, 0.5, seed)
        row_bytes = _scatter_bytes(to_columnar(left), right)
        shm_bytes = _scatter_bytes(to_columnar(left), to_columnar(right))
        reduction = row_bytes / shm_bytes if shm_bytes else float("inf")
        scatter = {
            "row_codec_bytes": row_bytes,
            "shm_descriptor_bytes": shm_bytes,
            "reduction": round(reduction, 1),
        }
        records.append(
            record("scatter.broadcast.reduction", reduction, "x",
                   better="higher", tolerance=0.5)
        )

    return {
        "suite": SUITE,
        "records": records,
        "benchmark": "columnar_kernels",
        "rows": n_rows,
        "repeats": repeats,
        "numpy": _numpy_version(),
        "semijoin": semijoin,
        "join": {
            "row_ms": round(join_row_ms, 3),
            "columnar_ms": round(join_col_ms, 3),
            "speedup": round(join_speedup, 2),
            "output_rows": len(expect),
        },
        "project": {
            "row_ms": round(project_row_ms, 3),
            "columnar_ms": round(project_col_ms, 3),
            "speedup": round(project_speedup, 2),
        },
        "scatter": scatter,
    }


def _numpy_version() -> str | None:
    try:
        import numpy

        return numpy.__version__
    except ImportError:  # pragma: no cover - numpy is in the standard image
        return None


def test_bench_columnar_kernel_gates(bench_seed):
    """Pytest smoke: the acceptance gates at full scale — the sparse
    semijoin sweep at least 2x, the broadcast scatter at least 5x
    smaller.  Both hold with a wide margin (typically 4-9x and >1000x),
    so the thresholds are noise-proof."""
    result = run_benchmark(n_rows=100_000, repeats=3, seed=bench_seed)
    assert result["suite"] == SUITE and result["records"]
    sparse = result["semijoin"][min(SELECTIVITIES)]
    assert sparse["speedup"] >= KERNEL_SPEEDUP_GATE, sparse
    if result["scatter"] is not None:
        assert result["scatter"]["reduction"] >= SCATTER_REDUCTION_GATE, (
            result["scatter"]
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=100_000)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_columnar.json")
    args = parser.parse_args(argv)

    result = run_benchmark(
        n_rows=args.rows, repeats=args.repeats, seed=args.seed
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
    print(json.dumps(result, indent=2, sort_keys=True))
    sparse = result["semijoin"][min(SELECTIVITIES)]
    scatter = result["scatter"]
    print(
        f"\nsparse semijoin {sparse['speedup']}x, join "
        f"{result['join']['speedup']}x, project "
        f"{result['project']['speedup']}x"
        + (
            f"; scatter {scatter['reduction']}x smaller"
            if scatter
            else "; scatter: no shared memory here"
        )
        + f"; wrote {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
