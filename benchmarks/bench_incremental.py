"""Incremental benchmark: delta maintenance vs full recomputation.

Registers a path view over a ``--rows``-row database (10k by default,
the ISSUE acceptance scale) and replays seeded update streams at several
batch sizes, timing :meth:`repro.incremental.LiveEngine.apply` against a
from-scratch ``Engine.execute`` with a *warm* plan cache (so the
comparison isolates evaluation, not decomposition).  Correctness is a
hard gate: after the timed phase every stream is cross-checked
answer-for-answer against recomputation.

A second section micro-benchmarks the trusted ``Relation`` constructor
(the hot-path satellite): constructing an n-row relation with and
without the per-row schema re-validation that every join/semijoin result
used to pay.

The headline numbers go to ``--out`` (``BENCH_incremental.json``); CI
runs a smaller smoke configuration and uploads the JSON as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py \
        --rows 10000 --batches 20 --out BENCH_incremental.json

Also collectable by pytest (a smaller smoke run with the same asserts).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.db.database import Database
from repro.db.relation import Relation
from repro.engine import Engine
from repro.generators.families import path_query
from repro.generators.workloads import update_workload
from repro.incremental import LiveEngine
from repro.obs.history import record

#: Suite tag for the unified bench-record schema (repro bench record/diff).
SUITE = "incremental"


def _query():
    q = path_query(3)
    head = tuple(sorted(q.variables, key=lambda v: v.name)[:2])
    return q.with_head(head)


def _database(n_rows: int, seed: int = 0) -> Database:
    """Overlapping chains over a domain matching the row count (average
    out-degree ~1): the answer set stays linear in the database, so the
    recompute baseline measures evaluation, not output explosion."""
    import random

    rng = random.Random(seed)
    domain = max(64, n_rows)
    db = Database()
    while db.tuple_count() < n_rows:
        a = rng.randrange(domain)
        db.add_fact("e", a, (a + rng.randrange(1, 4)) % domain)
    return db


def _timed_stream(live: LiveEngine, stream) -> float:
    started = time.perf_counter()
    for delta in stream:
        live.apply(delta)
    return time.perf_counter() - started


def _timed_recompute(engine: Engine, query, db: Database, stream) -> float:
    started = time.perf_counter()
    for delta in stream:
        db.apply(delta)
        engine.execute(query, db)
    return time.perf_counter() - started


def run_benchmark(
    n_rows: int = 10_000,
    n_batches: int = 20,
    delta_sizes: tuple[int, ...] = (1, 10, 100),
    seed: int = 0,
) -> dict:
    """One full comparison run; returns the JSON-ready result dict."""
    query = _query()
    comparisons = []
    for batch_size in delta_sizes:
        # Two identical copies of database + stream: one maintained, one
        # recomputed, so both sides see exactly the same updates.
        db_live = _database(n_rows, seed)
        db_batch = _database(n_rows, seed)
        assert db_live.rows("e") == db_batch.rows("e")
        stream = update_workload(
            db_live, n_batches, batch_size=batch_size,
            delete_ratio=0.4, reinsert_ratio=0.5, seed=seed + batch_size,
        )

        live = LiveEngine(db=db_live)
        handle = live.register(query)
        loaded_touched = handle.stats.notes["touched_rows"]

        recompute_engine = Engine()
        recompute_engine.execute(query, db_batch)  # warm the plan cache

        maintain_seconds = _timed_stream(live, stream)
        recompute_seconds = _timed_recompute(
            recompute_engine, query, db_batch, stream
        )

        # Hard gate: the maintained view equals recomputation at the end
        # of the stream (the hypothesis suite checks every batch).
        final = recompute_engine.execute(query, db_batch)
        assert handle.answers().rows == final.answer.rows
        assert db_live.rows("e") == db_batch.rows("e")

        touched = handle.stats.notes["touched_rows"] - loaded_touched
        comparisons.append(
            {
                "delta_size": batch_size,
                "batches": n_batches,
                "maintain_seconds": round(maintain_seconds, 6),
                "recompute_seconds": round(recompute_seconds, 6),
                "speedup": round(recompute_seconds / maintain_seconds, 2),
                "touched_rows_per_batch": round(touched / n_batches, 1),
                "answers": len(handle.answers()),
            }
        )

    checked_s, trusted_s = _trusted_constructor_micro(n_rows)
    records = []
    for c in comparisons:
        records.append(
            record(f"answers.delta{c['delta_size']}", c["answers"], "rows",
                   better="higher", tolerance=0.0)
        )
        records.append(
            record(f"touched_rows_per_batch.delta{c['delta_size']}",
                   c["touched_rows_per_batch"], "rows",
                   better="lower", tolerance=0.0)
        )
        records.append(
            record(f"speedup.delta{c['delta_size']}", c["speedup"], "x",
                   better="higher", tolerance=0.75)
        )
    records.append(
        record("trusted_ctor_speedup",
               round(checked_s / trusted_s, 2) if trusted_s else 0.0, "x",
               better="higher", tolerance=0.75)
    )
    return {
        "suite": SUITE,
        "records": records,
        "benchmark": "incremental_maintenance_vs_recompute",
        "rows": n_rows,
        "query": str(query),
        "comparisons": comparisons,
        "speedup_single_tuple": comparisons[0]["speedup"],
        "relation_trusted_ctor": {
            "rows": n_rows,
            "checked_seconds": round(checked_s, 6),
            "trusted_seconds": round(trusted_s, 6),
            "speedup": round(checked_s / trusted_s, 2) if trusted_s else None,
        },
    }


def _trusted_constructor_micro(n_rows: int, repeats: int = 30) -> tuple[float, float]:
    """Seconds to construct an *n_rows* relation with full row validation
    vs the trusted constructor (what every operator result now uses)."""
    rows = frozenset((i, i + 1, i + 2) for i in range(n_rows))
    attrs = ("a", "b", "c")
    started = time.perf_counter()
    for _ in range(repeats):
        Relation(attrs, rows)
    checked = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(repeats):
        Relation.trusted(attrs, rows)
    trusted = time.perf_counter() - started
    return checked, trusted


def test_bench_incremental_smoke(bench_seed):
    """Pytest smoke: the acceptance numbers at reduced scale still hold —
    single-tuple maintenance at least 5x faster than recomputation."""
    result = run_benchmark(
        n_rows=4000, n_batches=8, delta_sizes=(1, 10), seed=bench_seed
    )
    assert result["speedup_single_tuple"] >= 5.0, result
    assert result["suite"] == SUITE and result["records"]
    single = result["comparisons"][0]
    assert single["touched_rows_per_batch"] < result["rows"] / 10
    micro = result["relation_trusted_ctor"]
    assert micro["trusted_seconds"] < micro["checked_seconds"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=10_000)
    parser.add_argument("--batches", type=int, default=20)
    parser.add_argument(
        "--delta-sizes", type=int, nargs="+", default=[1, 10, 100],
        dest="delta_sizes",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_incremental.json")
    args = parser.parse_args(argv)

    result = run_benchmark(
        n_rows=args.rows,
        n_batches=args.batches,
        delta_sizes=tuple(args.delta_sizes),
        seed=args.seed,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
    print(json.dumps(result, indent=2, sort_keys=True))
    single = result["comparisons"][0]
    print(
        f"\nsingle-tuple deltas on {result['rows']} rows: maintenance "
        f"{single['maintain_seconds']}s vs recompute "
        f"{single['recompute_seconds']}s ({single['speedup']}x); "
        f"wrote {args.out}"
    )
    # The correctness gates are the deterministic asserts inside
    # run_benchmark; the acceptance-level speedup only warns here so a
    # noisy CI runner cannot turn a scheduling hiccup into a failure
    # (the pytest smoke asserts it at controlled scale).
    if result["speedup_single_tuple"] < 5.0:
        print(
            "WARNING: single-tuple maintenance speedup below 5x",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
