"""E08 — the Lemma 4.6 transformation ⟨Q′, DB′, JT⟩ (Fig. 8).

Times the transformation on Q5 as the database grows, recording the
measured transformed size against the ``(‖Q‖+‖HD‖)·r^k`` bound.
"""

import pytest

from repro.core.detkdecomp import hypertree_width
from repro.db.evaluate import lemma46_transform
from repro.generators.paper_queries import q5
from repro.generators.workloads import random_database


@pytest.mark.parametrize("tuples", [16, 32, 64, 128])
def test_lemma46_transform_q5(benchmark, tuples):
    q = q5()
    width, hd = hypertree_width(q)
    db = random_database(q, domain_size=8, tuples_per_relation=tuples, seed=1)
    result = benchmark(lemma46_transform, q, db, hd)
    r = db.max_relation_size()
    bound = (len(q.atoms) + len(hd)) * r**width
    assert result.size() <= 40 * bound
    benchmark.extra_info["r"] = r
    benchmark.extra_info["size"] = result.size()
    benchmark.extra_info["bound"] = bound


def test_lemma46_join_tree_valid(benchmark):
    q = q5()
    _, hd = hypertree_width(q)
    db = random_database(q, domain_size=6, tuples_per_relation=32, seed=2)
    result = lemma46_transform(q, db, hd)
    violations = benchmark(result.jt.validate, result.qprime)
    assert violations == []
