"""Serving benchmark: latency under closed- and open-loop load.

Boots a real :class:`repro.serve.QueryServer` on a background thread and
drives it over TCP with the load generator, in three phases:

* **closed loop, headroom** — 4 workers against 8 execution slots: the
  server should shed *nothing* (the shed count is an exact record that
  compares across environments, unlike the wall-clock latencies);
* **open loop** — fixed-rate arrivals sized to the connection pool, the
  latency numbers honest against coordinated omission;
* **saturation** — a 1-slot, 0-queue server hammered by 8 concurrent
  workers: overload must surface as *typed* sheds, never as hangs or
  untyped failures, and the queue must stay within its bound.

Both steady-state phases reuse one server and two renamed-isomorphic
query shapes from different tenants, so the decomposition count at the
end (exactly 2) is itself a record: plans are shared across tenants and
load models.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        --workers 4 --requests 25 --rate 80 --out BENCH_serve.json

Also collectable by pytest (a smaller smoke run with the same asserts).
"""

from __future__ import annotations

import argparse
import json

from repro.db.database import Database
from repro.obs.history import record
from repro.serve import run_closed_loop, run_open_loop, serve_in_thread

#: Suite tag for the unified bench-record schema (repro bench record/diff).
SUITE = "serve"

#: Two renamed-isomorphic shapes over the shared relation: one
#: fingerprint, one decomposition, many tenants.
QUERY_A = "ans(X, Z) :- e(X, Y), e(Y, Z)"
QUERY_B = "ans(A, C) :- e(A, B), e(B, C)"

#: One genuinely different shape, so the cache must hold two plans.
QUERY_PATH3 = "ans(W, Z) :- e(W, X), e(X, Y), e(Y, Z)"


def _seed_db(n_rows: int, seed: int = 0) -> Database:
    import random

    rng = random.Random(seed)
    domain = max(32, n_rows // 2)
    db = Database()
    while db.tuple_count() < n_rows:
        a = rng.randrange(domain)
        db.add_fact("e", a, (a + rng.randrange(1, 4)) % domain)
    return db


def run_benchmark(
    n_rows: int = 600,
    workers: int = 4,
    requests_per_worker: int = 25,
    rate: float = 80.0,
    duration: float = 1.5,
    seed: int = 0,
) -> dict:
    """One full serving run; returns the JSON-ready result dict."""
    seed_db = _seed_db(n_rows, seed)
    queries = [QUERY_A, QUERY_B, QUERY_PATH3]
    records: list[dict] = []

    # --- steady state: closed then open loop against one warm server.
    with serve_in_thread(seed_db=seed_db, max_inflight=8) as st:
        closed = run_closed_loop(
            st.host, st.port, "bench-closed", queries,
            workers=workers, requests_per_worker=requests_per_worker,
        )
        # The pool is the concurrency bound, so sized at max_inflight the
        # open loop can queue on the wire but never overflow admission.
        opened = run_open_loop(
            st.host, st.port, "bench-open", queries,
            rate=rate, duration=duration, concurrency=8,
        )
        decompositions = st.server.engine.decompositions
        admission = st.server.admission.snapshot()

    # Correctness gates: with headroom nothing sheds, nothing errors,
    # and the two tenants' five query texts cost exactly two plans.
    assert closed.shed == 0 and closed.errors == 0, closed.summary()
    assert opened.shed == 0 and opened.errors == 0, opened.summary()
    assert decompositions == 2, decompositions
    assert admission["admitted"] == closed.ok + opened.ok

    records += closed.records("closed")
    records += opened.records("open")
    records.append(
        record("plan.decompositions", decompositions, "count",
               better="lower", tolerance=0.0)
    )
    records.append(
        record("closed.cache_hit_rate",
               round(closed.cache_hits / closed.ok, 3) if closed.ok else 0.0,
               "fraction", better="higher", tolerance=0.1)
    )

    # --- saturation: 1 slot, no queue, 8 concurrent closed-loop workers.
    with serve_in_thread(
        seed_db=seed_db, max_inflight=1, max_queue=0
    ) as st:
        sat = run_closed_loop(
            st.host, st.port, "bench-sat", queries,
            workers=8, requests_per_worker=10,
        )
        sat_admission = st.server.admission.snapshot()

    # Overload is *typed*: every offered request resolved as ok or as a
    # classified outcome — none hung, none raised untyped — and with
    # eight workers racing one slot, shedding must actually occur.
    accounted = sat.ok + sat.shed + sat.rate_limited + sat.budget_exceeded
    assert accounted == sat.offered and sat.errors == 0, sat.summary()
    assert sat.shed > 0, sat.summary()
    # A request that sees a free slot transiently counts as queued while
    # it grabs the semaphore, so the bound is max_queue + 1, not 0.
    assert sat_admission["max_queued"] <= 1, sat_admission

    records.append(
        record("saturation.shed_observed", 1.0 if sat.shed else 0.0,
               "count", better="higher", tolerance=0.0)
    )
    records.append(
        record("saturation.all_outcomes_typed",
               1.0 if accounted == sat.offered else 0.0,
               "count", better="higher", tolerance=0.0)
    )
    records.append(
        record("saturation.p99", sat.percentile(99) * 1e3, "ms",
               better="lower", tolerance=1.0)
    )

    return {
        "suite": SUITE,
        "records": records,
        "benchmark": "serve_load",
        "rows": n_rows,
        "queries": queries,
        "closed": closed.summary(),
        "open": opened.summary(),
        "saturation": {**sat.summary(), "admission": sat_admission},
        "decompositions": decompositions,
        "histograms": {
            "closed": closed.histogram(),
            "open": opened.histogram(),
        },
    }


def test_bench_serve_smoke(bench_seed):
    """Pytest smoke: the acceptance shape at reduced scale — zero sheds
    with headroom, typed sheds at saturation, two plans total."""
    result = run_benchmark(
        n_rows=200, workers=2, requests_per_worker=8,
        rate=30.0, duration=0.5, seed=bench_seed,
    )
    assert result["suite"] == SUITE and result["records"]
    assert result["closed"]["shed"] == 0
    assert result["open"]["shed"] == 0
    assert result["saturation"]["shed"] > 0
    assert result["decompositions"] == 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=600)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--requests", type=int, default=25)
    parser.add_argument("--rate", type=float, default=80.0)
    parser.add_argument("--duration", type=float, default=1.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    result = run_benchmark(
        n_rows=args.rows,
        workers=args.workers,
        requests_per_worker=args.requests,
        rate=args.rate,
        duration=args.duration,
        seed=args.seed,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
    print(json.dumps({k: v for k, v in result.items()
                      if k != "histograms"}, indent=2, sort_keys=True))
    closed, opened = result["closed"], result["open"]
    print(
        f"\nclosed p99 {closed['p99_ms']}ms @ {closed['throughput_qps']} "
        f"qps; open p99 {opened['p99_ms']}ms; saturation shed "
        f"{result['saturation']['shed']}/{result['saturation']['offered']}"
        f"; wrote {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
