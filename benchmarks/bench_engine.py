"""Engine benchmark: amortised throughput of decompose-once, execute-many.

Runs the E22-style workload at benchmark scale — ``--queries`` generated
queries sharing ``--shapes`` structural shapes, each against its own
random database — through three configurations:

* **cold** — plan-caching engine, empty cache (one decomposition per shape);
* **warm** — same engine, second pass (zero decompositions, asserted);
* **baseline** — per-query decompose-and-evaluate with the cache disabled,
  the hand-wired pipeline callers used before ``repro.engine`` existed.

Every warm-pass answer is cross-checked against the naive join baseline.
The headline numbers (throughput, cache hit rate, widths, speedup) are
written to a machine-readable JSON file — CI runs this as a smoke step
and uploads ``BENCH_engine.json`` as an artifact so the performance
trajectory is tracked across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py \
        --queries 100 --shapes 8 --out BENCH_engine.json

Also collectable by pytest (a smaller smoke run with the same asserts).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.db.naive import naive_join_eval
from repro.engine import Engine, fingerprint
from repro.generators.workloads import query_workload, random_database
from repro.obs.history import record

#: Suite tag for the unified bench-record schema (repro bench record/diff).
SUITE = "engine"


def run_benchmark(
    n_queries: int = 100,
    n_shapes: int = 8,
    domain_size: int = 8,
    tuples_per_relation: int = 16,
    seed: int = 0,
) -> dict:
    """One full comparison run; returns the JSON-ready result dict."""
    workload = query_workload(n_queries, n_shapes, seed=seed)
    requests = [
        (q, random_database(q, domain_size, tuples_per_relation,
                            seed=seed * 100 + i, plant_answer=True))
        for i, q in enumerate(workload)
    ]
    shapes = len({fingerprint(q) for q in workload})
    assert shapes <= n_shapes

    engine = Engine(cache_size=max(64, n_shapes * 2))
    started = time.perf_counter()
    cold = engine.execute_many(requests, workers=1)
    cold_seconds = time.perf_counter() - started
    decompositions_cold = engine.decompositions

    started = time.perf_counter()
    warm = engine.execute_many(requests, workers=1)
    warm_seconds = time.perf_counter() - started
    decompositions_warm = engine.decompositions - decompositions_cold

    # Hard guarantees, not just numbers: the warm pass never searches.
    assert decompositions_warm == 0, decompositions_warm
    assert warm.cache_hits == n_queries and warm.cache_misses == 0
    for (q, db), result in zip(requests, warm.results):
        assert result.answer.rows == naive_join_eval(q, db).rows, q.name

    uncached = Engine(cache_size=0)
    started = time.perf_counter()
    baseline = uncached.execute_many(requests, workers=1)
    baseline_seconds = time.perf_counter() - started
    assert uncached.decompositions == n_queries
    assert baseline.failures == 0 and cold.failures == 0 and warm.failures == 0

    widths = sorted({r.width for r in warm.results})
    result = {
        "benchmark": "engine_amortized_throughput",
        "n_queries": n_queries,
        "n_shapes": shapes,
        "domain_size": domain_size,
        "tuples_per_relation": tuples_per_relation,
        "widths": widths,
        "decompositions": {
            "cold": decompositions_cold,
            "warm": decompositions_warm,
            "baseline": n_queries,
        },
        "cache": engine.cache.info(),
        "warm_hit_rate": warm.cache_hits / n_queries,
        "seconds": {
            "cold": round(cold_seconds, 4),
            "warm": round(warm_seconds, 4),
            "baseline": round(baseline_seconds, 4),
        },
        "throughput_qps": {
            "cold": round(n_queries / cold_seconds, 2),
            "warm": round(n_queries / warm_seconds, 2),
            "baseline": round(n_queries / baseline_seconds, 2),
        },
        "speedup_warm_vs_baseline": round(baseline_seconds / warm_seconds, 2),
        "warm_stats": warm.stats.as_row(),
    }
    result["suite"] = SUITE
    # Unified schema for repro bench record/diff.  Counts are exact under
    # the seeded workload (tolerance 0 — any drift is a real change);
    # wall-clock-derived records are env-bound and generously toleranced.
    result["records"] = [
        record("n_shapes", shapes, "count", better="lower", tolerance=0.0),
        record("decompositions_cold", decompositions_cold, "count",
               better="lower", tolerance=0.0),
        record("warm_hit_rate", result["warm_hit_rate"], "fraction",
               better="higher", tolerance=0.0),
        record("throughput_warm", result["throughput_qps"]["warm"], "qps",
               better="higher", tolerance=0.5),
        record("throughput_baseline", result["throughput_qps"]["baseline"],
               "qps", better="higher", tolerance=0.5),
        record("speedup_warm_vs_baseline",
               result["speedup_warm_vs_baseline"], "x",
               better="higher", tolerance=0.75),
    ]
    return result


def test_bench_engine_smoke(bench_seed):
    """Pytest smoke: a small run upholds every acceptance assertion."""
    result = run_benchmark(
        n_queries=40, n_shapes=5, tuples_per_relation=10, seed=bench_seed
    )
    assert result["decompositions"]["warm"] == 0
    assert result["warm_hit_rate"] == 1.0
    assert result["n_shapes"] <= 5
    assert result["suite"] == SUITE and result["records"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=100)
    parser.add_argument("--shapes", type=int, default=8)
    parser.add_argument("--domain", type=int, default=8)
    parser.add_argument("--tuples", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_engine.json")
    args = parser.parse_args(argv)

    result = run_benchmark(
        n_queries=args.queries,
        n_shapes=args.shapes,
        domain_size=args.domain,
        tuples_per_relation=args.tuples,
        seed=args.seed,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
    print(json.dumps(result, indent=2, sort_keys=True))
    print(
        f"\nwarm cached execution: {result['throughput_qps']['warm']} q/s vs "
        f"{result['throughput_qps']['baseline']} q/s per-query decompose "
        f"({result['speedup_warm_vs_baseline']}x); wrote {args.out}"
    )
    # The hard gates are the deterministic asserts inside run_benchmark
    # (zero warm decompositions, 100% hit rate, answers == naive).  The
    # wall-clock comparison is *data* — noisy CI runners must not turn a
    # scheduling hiccup into a build failure — so it only warns.
    if result["speedup_warm_vs_baseline"] <= 1.0:
        print("WARNING: cached execution did not beat the baseline", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
