"""E10/E18 — the hw ≤ k recognisers.

E10: the Appendix-B Datalog route (base-relation construction + WFS
evaluation) vs the direct det-k-decomp search on the same inputs.
E18: the candidate-pool ablation (strategies ``all`` vs ``relevant``).
"""

import pytest

from repro.core.detkdecomp import decompose_k
from repro.datalog.hw_program import build_hw_program, datalog_has_hw_at_most
from repro.generators.paper_queries import all_named_queries


@pytest.mark.parametrize("name,k", [("Q1", 2), ("Q4", 2), ("Q5", 2)])
def test_datalog_recogniser(benchmark, name, k):
    q = all_named_queries()[name]
    verdict = benchmark(datalog_has_hw_at_most, q, k)
    assert verdict is True
    benchmark.extra_info["k"] = k


@pytest.mark.parametrize("name,k", [("Q1", 2), ("Q4", 2), ("Q5", 2)])
def test_detk_recogniser(benchmark, name, k):
    q = all_named_queries()[name]
    hd = benchmark(decompose_k, q, k)
    assert hd is not None


def test_datalog_base_relation_construction(benchmark):
    q = all_named_queries()["Q5"]
    inst = benchmark(build_hw_program, q, 2)
    benchmark.extra_info["k_vertices"] = len(inst.edb["k_vertex"])
    benchmark.extra_info["meets_rows"] = len(inst.edb["meets_condition"])


@pytest.mark.parametrize("strategy", ["all", "relevant"])
def test_strategy_ablation_q5(benchmark, strategy):
    q = all_named_queries()["Q5"]
    hd = benchmark(decompose_k, q, 2, strategy)
    assert hd is not None
    benchmark.extra_info["strategy"] = strategy


@pytest.mark.parametrize("strategy", ["all", "relevant"])
def test_strategy_ablation_refutation(benchmark, strategy):
    q = all_named_queries()["Q5"]
    result = benchmark(decompose_k, q, 1, strategy)
    assert result is None
