"""Semiring benchmark: annotated evaluation vs its set-semantics detours.

Two comparisons on a seeded path workload, both answering "what does
asking the engine directly buy over computing the same thing from set
semantics by hand?":

* **count vs materialise-then-len** — ``Engine.count`` (one annotated
  evaluation folding ℕ multiplicities) against executing under set
  semantics and taking ``len()`` of the answer relation.  The two agree
  exactly when the head keeps every variable; with a projecting head the
  count is the bag total that materialise-then-len *cannot* see.
* **top-k vs enumerate-then-sort** — ``Engine.top_k`` (tropical
  evaluation + a k-smallest heap cut) against annotating every answer
  with its min-cost and fully sorting.

Correctness is a hard gate before any time is reported: the annotated
answer rows equal the set-semantics rows, the count total equals the
fold of the per-row annotations, and the top-k list is exactly the
first k of the full sort.

Usage::

    PYTHONPATH=src python benchmarks/bench_semiring.py \
        --rows 2000 --k 10 --seed 0 --out BENCH_semiring.json

Also collectable by pytest (same asserts at a smaller smoke scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_semiring.py -q
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.db.database import Database
from repro.engine import Engine
from repro.generators.families import path_query
from repro.generators.workloads import assign_weights
from repro.obs.history import record

#: Suite tag for the unified bench-record schema (repro bench record/diff).
SUITE = "semiring"


def _query():
    q = path_query(3)
    head = tuple(sorted(q.variables, key=lambda v: v.name)[:2])
    return q.with_head(head)


def _database(n_rows: int, seed: int = 0) -> Database:
    """Overlapping chains, average out-degree ~1 (the incremental
    benchmark's shape): answers stay linear in the database so the
    timings measure evaluation, not output explosion."""
    rng = random.Random(seed)
    domain = max(64, n_rows)
    db = Database()
    while db.tuple_count() < n_rows:
        a = rng.randrange(domain)
        db.add_fact("e", a, (a + rng.randrange(1, 4)) % domain)
    assign_weights(db, kind="cost", skew=0.3, seed=seed)
    return db


def _best_of(fn, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def run_benchmark(
    n_rows: int = 2_000, repeats: int = 3, k: int = 10, seed: int = 0
) -> dict:
    """One full comparison; returns the JSON-ready dict."""
    query = _query()
    db = _database(n_rows, seed)
    engine = Engine(backend="sequential")
    try:
        # Warm the plan cache for every tag so the timings compare
        # evaluation, not decomposition (promotion makes this one search).
        engine.execute(query, db)
        engine.execute(query, db, semiring="count")
        engine.execute(query, db, semiring="mincost")

        set_seconds, set_result = _best_of(
            lambda: engine.execute(query, db), repeats
        )
        len_answers = len(set_result.answer)
        count_seconds, counted = _best_of(
            lambda: engine.execute(query, db, semiring="count"), repeats
        )
        total = counted.answer.total()

        # Hard gates: same rows, and the total is the per-row fold.
        assert counted.answer.rows == set_result.answer.rows
        assert total == sum(counted.annotations.values())
        assert total >= len_answers

        sort_seconds, full_sort = _best_of(
            lambda: sorted(
                engine.execute(
                    query, db, semiring="mincost"
                ).annotations.items(),
                key=lambda item: (item[1][0], repr(item[0])),
            ),
            repeats,
        )
        topk_seconds, top = _best_of(
            lambda: engine.top_k(query, db, k=k), repeats
        )
        assert [(row, cost) for row, cost, _ in top] == [
            (row, value[0]) for row, value in full_sort[:k]
        ]

        count_vs_len = round(count_seconds / set_seconds, 3)
        topk_vs_sort = round(topk_seconds / sort_seconds, 3)
        promotions = engine.cache.snapshot()["promotions"]
    finally:
        engine.close()

    return {
        "suite": SUITE,
        "records": [
            record("answers.path_3", len_answers, "rows", better="higher",
                   tolerance=0.0),
            record("count_total.path_3", total, "count", better="higher",
                   tolerance=0.0),
            record("count_vs_len.path_3", count_vs_len, "x",
                   better="lower", tolerance=0.75),
            record("topk_vs_sort.path_3", topk_vs_sort, "x",
                   better="lower", tolerance=0.75),
        ],
        "benchmark": "semiring_vs_set_semantics_detours",
        "rows": n_rows,
        "repeats": repeats,
        "k": k,
        "seed": seed,
        "answers": len_answers,
        "count_total": total,
        "seconds": {
            "set_execute": round(set_seconds, 6),
            "count_execute": round(count_seconds, 6),
            "mincost_sort": round(sort_seconds, 6),
            "top_k": round(topk_seconds, 6),
        },
        "count_vs_len": count_vs_len,
        "topk_vs_sort": topk_vs_sort,
        "cache_promotions": promotions,
        "note": (
            "count_vs_len is annotated-count time over set-execute+len "
            "time (the annotated pass does strictly more work: it folds "
            "bag multiplicities set semantics discards).  topk_vs_sort "
            "is Engine.top_k time over mincost-evaluate+full-sort time."
        ),
    }


def test_bench_semiring_smoke(bench_seed):
    """Pytest gate: annotated rows == set rows, the ℕ total folds the
    annotations, top-k is the sorted prefix, and the plan cache shares
    the one decomposition across tags via promotion."""
    result = run_benchmark(n_rows=500, repeats=2, k=5, seed=bench_seed)
    assert result["count_total"] >= result["answers"] > 0
    assert result["cache_promotions"] >= 2
    assert result["suite"] == SUITE and result["records"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=2_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_semiring.json")
    args = parser.parse_args(argv)
    result = run_benchmark(
        n_rows=args.rows, repeats=args.repeats, k=args.k, seed=args.seed
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2)
    print(json.dumps(result, indent=2))
    print(f"\nwritten to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
