"""E11/E14 — the §7 machinery.

E14: the Lemma 7.3 strict-3PS construction across m (the O(m²+km) claim).
E11: building the Theorem 3.4 reduction query, solving the XC3S instance,
and validating the Fig.-11 decomposition built from the cover.
"""

import pytest

from repro.reductions.qw_hardness import build_reduction, decomposition_from_cover
from repro.reductions.three_ps import strict_3ps
from repro.reductions.xc3s import paper_running_example, random_instance


@pytest.mark.parametrize("m", [2, 4, 8, 16, 32])
def test_strict_3ps_construction(benchmark, m):
    system = benchmark(strict_3ps, m, 2)
    assert system.is_mk(m, 2)
    benchmark.extra_info["base_size"] = len(system.base)


@pytest.mark.parametrize("m", [2, 4, 8])
def test_strict_3ps_strictness_check(benchmark, m):
    system = strict_3ps(m, 2)
    assert benchmark(lambda: system.strictness_violations()) == []


def test_build_reduction_running_example(benchmark):
    instance = paper_running_example()
    red = benchmark(build_reduction, instance)
    benchmark.extra_info["atoms"] = len(red.query.atoms)


def test_xc3s_solver_running_example(benchmark):
    instance = paper_running_example()
    cover = benchmark(instance.exact_cover)
    assert cover == [1, 3]


@pytest.mark.parametrize("s,extra", [(2, 3), (3, 4), (4, 5)])
def test_xc3s_solver_random(benchmark, s, extra):
    instance = random_instance(s=s, extra_triples=extra, seed=1, solvable=True)
    cover = benchmark(instance.exact_cover)
    assert cover is not None


def test_fig11_decomposition_and_validation(benchmark):
    instance = paper_running_example()
    red = build_reduction(instance)
    cover = instance.exact_cover()

    def build_and_validate():
        qd = decomposition_from_cover(red, cover)
        return qd.validate()

    assert benchmark(build_and_validate) == []
