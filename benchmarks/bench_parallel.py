"""Parallel-kernel benchmark: sharded evaluation vs the seed kernel.

Measures the two Yannakakis phases separately on large acyclic workloads
(10k rows per relation by default — the ISSUE acceptance scale) built
from :mod:`repro.generators.workloads`:

* **full reduce** — the semijoin sweeps, the paper's tractability
  workhorse (Theorem 4.8 / Corollary 5.20 assume they stay cheap);
* **enumerate** — the output-polynomial join pass on top.

Three kernels run on identical freshly bound relations:

* ``seed`` — a faithful, frozen copy of the pre-fix sequential kernel,
  kept here as the baseline: it rebuilt every semijoin key set and every
  join hash table on each call, per-row generator tuples included;
* ``sequential`` — today's :mod:`repro.db.yannakakis` over memoised
  :class:`~repro.db.relation.Relation` indexes;
* ``parallel@w`` — the sharded kernel (:mod:`repro.db.parallel`) with
  ``w`` hash partitions over a ``w``-thread pool.

Correctness is a hard gate: every kernel must produce identical results
before any time is reported.  The headline number — asserted ≥ 2x by the
pytest smoke — is the 4-worker sharded kernel against the seed kernel on
the semijoin phase.  Note that per-operator wins (memoised indexes,
short-circuits, partition-wise probes) are what a GIL-bound CPython can
bank; thread-level scaling across the shard tasks additionally needs
free cores and a GIL-releasing runtime — the process-pool backend in
ROADMAP's open items.  ``cpu_count`` rides in the JSON so readers can
interpret the sweep.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        --rows 10000 --out BENCH_parallel.json

Also collectable by pytest (same asserts, same default scale).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.acyclicity import join_tree
from repro.core.atoms import Atom, Variable
from repro.core.query import ConjunctiveQuery
from repro.db import (
    bind_atom,
    enumerate_answers,
    full_reduce,
    parallel_enumerate_answers,
    parallel_full_reduce,
)
from repro.db.relation import Relation
from repro.generators.families import path_query
from repro.generators.workloads import random_database
from repro.obs.history import record

WORKER_SWEEP = (1, 2, 4)

#: Suite tag for the unified bench-record schema (repro bench record/diff).
SUITE = "parallel"


# -- the seed kernel, preserved verbatim as the baseline -------------------
#
# This is the sequential kernel as it stood before the hot-path fixes:
# `semijoin` rebuilt the probe key set from scratch on every call (one
# tuple allocation per row on both sides), `join` rebuilt its hash table
# per call, and nothing short-circuited on empty inputs.  Do not
# "improve" it — its whole point is to stay the fixed reference.


def _seed_semijoin(rel: Relation, other: Relation) -> Relation:
    shared = [a for a in rel.attributes if a in other._index_of]
    if not shared:
        return rel if other.rows else Relation.trusted(
            rel.attributes, frozenset(), rel.name
        )
    left_pos = [rel._position(a) for a in shared]
    right_pos = [other._position(a) for a in shared]
    keys = {tuple(row[p] for p in right_pos) for row in other.rows}
    rows = frozenset(
        row for row in rel.rows if tuple(row[p] for p in left_pos) in keys
    )
    return Relation.trusted(rel.attributes, rows, rel.name)


def _seed_join(rel: Relation, other: Relation) -> Relation:
    shared = [a for a in rel.attributes if a in other._index_of]
    left_pos = [rel._position(a) for a in shared]
    right_pos = [other._position(a) for a in shared]
    extra = [a for a in other.attributes if a not in rel._index_of]
    extra_pos = [other._position(a) for a in extra]
    if len(rel.rows) <= len(other.rows):
        build, probe = rel, other
        build_key, probe_key, build_is_left = left_pos, right_pos, True
    else:
        build, probe = other, rel
        build_key, probe_key, build_is_left = right_pos, left_pos, False
    table: dict = {}
    for row in build.rows:
        table.setdefault(tuple(row[p] for p in build_key), []).append(row)
    out_rows = set()
    for row in probe.rows:
        key = tuple(row[p] for p in probe_key)
        for match in table.get(key, ()):
            left_row = match if build_is_left else row
            right_row = row if build_is_left else match
            out_rows.add(left_row + tuple(right_row[p] for p in extra_pos))
    return Relation.trusted(
        rel.attributes + tuple(extra), frozenset(out_rows), rel.name
    )


def _seed_project(rel: Relation, attrs, name=None) -> Relation:
    positions = [rel._position(a) for a in attrs]
    rows = frozenset(tuple(row[p] for p in positions) for row in rel.rows)
    return Relation.trusted(tuple(attrs), rows, name or rel.name)


def seed_full_reduce(tree, relations):
    reduced = dict(relations)
    for node in tree.post_order():
        for child in tree.children(node):
            reduced[node] = _seed_semijoin(reduced[node], reduced[child])
    for node in tree.nodes:
        for child in tree.children(node):
            reduced[child] = _seed_semijoin(reduced[child], reduced[node])
    return reduced


def seed_enumerate(tree, relations, output):
    reduced = seed_full_reduce(tree, relations)
    out_set = set(output)
    partial, subtree = {}, {}
    for node in tree.post_order():
        rel = reduced[node]
        attrs_below = set(rel.attributes)
        for child in tree.children(node):
            attrs_below.update(subtree[child])
        keep = set(rel.attributes) | (attrs_below & out_set)
        for child in tree.children(node):
            rel = _seed_join(rel, partial[child])
            rel = _seed_project(rel, [a for a in rel.attributes if a in keep])
        partial[node] = rel
        subtree[node] = attrs_below
    return _seed_project(partial[tree.root], list(output), name="ans")


# -- workloads -------------------------------------------------------------


def star_query(n: int) -> ConjunctiveQuery:
    body = tuple(
        Atom("e", (Variable("C"), Variable(f"X{i}"))) for i in range(1, n + 1)
    )
    return ConjunctiveQuery(body, (), f"star_{n}")


def _workloads(rows: int, seed: int):
    for query in (path_query(3), path_query(5), star_query(5)):
        head = tuple(sorted(query.variables, key=lambda v: v.name)[:2])
        query = query.with_head(head)
        db = random_database(query, rows, rows, seed=seed)
        yield query.name, query, db


def _best_of(fn, bind, repeats: int):
    """Best wall time over *repeats* runs, re-binding fresh relations
    each time so memoisation cannot leak across repeats."""
    best, result = float("inf"), None
    for _ in range(repeats):
        rels = bind()
        started = time.perf_counter()
        result = fn(rels)
        best = min(best, time.perf_counter() - started)
    return best, result


def run_benchmark(
    rows: int = 10_000, repeats: int = 5, seed: int = 0
) -> dict:
    """One full comparison run; returns the JSON-ready result dict."""
    workloads = []
    for name, query, db in _workloads(rows, seed):
        tree = join_tree(query)
        output = tuple(v.name for v in query.head_terms)

        def bind():
            return {a: bind_atom(a, db) for a in query.atoms}

        reduce_times: dict[str, float] = {}
        enum_times: dict[str, float] = {}

        t, seed_reduced = _best_of(
            lambda rels: seed_full_reduce(tree, rels), bind, repeats
        )
        reduce_times["seed"] = t
        t, seq_reduced = _best_of(
            lambda rels: full_reduce(tree, rels), bind, repeats
        )
        reduce_times["sequential"] = t
        t, seed_answers = _best_of(
            lambda rels: seed_enumerate(tree, rels, output), bind, repeats
        )
        enum_times["seed"] = t
        t, seq_answers = _best_of(
            lambda rels: enumerate_answers(tree, rels, output), bind, repeats
        )
        enum_times["sequential"] = t

        # Hard correctness gates before any number is reported.
        for node in tree.nodes:
            assert seed_reduced[node].rows == seq_reduced[node].rows
        assert seed_answers.rows == seq_answers.rows

        for workers in WORKER_SWEEP:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                t, par_reduced = _best_of(
                    lambda rels: parallel_full_reduce(
                        tree, rels, n_shards=workers, pool=pool
                    ),
                    bind,
                    repeats,
                )
                reduce_times[f"parallel@{workers}"] = t
                t, par_answers = _best_of(
                    lambda rels: parallel_enumerate_answers(
                        tree, rels, output, n_shards=workers, pool=pool
                    ),
                    bind,
                    repeats,
                )
                enum_times[f"parallel@{workers}"] = t
            for node in tree.nodes:
                assert par_reduced[node].rows == seq_reduced[node].rows
            assert par_answers.rows == seq_answers.rows

        workloads.append(
            {
                "workload": name,
                "answers": len(seq_answers),
                "full_reduce_seconds": {
                    k: round(v, 6) for k, v in reduce_times.items()
                },
                "enumerate_seconds": {
                    k: round(v, 6) for k, v in enum_times.items()
                },
                "full_reduce_speedup_vs_seed": {
                    k: round(reduce_times["seed"] / v, 2)
                    for k, v in reduce_times.items()
                    if k != "seed"
                },
                "enumerate_speedup_vs_seed": {
                    k: round(enum_times["seed"] / v, 2)
                    for k, v in enum_times.items()
                    if k != "seed"
                },
            }
        )

    by_workload = {
        w["workload"]: w["full_reduce_speedup_vs_seed"]["parallel@4"]
        for w in workloads
    }
    # Unified schema: answer counts are exact under the seeded workload;
    # speedups are env-bound (they depend on cores) and loosely bounded.
    records = [
        record(f"answers.{w['workload']}", w["answers"], "rows",
               better="higher", tolerance=0.0)
        for w in workloads
    ]
    records.extend(
        record(f"speedup_seq_full_reduce.{w['workload']}",
               w["full_reduce_speedup_vs_seed"]["sequential"], "x",
               better="higher", tolerance=0.75)
        for w in workloads
    )
    records.append(
        record("best_speedup_at_4_workers", max(by_workload.values()), "x",
               better="higher", tolerance=0.75)
    )
    return {
        "suite": SUITE,
        "records": records,
        "benchmark": "parallel_sharded_kernel_vs_seed_kernel",
        "rows": rows,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "workloads": workloads,
        "speedup_at_4_workers_by_workload": by_workload,
        # The acceptance criterion asks for >= 2x on *a* 10k-row acyclic
        # workload; the headline is therefore the best workload — the
        # per-workload map above is the representative picture.
        "best_speedup_at_4_workers": max(by_workload.values()),
        "note": (
            "speedups are per-operator kernel gains (memoised indexes, "
            "short-circuits, partition-wise probes) over the pre-fix seed "
            "kernel; thread-level scaling of the shard tasks additionally "
            "requires free cores and a GIL-releasing runtime (see ROADMAP "
            "open items: process-pool backend)"
        ),
    }


def test_bench_parallel_smoke(bench_seed):
    """Pytest smoke: the ISSUE acceptance gate at full scale — the
    4-worker sharded kernel at least 2x over the seed sequential kernel
    on a 10k-row acyclic workload (and every kernel agreeing exactly,
    asserted inside run_benchmark).  Secondary thresholds are loose
    canaries, not performance claims: best-of-N timing keeps them
    stable, but a loaded CI runner still jitters, so they only catch
    outright regressions (the parallel path falling clearly behind the
    unoptimised seed kernel)."""
    result = run_benchmark(rows=10_000, repeats=5, seed=bench_seed)
    assert result["suite"] == SUITE and result["records"]
    assert result["best_speedup_at_4_workers"] >= 2.0, result
    for w in result["workloads"]:
        assert w["enumerate_speedup_vs_seed"]["parallel@4"] >= 0.8, w
        assert w["full_reduce_speedup_vs_seed"]["sequential"] >= 1.3, w


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=10_000)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args(argv)

    result = run_benchmark(
        rows=args.rows, repeats=args.repeats, seed=args.seed
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
    print(json.dumps(result, indent=2, sort_keys=True))
    print(
        f"\nsharded kernel @ 4 workers vs seed sequential kernel on "
        f"{result['rows']}-row workloads: "
        f"{result['speedup_at_4_workers_by_workload']} "
        f"(semijoin phase, best {result['best_speedup_at_4_workers']}x); "
        f"wrote {args.out}"
    )
    # Correctness gates are the asserts inside run_benchmark; the
    # speedup threshold only warns here so a noisy runner cannot turn a
    # scheduling hiccup into a red build (pytest asserts it at the
    # controlled smoke scale).
    if result["best_speedup_at_4_workers"] < 2.0:
        print(
            "WARNING: 4-worker speedup over the seed kernel below 2x",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
