"""E19/E20 — equivalent problems and alternative characterisations."""

import pytest

from repro.core.containment import contains, homomorphism
from repro.core.games import marshals_have_winning_strategy, marshals_width
from repro.core.mcs import is_acyclic_mcs
from repro.core.parser import parse_query
from repro.generators.families import cycle_query, path_query
from repro.generators.paper_queries import all_named_queries


def test_containment_triangle_path(benchmark):
    triangle = parse_query("e(X, Y), e(Y, Z), e(Z, X)")
    path = parse_query("e(A, B), e(B, C)")
    assert benchmark(contains, path, triangle) is True


def test_containment_cycles(benchmark):
    c3, c6 = cycle_query(3), cycle_query(6)
    assert benchmark(contains, c6, c3) is True  # C3 ⊑ C6


def test_homomorphism_search(benchmark):
    c3, c6 = cycle_query(3), cycle_query(6)
    witness = benchmark(homomorphism, c6, c3)
    assert witness is not None


@pytest.mark.parametrize("name", ["Q1", "Q5"])
def test_marshals_game(benchmark, name):
    q = all_named_queries()[name]
    strategy = benchmark(marshals_have_winning_strategy, q, 2)
    assert strategy is not None


def test_marshals_width_q5(benchmark):
    q = all_named_queries()["Q5"]
    assert benchmark(marshals_width, q) == 2


@pytest.mark.parametrize("n", [10, 30])
def test_mcs_acyclicity_paths(benchmark, n):
    q = path_query(n)
    assert benchmark(is_acyclic_mcs, q) is True


def test_mcs_acyclicity_q5(benchmark):
    q = all_named_queries()["Q5"]
    assert benchmark(is_acyclic_mcs, q) is False
