"""Backend benchmark: sequential vs thread vs process execution.

Measures the two Yannakakis phases on 10k-row acyclic workloads (the
ISSUE acceptance scale) across the three execution backends of
:mod:`repro.db.backend`:

* ``sequential`` — the plain kernel (:mod:`repro.db.yannakakis`), no
  sharding at all;
* ``thread@w`` — the sharded kernel over a ``w``-thread pool.  GIL-bound:
  it banks per-operator constants, not cores;
* ``process@w`` — the sharded kernel over ``w`` worker processes with
  resident shards: rows cross the process boundary at scatter and gather
  only, every intermediate stays in the workers.

Two workload classes, because they answer different questions:

* **sparse** (domain = rows, as in ``bench_parallel.py``) — semijoins
  filter ~40% and joins stay thin.  Per-operator compute here is a
  millisecond or two, the same order as one scatter, so the process
  backend roughly breaks even: this is the scatter-cost caveat the
  README documents, reported honestly rather than hidden.
* **fan-out** (domain = rows/10, single-variable head) — every join key
  matches ~10 partner rows, so the join pass builds ~100k-row
  intermediates that are pure CPU.  Resident shards keep all of that in
  the workers; this is the CPU-bound workload where multicore pays, and
  the headline acceptance gate: ``process@4`` at least **2x** faster
  than ``thread@4`` on the semijoin+join (enumerate) phase.

Correctness is a hard gate: every backend must produce identical answers
before any time is reported.  ``cpu_count`` rides in the JSON — on a
single-core runner the process numbers measure IPC overhead, not
scaling, which is why the speedup smoke skips below 4 cores.

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py \
        --rows 10000 --out BENCH_backends.json

Also collectable by pytest (equivalence smoke at reduced scale always;
the 2x gate on machines with >= 4 cores).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import pytest

from repro.core.acyclicity import join_tree
from repro.core.atoms import Atom, Variable
from repro.core.query import ConjunctiveQuery
from repro.db import (
    ProcessBackend,
    SequentialBackend,
    ThreadBackend,
    bind_atom,
    enumerate_answers,
    full_reduce,
    parallel_enumerate_answers,
    parallel_full_reduce,
)
from repro.generators.families import path_query
from repro.generators.workloads import random_database
from repro.obs.history import record

WORKERS = 4

#: Suite tag for the unified bench-record schema (repro bench record/diff).
SUITE = "backends"


def star_query(n: int) -> ConjunctiveQuery:
    body = tuple(
        Atom("e", (Variable("C"), Variable(f"X{i}"))) for i in range(1, n + 1)
    )
    return ConjunctiveQuery(body, (), f"star_{n}")


def _workloads(rows: int, seed: int):
    """(name, query, db, cpu_bound) tuples at the requested scale."""
    for query in (path_query(3), star_query(5)):
        head = tuple(sorted(query.variables, key=lambda v: v.name)[:2])
        query = query.with_head(head)
        db = random_database(query, rows, rows, seed=seed)
        yield f"{query.name}_sparse", query, db, False
    # Fan-out: domain 20x smaller than rows => ~20 join partners per
    # key.  One output variable keeps the answer small while the join
    # intermediates (which stay worker-resident) are ~20x the input —
    # the genuinely CPU-bound regime where multicore scaling shows.
    query = path_query(3)
    head = (sorted(query.variables, key=lambda v: v.name)[0],)
    query = query.with_head(head)
    db = random_database(query, max(2, rows // 20), rows, seed=seed)
    yield f"{query.name}_fanout", query, db, True


def _best_of(fn, bind, repeats: int):
    """Best wall time over *repeats* runs, re-binding fresh relations
    each time so memoisation cannot leak across repeats."""
    best, result = float("inf"), None
    for _ in range(repeats):
        rels = bind()
        started = time.perf_counter()
        result = fn(rels)
        best = min(best, time.perf_counter() - started)
    return best, result


def run_benchmark(
    rows: int = 10_000, repeats: int = 3, seed: int = 0, workers: int = WORKERS
) -> dict:
    """One full comparison run; returns the JSON-ready result dict."""
    backends = {
        "thread": ThreadBackend(workers=workers),
        "process": ProcessBackend(workers=workers),
    }
    try:
        workloads = []
        for name, query, db, cpu_bound in _workloads(rows, seed):
            tree = join_tree(query)
            output = tuple(v.name for v in query.head_terms)

            def bind():
                return {a: bind_atom(a, db) for a in query.atoms}

            reduce_times: dict[str, float] = {}
            enum_times: dict[str, float] = {}

            t, seq_reduced = _best_of(
                lambda rels: full_reduce(tree, rels), bind, repeats
            )
            reduce_times["sequential"] = t
            t, seq_answers = _best_of(
                lambda rels: enumerate_answers(tree, rels, output),
                bind,
                repeats,
            )
            enum_times["sequential"] = t

            for kind, ctx in backends.items():
                t, par_reduced = _best_of(
                    lambda rels: parallel_full_reduce(
                        tree, rels, n_shards=workers, backend=ctx
                    ),
                    bind,
                    repeats,
                )
                reduce_times[kind] = t
                t, par_answers = _best_of(
                    lambda rels: parallel_enumerate_answers(
                        tree, rels, output, n_shards=workers, backend=ctx
                    ),
                    bind,
                    repeats,
                )
                enum_times[kind] = t
                # Hard correctness gates before any number is reported.
                for node in tree.nodes:
                    assert par_reduced[node].rows == seq_reduced[node].rows
                assert par_answers.rows == seq_answers.rows

            workloads.append(
                {
                    "workload": name,
                    "cpu_bound": cpu_bound,
                    "answers": len(seq_answers),
                    "full_reduce_seconds": {
                        k: round(v, 6) for k, v in reduce_times.items()
                    },
                    "enumerate_seconds": {
                        k: round(v, 6) for k, v in enum_times.items()
                    },
                    "process_vs_thread": {
                        "full_reduce": round(
                            reduce_times["thread"] / reduce_times["process"], 2
                        ),
                        "enumerate": round(
                            enum_times["thread"] / enum_times["process"], 2
                        ),
                    },
                    "thread_vs_sequential": {
                        "full_reduce": round(
                            reduce_times["sequential"] / reduce_times["thread"],
                            2,
                        ),
                        "enumerate": round(
                            enum_times["sequential"] / enum_times["thread"], 2
                        ),
                    },
                }
            )
    finally:
        for ctx in backends.values():
            ctx.close()

    cpu_bound_speedups = {
        w["workload"]: w["process_vs_thread"]["enumerate"]
        for w in workloads
        if w["cpu_bound"]
    }
    records = [
        record(f"answers.{w['workload']}", w["answers"], "rows",
               better="higher", tolerance=0.0)
        for w in workloads
    ]
    records.append(
        record("best_process_vs_thread_cpu_bound",
               max(cpu_bound_speedups.values()), "x",
               better="higher", tolerance=1.0)
    )
    return {
        "suite": SUITE,
        "records": records,
        "benchmark": "execution_backends_sequential_thread_process",
        "rows": rows,
        "repeats": repeats,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "workloads": workloads,
        # The acceptance gate: the process backend's multicore win on
        # the CPU-bound (fan-out join) workload's semijoin+join phase.
        "process_vs_thread_cpu_bound": cpu_bound_speedups,
        "best_process_vs_thread_cpu_bound": max(cpu_bound_speedups.values()),
        "note": (
            "sparse workloads have per-operator compute of the same order "
            "as one scatter, so the process backend breaks roughly even "
            "there (the scatter-cost caveat); the fan-out workload is "
            "CPU-bound and shows the resident-shard multicore win.  With "
            "cpu_count < workers the process numbers measure IPC "
            "overhead, not scaling."
        ),
    }


def test_bench_backends_equivalence_smoke(bench_seed):
    """Always-run smoke: every backend agrees on every workload (the
    asserts live inside run_benchmark) at a scale quick enough for any
    runner.  No timing claims at this size."""
    result = run_benchmark(rows=1_500, repeats=1, workers=3, seed=bench_seed)
    assert result["workloads"], result
    assert result["suite"] == SUITE and result["records"]


def test_bench_backends_speedup_smoke(bench_seed):
    """The ISSUE acceptance gate at full scale: the 4-worker process
    backend at least 2x faster than the thread backend on the CPU-bound
    10k-row semijoin/join workload.  Needs real cores — on fewer than 4
    the process pool time-slices one core and only measures IPC tax, so
    the gate is skipped (CI runners provide 4)."""
    if (os.cpu_count() or 1) < 4:
        pytest.skip("process-backend scaling needs >= 4 cores")
    result = run_benchmark(rows=10_000, repeats=3, seed=bench_seed)
    assert result["best_process_vs_thread_cpu_bound"] >= 2.0, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=10_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--out", default="BENCH_backends.json")
    args = parser.parse_args(argv)

    result = run_benchmark(
        rows=args.rows, repeats=args.repeats, seed=args.seed,
        workers=args.workers,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
    print(json.dumps(result, indent=2, sort_keys=True))
    print(
        f"\nprocess@{args.workers} vs thread@{args.workers} on the "
        f"CPU-bound {result['rows']}-row workloads (enumerate phase): "
        f"{result['process_vs_thread_cpu_bound']}; wrote {args.out}"
    )
    # Correctness gates are the asserts inside run_benchmark; the
    # speedup threshold only warns here so a noisy or small runner
    # cannot turn a scheduling hiccup into a red build (pytest asserts
    # it on capable machines).
    if (
        (os.cpu_count() or 1) >= 4
        and result["best_process_vs_thread_cpu_bound"] < 2.0
    ):
        print(
            "WARNING: process backend below 2x over threads on the "
            "CPU-bound workload",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
