"""E12/E13/E17 — width comparisons (§6).

E12: exact hw and qw side by side on the separating witness Q5.
E13: tw(VAIG(Qₙ)) — the unbounded-treewidth series of Theorem 6.2.
E17: the structural-method width battery on one growing family point.
"""

import pytest

from repro.core.detkdecomp import hypertree_width
from repro.core.qwsearch import query_width
from repro.csp.methods import all_method_widths
from repro.generators.families import cycle_query, hyperwheel_query
from repro.generators.paper_queries import q5, qn
from repro.graphs.primal import variable_atom_incidence_graph
from repro.graphs.treewidth import exact_treewidth


def test_e12_hw_q5(benchmark):
    width, _ = benchmark(hypertree_width, q5())
    assert width == 2


def test_e12_qw_q5(benchmark):
    width, _ = benchmark(query_width, q5())
    assert width == 3


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_e13_vaig_treewidth(benchmark, n):
    graph = variable_atom_incidence_graph(qn(n))
    tw = benchmark(exact_treewidth, graph)
    assert tw == n
    benchmark.extra_info["tw"] = tw


@pytest.mark.parametrize("n", [4, 6, 8])
def test_e17_method_battery_cycles(benchmark, n):
    q = cycle_query(n)
    widths = benchmark(all_method_widths, q)
    assert widths.hypertree_width == 2
    benchmark.extra_info.update(widths.as_row())


def test_e17_method_battery_hyperwheel(benchmark):
    q = hyperwheel_query(5, 4)
    widths = benchmark(all_method_widths, q)
    assert widths.hypertree_width == 2
    benchmark.extra_info.update(widths.as_row())
